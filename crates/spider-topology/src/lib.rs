//! Topology generators for payment channel network evaluation.
//!
//! - [`generators`] — standard random/structured graphs (ring, grid,
//!   Erdős–Rényi, Barabási–Albert, Watts–Strogatz, trees),
//! - [`isp`] — the deterministic 32-node/152-edge ISP-like topology of the
//!   paper's evaluation,
//! - [`ripple`] — scale-free Ripple-like credit network stand-ins,
//! - [`partition`] — deterministic landmark partitioning for the
//!   shard-parallel engine,
//! - [`io`] — a plain-text edge-list format for export/import.
//!
//! All generators are deterministic given a seed and produce connected
//! graphs with evenly split channel balances.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod generators;
pub mod io;
pub mod isp;
pub mod partition;
pub mod ripple;

pub use generators::{
    barabasi_albert, complete, erdos_renyi, grid, line, random_tree, ring, star, watts_strogatz,
    with_skewed_balances, with_uniform_capacity,
};
pub use io::{from_edge_list, to_edge_list, ParseError};
pub use isp::{isp_topology, ISP_EDGES, ISP_NODES};
pub use partition::Partition;
pub use ripple::{ripple_topology, ripple_topology_scaled, RIPPLE_EDGES, RIPPLE_NODES};
