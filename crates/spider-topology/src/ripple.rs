//! A Ripple-like credit network topology (§6.1).
//!
//! The paper evaluates on a pruned January-2013 snapshot of the Ripple
//! network: 3774 nodes and 12512 edges after removing degree-1 nodes and
//! unfunded channels. The raw trace is not redistributable, so this module
//! generates a synthetic stand-in with the same node/edge counts and the
//! scale-free degree structure real credit networks exhibit, via
//! preferential attachment with a mixed out-degree (≈ 12512/3774 ≈ 3.3
//! edges per node).
//!
//! [`ripple_topology_scaled`] produces smaller instances with the same
//! density for quick runs and CI.

use crate::generators::barabasi_albert;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spider_core::{Amount, Network, NodeId};

/// Node count of the paper's pruned Ripple snapshot.
pub const RIPPLE_NODES: usize = 3774;
/// Edge count of the paper's pruned Ripple snapshot.
pub const RIPPLE_EDGES: usize = 12512;

/// Generates the full-size Ripple-like topology (3774 nodes, 12512 edges),
/// every channel at `capacity` split evenly.
pub fn ripple_topology(capacity: Amount, seed: u64) -> Network {
    ripple_topology_scaled(RIPPLE_NODES, capacity, seed)
}

/// Generates a Ripple-like topology with `n` nodes and edge density matching
/// the paper's snapshot (|E| ≈ 3.315 |V|).
///
/// Built by preferential attachment with per-node out-degree drawn from
/// {3, 4} in proportions chosen to hit the target edge count, then trimmed
/// or padded with preferential chords to land exactly on the target.
pub fn ripple_topology_scaled(n: usize, capacity: Amount, seed: u64) -> Network {
    assert!(n >= 16, "ripple-like topology needs at least 16 nodes");
    let target_edges = ((n as f64) * (RIPPLE_EDGES as f64 / RIPPLE_NODES as f64)).round() as usize;
    // Base: BA with m = 3 gives slightly fewer edges than target; pad after.
    let base = barabasi_albert(n, 3, capacity, seed);
    let mut g = Network::new(n);
    for ch in base.channels() {
        if g.num_channels() >= target_edges {
            break;
        }
        g.add_channel(ch.a, ch.b, capacity)
            .expect("copying valid channels");
    }
    // Pad with degree-biased chords until we hit the target.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut urn: Vec<usize> = Vec::with_capacity(2 * g.num_channels());
    for ch in g.channels() {
        urn.push(ch.a.index());
        urn.push(ch.b.index());
    }
    let mut guard = 0usize;
    while g.num_channels() < target_edges && guard < 100 * target_edges {
        guard += 1;
        let a = urn[rng.random_range(0..urn.len())];
        let b = rng.random_range(0..n);
        if a != b
            && g.channel_between(NodeId::from(a), NodeId::from(b))
                .is_none()
        {
            g.add_channel(NodeId::from(a), NodeId::from(b), capacity)
                .unwrap();
            urn.push(a);
            urn.push(b);
        }
    }
    debug_assert!(g.is_connected());
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: Amount = Amount::from_whole(30_000);

    #[test]
    fn scaled_instance_matches_density() {
        let g = ripple_topology_scaled(400, CAP, 1);
        let target = (400.0 * (RIPPLE_EDGES as f64 / RIPPLE_NODES as f64)).round() as usize;
        assert_eq!(g.num_channels(), target);
        assert!(g.is_connected());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ripple_topology_scaled(200, CAP, 5);
        let b = ripple_topology_scaled(200, CAP, 5);
        assert_eq!(a.num_channels(), b.num_channels());
        for (x, y) in a.channels().iter().zip(b.channels()) {
            assert_eq!((x.a, x.b), (y.a, y.b));
        }
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = ripple_topology_scaled(500, CAP, 2);
        let mean = 2.0 * g.num_channels() as f64 / g.num_nodes() as f64;
        let max = g.nodes().map(|v| g.degree(v)).max().unwrap();
        assert!(
            max as f64 > 4.0 * mean,
            "expected hubs: max degree {max}, mean {mean:.1}"
        );
    }

    #[test]
    #[ignore = "full 3774-node instance; run with --ignored"]
    fn full_size_instance() {
        let g = ripple_topology(CAP, 0);
        assert_eq!(g.num_nodes(), RIPPLE_NODES);
        assert_eq!(g.num_channels(), RIPPLE_EDGES);
        assert!(g.is_connected());
    }
}
