//! The ISP-like evaluation topology (§6.1).
//!
//! The paper uses a Topology Zoo ISP graph with 32 nodes and 152 edges.
//! That dataset is not redistributable here, so this module synthesizes a
//! deterministic ISP-like graph with the *same node and edge counts* and the
//! hierarchical structure typical of ISP backbones: a densely meshed core,
//! an aggregation tier multi-homed into the core, and an access tier
//! multi-homed into aggregation. The paper only relies on the ISP graph
//! being "a relatively simple topology" with uniform channel capacities, so
//! any well-connected 32-node/152-edge graph exercises the same dynamics
//! (see DESIGN.md, substitutions).

use spider_core::{Amount, Network, NodeId};

/// Number of nodes in the ISP-like topology.
pub const ISP_NODES: usize = 32;
/// Number of channels in the ISP-like topology.
pub const ISP_EDGES: usize = 152;

/// Builds the deterministic ISP-like topology: 32 nodes, 152 channels, every
/// channel carrying `capacity` (split evenly).
///
/// Tiers: nodes 0–7 form the core (full mesh), nodes 8–19 the aggregation
/// tier (each homed to 4 cores plus an aggregation ring), nodes 20–31 the
/// access tier (each homed to 3 aggregation nodes plus an access ring).
/// Deterministic chords pad the graph to exactly 152 edges.
pub fn isp_topology(capacity: Amount) -> Network {
    let mut g = Network::new(ISP_NODES);
    let add = |g: &mut Network, a: usize, b: usize| {
        g.add_channel(NodeId::from(a), NodeId::from(b), capacity)
            .expect("isp edge must be fresh and valid");
    };

    // Core: full mesh on 0..8 (28 edges).
    for i in 0..8 {
        for j in i + 1..8 {
            add(&mut g, i, j);
        }
    }
    // Aggregation 8..20: each homed to 4 core nodes (48 edges).
    for (k, agg) in (8..20).enumerate() {
        for d in 0..4 {
            add(&mut g, agg, (k + 2 * d) % 8);
        }
    }
    // Aggregation ring (12 edges).
    for k in 0..12 {
        add(&mut g, 8 + k, 8 + (k + 1) % 12);
    }
    // Access 20..32: each homed to 3 aggregation nodes (36 edges).
    for (k, acc) in (20..32).enumerate() {
        for d in 0..3 {
            add(&mut g, acc, 8 + (k + 4 * d) % 12);
        }
    }
    // Access ring (12 edges).
    for k in 0..12 {
        add(&mut g, 20 + k, 20 + (k + 1) % 12);
    }
    // Deterministic chords to reach exactly 152 edges (16 more):
    // aggregation cross-links and access-to-core express links.
    for k in 0..6 {
        add(&mut g, 8 + k, 8 + k + 6); // aggregation diameters (6)
    }
    for k in 0..6 {
        add(&mut g, 20 + 2 * k, k % 8); // access express links (6)
    }
    for k in 0..4 {
        add(&mut g, 21 + 2 * k, 20 + (2 * k + 5) % 12); // access chords (4)
    }

    debug_assert_eq!(g.num_channels(), ISP_EDGES);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_node_and_edge_counts() {
        let g = isp_topology(Amount::from_whole(30_000));
        assert_eq!(g.num_nodes(), ISP_NODES);
        assert_eq!(g.num_channels(), ISP_EDGES);
    }

    #[test]
    fn is_connected_and_reasonably_dense() {
        let g = isp_topology(Amount::from_whole(30_000));
        assert!(g.is_connected());
        let mean_degree = 2.0 * g.num_channels() as f64 / g.num_nodes() as f64;
        assert!(
            (9.0..10.0).contains(&mean_degree),
            "mean degree {mean_degree}"
        );
    }

    #[test]
    fn core_is_denser_than_access() {
        let g = isp_topology(Amount::from_whole(30_000));
        let core_min = (0..8usize)
            .map(|i| g.degree(NodeId::from(i)))
            .min()
            .unwrap();
        let access_max = (20..32usize)
            .map(|i| g.degree(NodeId::from(i)))
            .max()
            .unwrap();
        assert!(
            core_min > access_max,
            "core {core_min} vs access {access_max}"
        );
    }

    #[test]
    fn uniform_capacities() {
        let cap = Amount::from_whole(30_000);
        let g = isp_topology(cap);
        for ch in g.channels() {
            assert_eq!(ch.capacity(), cap);
            assert_eq!(ch.balance_a, ch.balance_b);
        }
    }

    #[test]
    fn small_diameter() {
        let g = isp_topology(Amount::from_whole(30_000));
        let d = g.bfs_distances(NodeId(20));
        let max = d.iter().max().unwrap();
        assert!(*max <= 4, "diameter-ish bound violated: {max}");
    }
}
