//! Random-graph generators for payment channel networks.
//!
//! All generators are deterministic given their seed, produce connected
//! graphs (they start from a spanning structure), and split every channel's
//! capacity evenly between its endpoints — the setup used throughout the
//! paper's evaluation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use spider_core::{Amount, Network, NodeId};

/// A ring over `n ≥ 3` nodes.
pub fn ring(n: usize, capacity: Amount) -> Network {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let mut g = Network::new(n);
    for i in 0..n {
        g.add_channel(NodeId::from(i), NodeId::from((i + 1) % n), capacity)
            .expect("ring edges are valid");
    }
    g
}

/// A line (path graph) over `n ≥ 2` nodes.
pub fn line(n: usize, capacity: Amount) -> Network {
    assert!(n >= 2, "a line needs at least 2 nodes");
    let mut g = Network::new(n);
    for i in 0..n - 1 {
        g.add_channel(NodeId::from(i), NodeId::from(i + 1), capacity)
            .expect("line edges are valid");
    }
    g
}

/// A star: node 0 is the hub.
pub fn star(n: usize, capacity: Amount) -> Network {
    assert!(n >= 2, "a star needs at least 2 nodes");
    let mut g = Network::new(n);
    for i in 1..n {
        g.add_channel(NodeId(0), NodeId::from(i), capacity)
            .expect("star edges are valid");
    }
    g
}

/// A complete graph on `n` nodes.
pub fn complete(n: usize, capacity: Amount) -> Network {
    assert!(n >= 2);
    let mut g = Network::new(n);
    for i in 0..n {
        for j in i + 1..n {
            g.add_channel(NodeId::from(i), NodeId::from(j), capacity)
                .expect("complete-graph edges are valid");
        }
    }
    g
}

/// A `rows × cols` grid.
pub fn grid(rows: usize, cols: usize, capacity: Amount) -> Network {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2);
    let mut g = Network::new(rows * cols);
    let idx = |r: usize, c: usize| NodeId::from(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_channel(idx(r, c), idx(r, c + 1), capacity).unwrap();
            }
            if r + 1 < rows {
                g.add_channel(idx(r, c), idx(r + 1, c), capacity).unwrap();
            }
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)` conditioned on connectivity: a random spanning tree
/// is laid down first, then each remaining pair is joined with probability
/// `p`.
pub fn erdos_renyi(n: usize, p: f64, capacity: Amount, seed: u64) -> Network {
    assert!(n >= 2);
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Network::new(n);
    // Random spanning tree: attach each node to a uniformly random earlier
    // node (a random recursive tree).
    for i in 1..n {
        let parent = rng.random_range(0..i);
        g.add_channel(NodeId::from(i), NodeId::from(parent), capacity)
            .unwrap();
    }
    for i in 0..n {
        for j in i + 1..n {
            if g.channel_between(NodeId::from(i), NodeId::from(j))
                .is_none()
                && rng.random_bool(p)
            {
                g.add_channel(NodeId::from(i), NodeId::from(j), capacity)
                    .unwrap();
            }
        }
    }
    g
}

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new node to `m` distinct existing nodes with probability
/// proportional to degree. Produces the scale-free degree distribution
/// characteristic of real credit networks like Ripple.
pub fn barabasi_albert(n: usize, m: usize, capacity: Amount, seed: u64) -> Network {
    assert!(m >= 1, "m must be at least 1");
    assert!(n > m, "need more nodes than attachment edges");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Network::new(n);
    let m0 = (m + 1).max(2);
    for i in 0..m0 {
        for j in i + 1..m0 {
            g.add_channel(NodeId::from(i), NodeId::from(j), capacity)
                .unwrap();
        }
    }
    // Degree-proportional sampling via a repeated-endpoint urn.
    let mut urn: Vec<usize> = Vec::new();
    for ch in g.channels() {
        urn.push(ch.a.index());
        urn.push(ch.b.index());
    }
    for v in m0..n {
        let mut targets = std::collections::BTreeSet::new();
        // Rejection-sample m distinct targets from the urn.
        let mut guard = 0;
        while targets.len() < m && guard < 10_000 {
            let t = urn[rng.random_range(0..urn.len())];
            targets.insert(t);
            guard += 1;
        }
        // Fallback: fill from low-index nodes if the urn was too concentrated.
        let mut fill = 0usize;
        while targets.len() < m {
            targets.insert(fill);
            fill += 1;
        }
        for &t in &targets {
            g.add_channel(NodeId::from(v), NodeId::from(t), capacity)
                .unwrap();
            urn.push(v);
            urn.push(t);
        }
    }
    g
}

/// Watts–Strogatz small-world: a ring lattice where each node connects to
/// its `k/2` nearest neighbors on each side, with each edge rewired with
/// probability `beta` (rewiring that would disconnect or duplicate is
/// skipped).
pub fn watts_strogatz(n: usize, k: usize, beta: f64, capacity: Amount, seed: u64) -> Network {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and ≥ 2");
    assert!(n > k, "need n > k");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = StdRng::seed_from_u64(seed);
    // Collect lattice edges, then rewire.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for i in 0..n {
        for d in 1..=k / 2 {
            edges.push((i, (i + d) % n));
        }
    }
    let mut present: std::collections::BTreeSet<(usize, usize)> =
        edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
    for edge in edges.iter_mut() {
        if rng.random_bool(beta) {
            let (a, b) = *edge;
            // Keep endpoint a, pick a new b.
            let nb = rng.random_range(0..n);
            let old_key = (a.min(b), a.max(b));
            let new_key = (a.min(nb), a.max(nb));
            if nb != a && !present.contains(&new_key) {
                present.remove(&old_key);
                present.insert(new_key);
                *edge = (a, nb);
            }
        }
    }
    let mut g = Network::new(n);
    for (a, b) in present {
        g.add_channel(NodeId::from(a), NodeId::from(b), capacity)
            .unwrap();
    }
    // Ensure connectivity by linking components along the ring if rewiring
    // broke it (rare for small beta).
    if !g.is_connected() {
        for i in 0..n {
            let j = (i + 1) % n;
            if g.channel_between(NodeId::from(i), NodeId::from(j))
                .is_none()
            {
                g.add_channel(NodeId::from(i), NodeId::from(j), capacity)
                    .unwrap();
                if g.is_connected() {
                    break;
                }
            }
        }
    }
    g
}

/// A uniformly random recursive tree on `n` nodes.
pub fn random_tree(n: usize, capacity: Amount, seed: u64) -> Network {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Network::new(n);
    for i in 1..n {
        let parent = rng.random_range(0..i);
        g.add_channel(NodeId::from(i), NodeId::from(parent), capacity)
            .unwrap();
    }
    g
}

/// Assigns every channel the same capacity, returning a copy of the network.
pub fn with_uniform_capacity(network: &Network, capacity: Amount) -> Network {
    let mut g = Network::new(network.num_nodes());
    for ch in network.channels() {
        g.add_channel(ch.a, ch.b, capacity)
            .expect("copying valid channels");
    }
    g
}

/// Randomly skews every channel's balance split while keeping capacity: one
/// endpoint receives a `fraction ∈ [lo, hi]` share. Useful for studying
/// pre-imbalanced networks.
pub fn with_skewed_balances(network: &Network, lo: f64, hi: f64, seed: u64) -> Network {
    assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi) && lo <= hi);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Network::new(network.num_nodes());
    for ch in network.channels() {
        let f = if lo == hi {
            lo
        } else {
            rng.random_range(lo..hi)
        };
        let cap = ch.capacity();
        let a_side = cap.scale(f);
        let mut order = [true, false];
        order.shuffle(&mut rng);
        let (ba, bb) = if order[0] {
            (a_side, cap - a_side)
        } else {
            (cap - a_side, a_side)
        };
        g.add_channel_with_balances(ch.a, ch.b, ba, bb)
            .expect("copying valid channels");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: Amount = Amount::from_whole(100);

    #[test]
    fn ring_structure() {
        let g = ring(5, CAP);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_channels(), 5);
        assert!(g.is_connected());
        for n in g.nodes() {
            assert_eq!(g.degree(n), 2);
        }
    }

    #[test]
    fn line_and_star() {
        let l = line(4, CAP);
        assert_eq!(l.num_channels(), 3);
        assert!(l.is_connected());
        let s = star(6, CAP);
        assert_eq!(s.num_channels(), 5);
        assert_eq!(s.degree(NodeId(0)), 5);
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(6, CAP);
        assert_eq!(g.num_channels(), 15);
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4, CAP);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_channels(), 3 * 3 + 2 * 4);
        assert!(g.is_connected());
    }

    #[test]
    fn erdos_renyi_connected_and_deterministic() {
        let a = erdos_renyi(30, 0.1, CAP, 42);
        let b = erdos_renyi(30, 0.1, CAP, 42);
        assert!(a.is_connected());
        assert_eq!(a.num_channels(), b.num_channels());
        let c = erdos_renyi(30, 0.1, CAP, 43);
        // Overwhelmingly likely to differ.
        assert!(
            a.num_channels() != c.num_channels()
                || a.channels()
                    .iter()
                    .zip(c.channels())
                    .any(|(x, y)| x.a != y.a || x.b != y.b)
        );
    }

    #[test]
    fn erdos_renyi_density_scales_with_p() {
        let sparse = erdos_renyi(40, 0.02, CAP, 7);
        let dense = erdos_renyi(40, 0.5, CAP, 7);
        assert!(dense.num_channels() > sparse.num_channels());
    }

    #[test]
    fn barabasi_albert_connected_and_skewed() {
        let g = barabasi_albert(200, 3, CAP, 11);
        assert!(g.is_connected());
        // Roughly m*(n - m0) + clique edges.
        assert!(g.num_channels() >= 3 * (200 - 4));
        // Scale-free: max degree far above the mean.
        let mean = 2.0 * g.num_channels() as f64 / g.num_nodes() as f64;
        let max = g.nodes().map(|n| g.degree(n)).max().unwrap();
        assert!(
            (max as f64) > 3.0 * mean,
            "max degree {max} should dominate mean {mean:.1}"
        );
    }

    #[test]
    fn watts_strogatz_connected() {
        let g = watts_strogatz(50, 4, 0.2, CAP, 3);
        assert!(g.is_connected());
        assert!(g.num_channels() >= 50); // ~ n*k/2 = 100 minus collisions
    }

    #[test]
    fn random_tree_has_n_minus_1_edges() {
        let g = random_tree(25, CAP, 5);
        assert_eq!(g.num_channels(), 24);
        assert!(g.is_connected());
    }

    #[test]
    fn uniform_capacity_override() {
        let g = ring(4, CAP);
        let g2 = with_uniform_capacity(&g, Amount::from_whole(7));
        assert_eq!(g2.num_channels(), 4);
        for ch in g2.channels() {
            assert_eq!(ch.capacity(), Amount::from_whole(7));
        }
    }

    #[test]
    fn skewed_balances_preserve_capacity() {
        let g = ring(6, CAP);
        let g2 = with_skewed_balances(&g, 0.8, 0.95, 9);
        for (a, b) in g.channels().iter().zip(g2.channels()) {
            assert_eq!(a.capacity(), b.capacity());
        }
        // At least one channel is visibly skewed.
        assert!(g2
            .channels()
            .iter()
            .any(|c| c.balance_a.ratio_of(c.capacity()) > 0.75
                || c.balance_b.ratio_of(c.capacity()) > 0.75));
    }

    #[test]
    fn generators_are_deterministic() {
        for seed in [0u64, 1, 99] {
            let a = barabasi_albert(60, 2, CAP, seed);
            let b = barabasi_albert(60, 2, CAP, seed);
            assert_eq!(a.num_channels(), b.num_channels());
            for (x, y) in a.channels().iter().zip(b.channels()) {
                assert_eq!((x.a, x.b), (y.a, y.b));
            }
        }
    }
}
