//! Deterministic landmark partitioning for shard-parallel simulation.
//!
//! [`Partition::build`] cuts a network into `num_shards` regions by seeded
//! farthest-point landmark selection followed by capped multi-source BFS
//! region growing, then assigns every channel exactly one *owner shard* —
//! the only shard allowed to mutate that channel's two ledger slots in the
//! sharded engine. The whole construction is a pure function of
//! `(network, num_shards, seed)`: the same inputs produce byte-identical
//! partitions on any host, which the sharded engine's determinism
//! guarantees build on.

use serde::{Deserialize, Serialize};
use spider_core::{ChannelId, Network, NodeId};

/// A deterministic shard assignment: every node belongs to a region and
/// every channel has exactly one owner shard.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    num_shards: u16,
    /// Region (shard) of each node, indexed by node id.
    node_shard: Vec<u16>,
    /// Owner shard of each channel, indexed by channel id.
    channel_owner: Vec<u16>,
}

impl Partition {
    /// Builds a deterministic partition of `network` into `num_shards`
    /// landmark regions.
    ///
    /// Construction: the seed picks the first landmark; the remaining
    /// landmarks are chosen by max–min BFS distance (farthest-point
    /// traversal, ties to the lower node id). Nodes then join their
    /// nearest landmark's region, processed in ascending
    /// `(distance, node id)` order with a per-region cap of
    /// `ceil(n / num_shards)` so regions stay balanced; nodes unreachable
    /// from every landmark fall back to the least-loaded region. Finally
    /// each channel is owned by whichever endpoint region currently owns
    /// fewer channels (ties to the lower shard id), visiting channels in
    /// id order.
    ///
    /// `num_shards` is clamped to `[1, num_nodes]` (and to `u16::MAX`).
    pub fn build(network: &Network, num_shards: usize, seed: u64) -> Partition {
        let n = network.num_nodes();
        let shards = num_shards.clamp(1, n.max(1)).min(u16::MAX as usize);
        if shards <= 1 || n == 0 {
            return Partition {
                num_shards: 1,
                node_shard: vec![0; n],
                channel_owner: vec![0; network.num_channels()],
            };
        }

        // Seeded first landmark, then farthest-point selection.
        let mut landmarks: Vec<NodeId> = vec![NodeId((seed % n as u64) as u32)];
        // min over chosen landmarks of BFS hop distance, per node.
        let mut min_dist = network.bfs_distances(landmarks[0]);
        while landmarks.len() < shards {
            let mut best: Option<(u32, usize)> = None;
            for (i, &d) in min_dist.iter().enumerate() {
                if landmarks.iter().any(|l| l.index() == i) {
                    continue;
                }
                // Farthest first; unreachable (u32::MAX) wins outright.
                let better = match best {
                    None => true,
                    Some((bd, _)) => d > bd,
                };
                if better {
                    best = Some((d, i));
                }
            }
            let Some((_, pick)) = best else { break };
            let lm = NodeId(pick as u32);
            landmarks.push(lm);
            for (d, nd) in min_dist.iter_mut().zip(network.bfs_distances(lm)) {
                *d = (*d).min(nd);
            }
        }

        // Per-landmark BFS distances for nearest-region assignment.
        let dists: Vec<Vec<u32>> = landmarks
            .iter()
            .map(|&lm| network.bfs_distances(lm))
            .collect();
        let cap = n.div_ceil(landmarks.len());
        let mut node_shard = vec![u16::MAX; n];
        let mut load = vec![0usize; landmarks.len()];
        // Assignment order: ascending (best distance, node id) so nodes
        // close to their landmark claim region slots first.
        let mut order: Vec<(u32, usize)> = (0..n)
            .map(|i| {
                let best = dists.iter().map(|d| d[i]).min().unwrap_or(u32::MAX);
                (best, i)
            })
            .collect();
        order.sort_unstable();
        for (_, i) in order {
            // Regions ranked by distance to this node, ties to lower shard.
            let mut ranked: Vec<(u32, usize)> =
                dists.iter().enumerate().map(|(s, d)| (d[i], s)).collect();
            ranked.sort_unstable();
            let mut chosen = ranked
                .iter()
                .find(|&&(d, s)| d != u32::MAX && load[s] < cap)
                .map(|&(_, s)| s);
            if chosen.is_none() {
                // Unreachable from every landmark (or every reachable
                // region is full): least-loaded region, lower id first.
                chosen = (0..load.len()).min_by_key(|&s| (load[s], s));
            }
            let s = chosen.unwrap_or(0);
            node_shard[i] = s as u16;
            load[s] += 1;
        }

        // Channel ownership: the endpoint region owning fewer channels so
        // far, ties to the lower shard id, channels visited in id order.
        let mut channel_owner = vec![0u16; network.num_channels()];
        let mut owned = vec![0usize; landmarks.len()];
        for ch in network.channels() {
            let sa = node_shard[ch.a.index()] as usize;
            let sb = node_shard[ch.b.index()] as usize;
            let pick = if sa == sb || owned[sa] < owned[sb] || (owned[sa] == owned[sb] && sa < sb) {
                sa
            } else {
                sb
            };
            channel_owner[ch.id.index()] = pick as u16;
            owned[pick] += 1;
        }

        Partition {
            num_shards: landmarks.len() as u16,
            node_shard,
            channel_owner,
        }
    }

    /// The degenerate single-shard partition (everything owned by shard 0).
    pub fn single(network: &Network) -> Partition {
        Partition {
            num_shards: 1,
            node_shard: vec![0; network.num_nodes()],
            channel_owner: vec![0; network.num_channels()],
        }
    }

    /// Number of shards (≥ 1; may be less than requested on tiny graphs).
    pub fn num_shards(&self) -> usize {
        self.num_shards as usize
    }

    /// Region of `node`.
    #[inline]
    pub fn node_shard(&self, node: NodeId) -> usize {
        self.node_shard[node.index()] as usize
    }

    /// Owner shard of `channel`.
    #[inline]
    pub fn channel_owner(&self, channel: ChannelId) -> usize {
        self.channel_owner[channel.index()] as usize
    }

    /// Per-node regions, indexed by node id.
    pub fn node_shards(&self) -> &[u16] {
        &self.node_shard
    }

    /// Per-channel owner shards, indexed by channel id.
    pub fn channel_owners(&self) -> &[u16] {
        &self.channel_owner
    }

    /// Nodes per shard.
    pub fn shard_node_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_shards as usize];
        for &s in &self.node_shard {
            counts[s as usize] += 1;
        }
        counts
    }

    /// Owned channels per shard.
    pub fn shard_channel_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_shards as usize];
        for &s in &self.channel_owner {
            counts[s as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{isp_topology, ripple_topology_scaled};
    use spider_core::Amount;

    #[test]
    fn deterministic_across_runs() {
        let g = isp_topology(Amount::from_whole(200));
        for shards in [1, 2, 4, 7] {
            let a = Partition::build(&g, shards, 42);
            let b = Partition::build(&g, shards, 42);
            assert_eq!(a, b, "partition must be a pure function of inputs");
        }
        // A different seed is allowed to (and here does) move landmarks.
        let a = Partition::build(&g, 4, 1);
        let b = Partition::build(&g, 4, 9999);
        assert_eq!(a.num_shards(), b.num_shards());
    }

    #[test]
    fn every_channel_has_exactly_one_owner() {
        let g = ripple_topology_scaled(400, Amount::from_whole(5_000), 7);
        let p = Partition::build(&g, 4, 7);
        assert_eq!(p.channel_owners().len(), g.num_channels());
        for ch in g.channels() {
            let owner = p.channel_owner(ch.id);
            assert!(owner < p.num_shards());
            // The owner is one of the endpoint regions.
            let ends = [p.node_shard(ch.a), p.node_shard(ch.b)];
            assert!(
                ends.contains(&owner),
                "channel {:?} owned by {owner}, endpoints in {ends:?}",
                ch.id
            );
        }
        let total: usize = p.shard_channel_counts().iter().sum();
        assert_eq!(total, g.num_channels());
    }

    #[test]
    fn shards_are_balanced_on_isp_and_ripple() {
        let isp = isp_topology(Amount::from_whole(200));
        let ripple = ripple_topology_scaled(400, Amount::from_whole(5_000), 11);
        for (g, name) in [(&isp, "isp"), (&ripple, "ripple")] {
            for shards in [2usize, 4] {
                let p = Partition::build(g, shards, 3);
                let nodes = p.shard_node_counts();
                let cap = g.num_nodes().div_ceil(shards);
                assert!(
                    nodes.iter().all(|&c| c > 0 && c <= cap),
                    "{name}/{shards}: node counts {nodes:?} exceed cap {cap}"
                );
                // Channel ownership balanced within a factor of 3 of even.
                let chans = p.shard_channel_counts();
                let max = *chans.iter().max().unwrap();
                let even = g.num_channels().div_ceil(shards);
                assert!(
                    max <= 3 * even,
                    "{name}/{shards}: channel counts {chans:?} too skewed"
                );
            }
        }
    }

    #[test]
    fn clamps_degenerate_shard_counts() {
        let g = isp_topology(Amount::from_whole(100));
        let p0 = Partition::build(&g, 0, 5);
        assert_eq!(p0.num_shards(), 1);
        let p_many = Partition::build(&g, 10_000, 5);
        assert!(p_many.num_shards() <= g.num_nodes());
        assert_eq!(Partition::single(&g).num_shards(), 1);
    }

    /// Pins the exact partition of the medium (ripple-400) topology so any
    /// change to the construction is a conscious, reviewed one — the
    /// sharded engine's cross-run byte-identity depends on it.
    #[test]
    fn medium_topology_partition_fixture() {
        let g = ripple_topology_scaled(400, Amount::from_whole(5_000), 42);
        let p = Partition::build(&g, 4, 42);
        let json = serde_json::to_string(&p).expect("partition serializes");
        let fixture_path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/fixtures/partition_ripple400_s4_seed42.json"
        );
        if std::env::var_os("SPIDER_REGEN_FIXTURES").is_some() {
            std::fs::write(fixture_path, &json).expect("fixture written");
        }
        let expected = std::fs::read_to_string(fixture_path)
            .unwrap_or_else(|e| panic!("missing fixture {fixture_path}: {e}"));
        assert_eq!(
            json.trim(),
            expected.trim(),
            "partition of the medium topology drifted from the pinned fixture; \
             if intentional, regenerate tests/fixtures/partition_ripple400_s4_seed42.json"
        );
    }
}
