//! Plain-text (de)serialization of topologies.
//!
//! Format: one channel per line, `a b balance_a balance_b` (node indices and
//! token balances), `#`-prefixed comments, and a leading `nodes N` header.
//! Designed so topologies can be exported, diffed, and re-imported
//! deterministically.

use spider_core::{Amount, Network, NodeId};
use std::fmt::Write as _;

/// Serializes a network into the edge-list text format.
pub fn to_edge_list(network: &Network) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# spider topology: {} nodes, {} channels",
        network.num_nodes(),
        network.num_channels()
    );
    let _ = writeln!(out, "nodes {}", network.num_nodes());
    for ch in network.channels() {
        let _ = writeln!(
            out,
            "{} {} {} {}",
            ch.a.0, ch.b.0, ch.balance_a, ch.balance_b
        );
    }
    out
}

/// Errors from parsing the edge-list format.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseError {
    /// Missing or malformed `nodes N` header.
    MissingHeader,
    /// A line did not have the expected `a b bal_a bal_b` shape.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingHeader => write!(f, "missing `nodes N` header"),
            ParseError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses the edge-list text format back into a [`Network`].
pub fn from_edge_list(text: &str) -> Result<Network, ParseError> {
    let mut network: Option<Network> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("nodes ") {
            let n: usize = rest.trim().parse().map_err(|_| ParseError::BadLine {
                line: idx + 1,
                reason: format!("bad node count `{rest}`"),
            })?;
            network = Some(Network::new(n));
            continue;
        }
        let g = network.as_mut().ok_or(ParseError::MissingHeader)?;
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 4 {
            return Err(ParseError::BadLine {
                line: idx + 1,
                reason: format!("expected 4 fields, got {}", parts.len()),
            });
        }
        let parse_u32 = |s: &str| -> Result<u32, ParseError> {
            s.parse().map_err(|_| ParseError::BadLine {
                line: idx + 1,
                reason: format!("bad node id `{s}`"),
            })
        };
        let parse_amt = |s: &str| -> Result<Amount, ParseError> {
            s.parse::<f64>()
                .map(Amount::from_tokens)
                .map_err(|_| ParseError::BadLine {
                    line: idx + 1,
                    reason: format!("bad amount `{s}`"),
                })
        };
        let a = NodeId(parse_u32(parts[0])?);
        let b = NodeId(parse_u32(parts[1])?);
        let bal_a = parse_amt(parts[2])?;
        let bal_b = parse_amt(parts[3])?;
        g.add_channel_with_balances(a, b, bal_a, bal_b)
            .map_err(|e| ParseError::BadLine {
                line: idx + 1,
                reason: e.to_string(),
            })?;
    }
    network.ok_or(ParseError::MissingHeader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::ring;

    #[test]
    fn round_trip() {
        let g = ring(6, Amount::from_whole(50));
        let text = to_edge_list(&g);
        let g2 = from_edge_list(&text).unwrap();
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(g.num_channels(), g2.num_channels());
        for (a, b) in g.channels().iter().zip(g2.channels()) {
            assert_eq!(
                (a.a, a.b, a.balance_a, a.balance_b),
                (b.a, b.b, b.balance_a, b.balance_b)
            );
        }
    }

    #[test]
    fn fractional_balances_round_trip() {
        let mut g = Network::new(2);
        g.add_channel_with_balances(
            NodeId(0),
            NodeId(1),
            Amount::from_tokens(1.5),
            Amount::from_tokens(2.25),
        )
        .unwrap();
        let g2 = from_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(g2.channels()[0].balance_a, Amount::from_tokens(1.5));
        assert_eq!(g2.channels()[0].balance_b, Amount::from_tokens(2.25));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\nnodes 2\n# channel below\n0 1 5 5\n";
        let g = from_edge_list(text).unwrap();
        assert_eq!(g.num_channels(), 1);
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(
            from_edge_list("0 1 5 5\n").unwrap_err(),
            ParseError::MissingHeader
        );
        assert_eq!(from_edge_list("").unwrap_err(), ParseError::MissingHeader);
    }

    #[test]
    fn bad_lines_reported_with_numbers() {
        let err = from_edge_list("nodes 2\n0 1 5\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine { line: 2, .. }));
        let err = from_edge_list("nodes 2\n0 x 5 5\n").unwrap_err();
        assert!(err.to_string().contains("bad node id"));
    }

    #[test]
    fn duplicate_channel_rejected() {
        let err = from_edge_list("nodes 2\n0 1 5 5\n1 0 3 3\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine { line: 3, .. }));
    }
}
