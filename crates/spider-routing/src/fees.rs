//! Routing fees (§2: intermediaries earn a fee for relaying; §7 discusses
//! the economics).
//!
//! A [`FeeSchedule`] assigns every channel a Lightning-style fee: a flat
//! base plus a proportional part in parts-per-million. Forwarding `m`
//! tokens over a hop requires delivering `m + fee(m)` *into* that hop, so
//! the amounts to lock grow from the receiver backwards — computed by
//! [`FeeSchedule::path_amounts`]. [`cheapest_path`] finds the route
//! minimizing total fees for a probe amount, modeling the paper's "rational
//! users \[who\] prefer cheaper routes".

use crate::paths::shortest_path;
use spider_core::{Amount, ChannelId, Network, NodeId, Path};
use std::collections::BinaryHeap;

/// Per-channel fee parameters: `fee(m) = base + m · rate_ppm / 10⁶`.
#[derive(Clone, Debug)]
pub struct FeeSchedule {
    base: Vec<Amount>,
    rate_ppm: Vec<u32>,
}

impl FeeSchedule {
    /// A schedule where every relay is free.
    pub fn zero(network: &Network) -> Self {
        FeeSchedule {
            base: vec![Amount::ZERO; network.num_channels()],
            rate_ppm: vec![0; network.num_channels()],
        }
    }

    /// The same base + proportional fee on every channel.
    pub fn uniform(network: &Network, base: Amount, rate_ppm: u32) -> Self {
        assert!(!base.is_negative());
        FeeSchedule {
            base: vec![base; network.num_channels()],
            rate_ppm: vec![rate_ppm; network.num_channels()],
        }
    }

    /// Overrides one channel's fee.
    pub fn set(&mut self, channel: ChannelId, base: Amount, rate_ppm: u32) {
        assert!(!base.is_negative());
        self.base[channel.index()] = base;
        self.rate_ppm[channel.index()] = rate_ppm;
    }

    /// Fee charged for forwarding `amount` across `channel`. Saturates at
    /// [`Amount::MAX`] for absurd inputs instead of wrapping.
    pub fn fee(&self, channel: ChannelId, amount: Amount) -> Amount {
        self.base[channel.index()].saturating_add(Amount::from_micros(
            (amount.micros() as i128 * self.rate_ppm[channel.index()] as i128 / 1_000_000) as i64,
        ))
    }

    /// `true` when every channel relays for free.
    pub fn is_free(&self) -> bool {
        self.base.iter().all(|b| b.is_zero()) && self.rate_ppm.iter().all(|&r| r == 0)
    }

    /// Per-channel `(base, rate_ppm)` parameters in channel-id order, for
    /// serializing a schedule into an engine snapshot.
    pub fn per_channel(&self) -> Vec<(Amount, u32)> {
        self.base
            .iter()
            .copied()
            .zip(self.rate_ppm.iter().copied())
            .collect()
    }

    /// Per-hop amounts to lock so that `delivered` arrives at the
    /// destination: computed from the last hop backwards — each upstream
    /// hop must carry the downstream amount plus the downstream hop's fee.
    ///
    /// `amounts[i]` is what hop `i`'s sender locks; `amounts[0] − delivered`
    /// is the total fee the payment's sender pays.
    ///
    /// By Lightning convention the *first* hop charges nothing (the sender
    /// spends its own channel).
    pub fn path_amounts(&self, path: &Path, delivered: Amount) -> Vec<Amount> {
        let hops = path.hops();
        let mut amounts = vec![delivered; hops.len()];
        // Walk backwards: hop i must deliver amounts[i+1] plus hop i+1's fee.
        for i in (0..hops.len().saturating_sub(1)).rev() {
            let (next_channel, _) = hops[i + 1];
            amounts[i] = amounts[i + 1].saturating_add(self.fee(next_channel, amounts[i + 1]));
        }
        amounts
    }

    /// Total fee the sender pays to deliver `delivered` along `path`.
    pub fn total_fee(&self, path: &Path, delivered: Amount) -> Amount {
        self.path_amounts(path, delivered)[0].saturating_sub(delivered)
    }
}

/// The cheapest (minimum total fee) route for delivering `probe` tokens,
/// ties broken by hop count then node ids. Returns the unweighted shortest
/// path when the schedule is free.
pub fn cheapest_path(
    network: &Network,
    fees: &FeeSchedule,
    src: NodeId,
    dst: NodeId,
    probe: Amount,
) -> Option<Path> {
    if fees.is_free() {
        return shortest_path(network, src, dst);
    }
    if src == dst {
        return None;
    }
    // Dijkstra from the destination backwards so per-hop fee composition is
    // exact: need[v] = amount v must forward for `probe` to arrive at dst.
    // The sender's own first hop charges nothing (Lightning convention, and
    // what `path_amounts` implements), so the best route is chosen by
    // minimizing over src's *neighbors* rather than relaxing into src —
    // relaxing into src would wrongly price the fee-free first hop.
    let n = network.num_nodes();
    const INF: i64 = i64::MAX / 4;
    let mut need: Vec<(i64, u32)> = vec![(INF, u32::MAX); n]; // (micros, hops)
    let mut next_hop: Vec<Option<NodeId>> = vec![None; n];
    need[dst.index()] = (probe.micros(), 0);
    let mut heap: BinaryHeap<std::cmp::Reverse<(i64, u32, NodeId)>> = BinaryHeap::new();
    heap.push(std::cmp::Reverse((probe.micros(), 0, dst)));
    while let Some(std::cmp::Reverse((cost, hops, v))) = heap.pop() {
        if (cost, hops) > need[v.index()] {
            continue;
        }
        for &(u, c) in network.neighbors(v) {
            if u == src {
                continue; // src's hop is priced separately below
            }
            // u forwards toward v: u must send cost plus this hop's fee.
            let forwarded = Amount::from_micros(cost);
            let fee = fees.fee(c, forwarded);
            let cand = (cost.saturating_add(fee.micros()), hops + 1);
            if cand < need[u.index()] {
                need[u.index()] = cand;
                next_hop[u.index()] = Some(v);
                heap.push(std::cmp::Reverse((cand.0, cand.1, u)));
            }
        }
    }
    // First hop: free for the sender; pick the neighbor that needs the
    // least (ties: fewer hops, then lower node id).
    let mut first: Option<((i64, u32, NodeId), NodeId)> = None;
    for &(w, _) in network.neighbors(src) {
        if w == dst {
            // Direct channel: nothing to forward through, zero fee.
            first = Some(((probe.micros(), 0, w), w));
            break;
        }
        let (cost, hops) = need[w.index()];
        if cost >= INF {
            continue;
        }
        let key = (cost, hops, w);
        if first.is_none_or(|(best, _)| key < best) {
            first = Some((key, w));
        }
    }
    let (_, mut cur) = first?;
    let mut nodes = vec![src, cur];
    while cur != dst {
        // Reached nodes always have a next hop; `?` degrades to "no path"
        // if that invariant is ever broken.
        let nxt = next_hop[cur.index()]?;
        nodes.push(nxt);
        cur = nxt;
    }
    Path::new(network, nodes).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Network {
        // Two routes 0->3: via 1 and via 2.
        let mut g = Network::new(4);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(100))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(3), Amount::from_whole(100))
            .unwrap();
        g.add_channel(NodeId(0), NodeId(2), Amount::from_whole(100))
            .unwrap();
        g.add_channel(NodeId(2), NodeId(3), Amount::from_whole(100))
            .unwrap();
        g
    }

    #[test]
    fn zero_schedule_is_free() {
        let g = diamond();
        let f = FeeSchedule::zero(&g);
        assert!(f.is_free());
        let p = Path::new(&g, vec![NodeId(0), NodeId(1), NodeId(3)]).unwrap();
        assert_eq!(f.total_fee(&p, Amount::from_whole(10)), Amount::ZERO);
        let amounts = f.path_amounts(&p, Amount::from_whole(10));
        assert_eq!(amounts, vec![Amount::from_whole(10); 2]);
    }

    #[test]
    fn proportional_fee_math() {
        let g = diamond();
        let f = FeeSchedule::uniform(&g, Amount::from_micros(100), 10_000); // 1%
        let c = g.channel_between(NodeId(0), NodeId(1)).unwrap().id;
        // fee(10) = 0.0001 + 0.1 = 0.1001 tokens
        assert_eq!(
            f.fee(c, Amount::from_whole(10)),
            Amount::from_tokens(0.1001)
        );
    }

    #[test]
    fn path_amounts_compound_backwards() {
        let g = diamond();
        let f = FeeSchedule::uniform(&g, Amount::ZERO, 100_000); // 10%
        let p = Path::new(&g, vec![NodeId(0), NodeId(1), NodeId(3)]).unwrap();
        let amounts = f.path_amounts(&p, Amount::from_whole(10));
        // Last hop carries 10; first hop carries 10 + 10% of 10 = 11
        // (sender's own hop is free).
        assert_eq!(amounts[1], Amount::from_whole(10));
        assert_eq!(amounts[0], Amount::from_whole(11));
        assert_eq!(
            f.total_fee(&p, Amount::from_whole(10)),
            Amount::from_whole(1)
        );
    }

    #[test]
    fn single_hop_pays_no_fee() {
        let g = diamond();
        let f = FeeSchedule::uniform(&g, Amount::from_whole(1), 500_000);
        let p = Path::new(&g, vec![NodeId(0), NodeId(1)]).unwrap();
        assert_eq!(f.total_fee(&p, Amount::from_whole(10)), Amount::ZERO);
    }

    #[test]
    fn cheapest_path_avoids_expensive_route() {
        let g = diamond();
        let mut f = FeeSchedule::zero(&g);
        // Make the 1-route expensive on its second hop.
        let c13 = g.channel_between(NodeId(1), NodeId(3)).unwrap().id;
        f.set(c13, Amount::from_whole(5), 0);
        let c23 = g.channel_between(NodeId(2), NodeId(3)).unwrap().id;
        f.set(c23, Amount::from_micros(1), 0);
        let p = cheapest_path(&g, &f, NodeId(0), NodeId(3), Amount::from_whole(10)).unwrap();
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn cheapest_path_free_schedule_falls_back_to_shortest() {
        let g = diamond();
        let f = FeeSchedule::zero(&g);
        let p = cheapest_path(&g, &f, NodeId(0), NodeId(3), Amount::ONE).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn cheapest_path_none_for_disconnected() {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::ONE).unwrap();
        let f = FeeSchedule::uniform(&g, Amount::ONE, 0);
        assert!(cheapest_path(&g, &f, NodeId(0), NodeId(2), Amount::ONE).is_none());
        assert!(cheapest_path(&g, &f, NodeId(0), NodeId(0), Amount::ONE).is_none());
    }

    #[test]
    fn first_hop_fee_is_not_priced_into_route_choice() {
        // Route A's only fee sits on the sender's own (free) first hop;
        // route B has a small fee on its second hop. True sender cost:
        // A = 0, B > 0 — the router must pick A despite the nominal fee.
        let g = diamond();
        let mut f = FeeSchedule::zero(&g);
        let c01 = g.channel_between(NodeId(0), NodeId(1)).unwrap().id;
        f.set(c01, Amount::from_whole(50), 0); // huge, but never charged
        let c23 = g.channel_between(NodeId(2), NodeId(3)).unwrap().id;
        f.set(c23, Amount::from_micros(500), 0);
        let p = cheapest_path(&g, &f, NodeId(0), NodeId(3), Amount::from_whole(10)).unwrap();
        assert_eq!(
            p.nodes(),
            &[NodeId(0), NodeId(1), NodeId(3)],
            "free first hop wins"
        );
        assert_eq!(f.total_fee(&p, Amount::from_whole(10)), Amount::ZERO);
    }

    #[test]
    fn fee_ties_break_to_fewer_hops() {
        // Equal fees: prefer the 2-hop route over a 3-hop one.
        let mut g = Network::new(4);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(10))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(3), Amount::from_whole(10))
            .unwrap();
        g.add_channel(NodeId(0), NodeId(2), Amount::from_whole(10))
            .unwrap();
        g.add_channel(NodeId(2), NodeId(1), Amount::from_whole(10))
            .unwrap();
        let f = FeeSchedule::uniform(&g, Amount::ZERO, 0);
        // Force the non-free branch by adding a tiny fee everywhere.
        let mut f2 = f.clone();
        for ch in g.channels() {
            f2.set(ch.id, Amount::from_micros(1), 0);
        }
        let p = cheapest_path(&g, &f2, NodeId(0), NodeId(3), Amount::ONE).unwrap();
        assert_eq!(p.len(), 2, "{p}");
    }
}
