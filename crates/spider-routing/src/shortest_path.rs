//! Packet-switched shortest-path routing — the paper's baseline for its own
//! architecture ("shortest-path routing with non-atomic payments", §6.1).

use crate::paths::{path_bottleneck, PathCache, PathStrategy};
use crate::scheme::{RoutingScheme, SchemeKind, UnitDecision};
use spider_core::{Amount, BalanceView, Network, NodeId};

/// Routes every transaction unit on the (cached) BFS shortest path.
#[derive(Debug)]
pub struct ShortestPathScheme {
    cache: PathCache,
}

impl ShortestPathScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        ShortestPathScheme {
            cache: PathCache::new(PathStrategy::Shortest),
        }
    }
}

impl Default for ShortestPathScheme {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutingScheme for ShortestPathScheme {
    fn name(&self) -> &'static str {
        "shortest-path"
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::PacketSwitched
    }

    fn route_unit(
        &mut self,
        network: &Network,
        balances: &dyn BalanceView,
        src: NodeId,
        dst: NodeId,
        unit: Amount,
    ) -> UnitDecision {
        let paths = self.cache.paths(network, src, dst);
        let Some(path) = paths.first() else {
            return UnitDecision::Never;
        };
        if path_bottleneck(balances, path) >= unit {
            UnitDecision::Route(std::sync::Arc::clone(path))
        } else {
            UnitDecision::Unavailable
        }
    }

    fn telemetry_stats(&self) -> Vec<(&'static str, u64)> {
        let s = self.cache.stats();
        vec![
            ("routing.paths.lookups", s.lookups),
            ("routing.paths.computed_pairs", s.computed_pairs),
            ("routing.paths.computed", s.computed_paths),
        ]
    }

    fn checkpoint_state(&self) -> Option<Vec<u8>> {
        Some(self.cache.checkpoint())
    }

    fn restore_state(
        &mut self,
        network: &Network,
        bytes: &[u8],
    ) -> Result<(), spider_core::CoreError> {
        self.cache
            .restore(network, bytes)
            .map_err(|e| spider_core::CoreError::Internal(format!("path cache restore: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_core::Path;

    fn line3() -> Network {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(10))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(2), Amount::from_whole(10))
            .unwrap();
        g
    }

    #[test]
    fn routes_on_shortest_path() {
        let g = line3();
        let mut s = ShortestPathScheme::new();
        match s.route_unit(&g, &g, NodeId(0), NodeId(2), Amount::ONE) {
            UnitDecision::Route(p) => {
                assert_eq!(p.nodes(), &[NodeId(0), NodeId(1), NodeId(2)]);
            }
            other => panic!("expected route, got {other:?}"),
        }
    }

    #[test]
    fn unavailable_when_unit_exceeds_bottleneck() {
        let g = line3();
        let mut s = ShortestPathScheme::new();
        // Each side holds 5; a 6-token unit cannot pass.
        assert_eq!(
            s.route_unit(&g, &g, NodeId(0), NodeId(2), Amount::from_whole(6)),
            UnitDecision::Unavailable
        );
    }

    #[test]
    fn never_for_disconnected_pair() {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::ONE).unwrap();
        let mut s = ShortestPathScheme::new();
        assert_eq!(
            s.route_unit(&g, &g, NodeId(0), NodeId(2), Amount::ONE),
            UnitDecision::Never
        );
    }

    #[test]
    fn respects_live_balances() {
        // A custom view where one direction is drained.
        struct Drained<'a>(&'a Network);
        impl BalanceView for Drained<'_> {
            fn available(&self, c: spider_core::ChannelId, from: NodeId) -> Amount {
                if from == NodeId(1) {
                    Amount::ZERO
                } else {
                    self.0.available(c, from)
                }
            }
        }
        let g = line3();
        let mut s = ShortestPathScheme::new();
        let v = Drained(&g);
        assert_eq!(
            s.route_unit(&g, &v, NodeId(0), NodeId(2), Amount::ONE),
            UnitDecision::Unavailable
        );
        // Sanity: path objects remain valid trails.
        let p = Path::new(&g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(p.len(), 2);
    }
}
