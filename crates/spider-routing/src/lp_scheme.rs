//! Spider (LP): routing driven by an offline fluid-LP solution (§6.1).
//!
//! The controller solves the balanced-routing LP (eqs. (1)–(5)) once against
//! an estimated demand matrix and uses the optimal path flows as *weights*:
//! each pair's transaction units are spread across its candidate paths in
//! proportion to the LP rates, via deterministic deficit-round-robin.
//! Pairs the LP assigned zero rate are never attempted — exactly the
//! behaviour (and limitation) the paper reports for Spider (LP).

use crate::paths::path_bottleneck;
use crate::scheme::{RoutingScheme, SchemeKind, UnitDecision};
use spider_core::{Amount, BalanceView, DemandMatrix, Network, NodeId, PairTable, Path};
use spider_opt::fluid::FluidProblem;
use spider_opt::primal_dual::{self, PrimalDualConfig};

/// Minimum LP rate (tokens/sec) for a path to participate in routing.
const WEIGHT_FLOOR: f64 = 1e-6;

/// Per-pair weighted path set with deficit-round-robin state.
#[derive(Clone, Debug)]
struct PairPlan {
    paths: Vec<std::sync::Arc<Path>>,
    weights: Vec<f64>,
    credits: Vec<f64>,
}

/// The Spider (LP) routing scheme.
#[derive(Clone, Debug)]
pub struct LpScheme {
    plans: PairTable<PairPlan>,
}

impl LpScheme {
    /// Builds the scheme from candidate paths and their optimal flows
    /// (aligned slices, as returned by the fluid solvers).
    pub fn from_flows(paths: &[Path], flows: &[f64]) -> Self {
        assert_eq!(paths.len(), flows.len(), "paths and flows must align");
        let mut plans: PairTable<PairPlan> = PairTable::new();
        for (p, &w) in paths.iter().zip(flows) {
            if w < WEIGHT_FLOOR {
                continue;
            }
            let plan = plans.entry_or_insert_with(p.source(), p.dest(), || PairPlan {
                paths: Vec::new(),
                weights: Vec::new(),
                credits: Vec::new(),
            });
            plan.paths.push(std::sync::Arc::new(p.clone()));
            plan.weights.push(w);
            plan.credits.push(0.0);
        }
        LpScheme { plans }
    }

    /// Solves the balanced fluid LP exactly (dense simplex) and builds the
    /// scheme from the optimum. Suitable for small/medium instances.
    pub fn solve_exact(
        network: &Network,
        demand: &DemandMatrix,
        paths: &[Path],
        delta: f64,
    ) -> Self {
        let sol = FluidProblem::new(network, demand, paths, delta).max_balanced_throughput();
        Self::from_flows(paths, &sol.path_flows)
    }

    /// Solves for a *proportionally fair* allocation instead of maximum
    /// throughput (the alternative objective the paper proposes in §6.2 to
    /// stop the LP from starving zero-flow commodities) and builds the
    /// scheme from the fair rates.
    pub fn solve_fair(
        network: &Network,
        demand: &DemandMatrix,
        paths: &[Path],
        delta: f64,
        config: &spider_opt::utility::FairnessConfig,
    ) -> Self {
        let problem = FluidProblem::new(network, demand, paths, delta);
        let fair = spider_opt::utility::proportional_fair(&problem, config);
        Self::from_flows(paths, &fair.path_flows)
    }

    /// Solves the balanced fluid LP approximately with the decentralized
    /// primal-dual algorithm (scales to instances too large for the dense
    /// simplex) and builds the scheme from the result.
    pub fn solve_decentralized(
        network: &Network,
        demand: &DemandMatrix,
        paths: &[Path],
        delta: f64,
        config: &PrimalDualConfig,
    ) -> Self {
        let sol = primal_dual::solve(network, demand, paths, delta, config);
        Self::from_flows(paths, &sol.path_flows)
    }

    /// Number of pairs with at least one positively weighted path.
    pub fn active_pairs(&self) -> usize {
        self.plans.len()
    }
}

impl RoutingScheme for LpScheme {
    fn name(&self) -> &'static str {
        "spider-lp"
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::PacketSwitched
    }

    fn route_unit(
        &mut self,
        _network: &Network,
        balances: &dyn BalanceView,
        src: NodeId,
        dst: NodeId,
        unit: Amount,
    ) -> UnitDecision {
        let Some(plan) = self.plans.get_mut(src, dst) else {
            // The LP assigned this commodity zero flow.
            return UnitDecision::Never;
        };
        // Deficit round-robin: top up credits proportionally to the LP
        // weights, then send on the highest-credit path with capacity.
        let total: f64 = plan.weights.iter().sum();
        for (c, w) in plan.credits.iter_mut().zip(&plan.weights) {
            *c += w / total;
        }
        // Candidate order: decreasing credit (deterministic tie-break on index).
        let mut order: Vec<usize> = (0..plan.paths.len()).collect();
        order.sort_by(|&i, &j| plan.credits[j].total_cmp(&plan.credits[i]).then(i.cmp(&j)));
        for &i in &order {
            if path_bottleneck(balances, &plan.paths[i]) >= unit {
                plan.credits[i] -= 1.0;
                return UnitDecision::Route(plan.paths[i].clone());
            }
        }
        UnitDecision::Unavailable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_core::Amount;
    use spider_opt::fluid::enumerate_demand_paths;

    fn fig4_network() -> Network {
        let mut g = Network::new(5);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)] {
            g.add_channel(NodeId(a), NodeId(b), Amount::from_tokens(1e6))
                .unwrap();
        }
        g
    }

    #[test]
    fn circulation_pairs_routable_and_rates_capped() {
        let g = fig4_network();
        let demand = DemandMatrix::fig4_example();
        let paths = enumerate_demand_paths(&g, &demand, 5);
        let mut scheme = LpScheme::solve_exact(&g, &demand, &paths, 1.0);
        // The optimum routes the circulation (value 8 of 12): every pair
        // with positive LP rate must be routable right now on the fresh
        // network.
        let mut routable = 0;
        for (s, d, _) in demand.entries() {
            if let UnitDecision::Route(_) = scheme.route_unit(&g, &g, s, d, Amount::from_micros(1))
            {
                routable += 1;
            }
        }
        assert!(
            routable >= 5,
            "most circulation pairs routable, got {routable}"
        );
        assert!(scheme.active_pairs() <= demand.len());
    }

    #[test]
    fn pure_dag_demand_is_never_attempted() {
        // A one-way demand gets zero LP rate (no circulation), so the LP
        // scheme must answer `Never` — the paper's reported limitation.
        let mut g = Network::new(2);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(1000))
            .unwrap();
        let mut demand = DemandMatrix::new();
        demand.set(NodeId(0), NodeId(1), 5.0);
        let paths = enumerate_demand_paths(&g, &demand, 2);
        let mut scheme = LpScheme::solve_exact(&g, &demand, &paths, 1.0);
        assert_eq!(scheme.active_pairs(), 0);
        assert_eq!(
            scheme.route_unit(&g, &g, NodeId(0), NodeId(1), Amount::ONE),
            UnitDecision::Never
        );
    }

    #[test]
    fn unknown_pair_is_never() {
        let g = fig4_network();
        let scheme_paths: Vec<Path> = Vec::new();
        let mut scheme = LpScheme::from_flows(&scheme_paths, &[]);
        assert_eq!(
            scheme.route_unit(&g, &g, NodeId(0), NodeId(2), Amount::ONE),
            UnitDecision::Never
        );
    }

    #[test]
    fn drr_spreads_proportionally() {
        // Two parallel 2-hop paths with weights 3:1.
        let mut g = Network::new(4);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(1000))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(3), Amount::from_whole(1000))
            .unwrap();
        g.add_channel(NodeId(0), NodeId(2), Amount::from_whole(1000))
            .unwrap();
        g.add_channel(NodeId(2), NodeId(3), Amount::from_whole(1000))
            .unwrap();
        let p1 = Path::new(&g, vec![NodeId(0), NodeId(1), NodeId(3)]).unwrap();
        let p2 = Path::new(&g, vec![NodeId(0), NodeId(2), NodeId(3)]).unwrap();
        let mut scheme = LpScheme::from_flows(&[p1.clone(), p2.clone()], &[3.0, 1.0]);
        let mut count1 = 0;
        for _ in 0..400 {
            match scheme.route_unit(&g, &g, NodeId(0), NodeId(3), Amount::from_micros(1)) {
                UnitDecision::Route(p) => {
                    if p.nodes() == p1.nodes() {
                        count1 += 1;
                    }
                }
                other => panic!("{other:?}"),
            }
        }
        assert!(
            (295..=305).contains(&count1),
            "expected ~300/400 on the 3-weight path, got {count1}"
        );
    }

    #[test]
    fn falls_back_to_lower_weight_path_when_drained() {
        let mut g = Network::new(4);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(1))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(3), Amount::from_whole(1))
            .unwrap();
        g.add_channel(NodeId(0), NodeId(2), Amount::from_whole(1000))
            .unwrap();
        g.add_channel(NodeId(2), NodeId(3), Amount::from_whole(1000))
            .unwrap();
        let p1 = Path::new(&g, vec![NodeId(0), NodeId(1), NodeId(3)]).unwrap();
        let p2 = Path::new(&g, vec![NodeId(0), NodeId(2), NodeId(3)]).unwrap();
        let mut scheme = LpScheme::from_flows(&[p1, p2.clone()], &[100.0, 1.0]);
        // A 2-token unit cannot fit the 0.5-per-side preferred path.
        match scheme.route_unit(&g, &g, NodeId(0), NodeId(3), Amount::from_whole(2)) {
            UnitDecision::Route(p) => assert_eq!(p.nodes(), p2.nodes()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fair_solve_activates_more_pairs_than_throughput() {
        // Shared bottleneck: throughput LP may starve the 2-hop pair; the
        // fair LP must keep every routable pair active.
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(20))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(2), Amount::from_whole(20))
            .unwrap();
        let mut demand = DemandMatrix::new();
        demand.set(NodeId(0), NodeId(2), 100.0);
        demand.set(NodeId(2), NodeId(0), 100.0);
        demand.set(NodeId(0), NodeId(1), 100.0);
        demand.set(NodeId(1), NodeId(0), 100.0);
        let paths = enumerate_demand_paths(&g, &demand, 3);
        let fair = LpScheme::solve_fair(
            &g,
            &demand,
            &paths,
            1.0,
            &spider_opt::utility::FairnessConfig::default(),
        );
        assert_eq!(fair.active_pairs(), 4, "fairness keeps all pairs alive");
    }

    #[test]
    fn exact_and_decentralized_agree_on_active_pairs() {
        let g = fig4_network();
        let demand = DemandMatrix::fig4_example();
        let paths = enumerate_demand_paths(&g, &demand, 5);
        let exact = LpScheme::solve_exact(&g, &demand, &paths, 1.0);
        let config = PrimalDualConfig {
            max_iters: 20_000,
            ..Default::default()
        };
        let approx = LpScheme::solve_decentralized(&g, &demand, &paths, 1.0, &config);
        assert!(exact.active_pairs() > 0);
        assert!(approx.active_pairs() > 0);
        // The approximate solution should activate at least the circulation
        // pairs the exact one does (it may keep a few near-zero extras).
        assert!(approx.active_pairs() + 2 >= exact.active_pairs());
    }
}
