//! SilentWhispers-style landmark routing (atomic baseline, \[18\] in the
//! paper).
//!
//! A fixed set of well-connected *landmarks* act as rendezvous points:
//! every payment is split into equal shares, one per landmark, and each
//! share travels sender → landmark → receiver. The payment succeeds only if
//! every share can be funded simultaneously — the atomic, circuit-switched
//! behaviour Spider's packet switching is compared against.
//!
//! Only the routing behaviour is reproduced here; SilentWhispers'
//! multi-party-computation privacy layer does not affect throughput or
//! success metrics.

use crate::paths::shortest_path;
use crate::scheme::{split_evenly, BalanceOverlay, RoutingScheme, SchemeKind};
use spider_core::{Amount, BalanceView, Network, NodeId, PairTable, Path};
use std::collections::BTreeMap;

/// The SilentWhispers-style landmark routing scheme.
#[derive(Debug)]
pub struct SilentWhispersScheme {
    landmarks: Vec<NodeId>,
    /// Cached landmark paths per (src, dst): one entry per landmark that has
    /// a valid loop-collapsed path.
    cache: PairTable<Vec<Path>>,
}

impl SilentWhispersScheme {
    /// Creates the scheme with the `num_landmarks` highest-degree nodes as
    /// landmarks (ties broken by node id).
    pub fn new(network: &Network, num_landmarks: usize) -> Self {
        assert!(num_landmarks >= 1);
        let mut nodes: Vec<NodeId> = network.nodes().collect();
        nodes.sort_by_key(|&n| (std::cmp::Reverse(network.degree(n)), n));
        nodes.truncate(num_landmarks);
        SilentWhispersScheme {
            landmarks: nodes,
            cache: PairTable::new(),
        }
    }

    /// Creates the scheme with an explicit landmark set.
    pub fn with_landmarks(landmarks: Vec<NodeId>) -> Self {
        assert!(!landmarks.is_empty());
        SilentWhispersScheme {
            landmarks,
            cache: PairTable::new(),
        }
    }

    /// The landmark set.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    fn landmark_paths(&mut self, network: &Network, src: NodeId, dst: NodeId) -> &[Path] {
        let landmarks = self.landmarks.clone();
        self.cache.entry_or_insert_with(src, dst, || {
            landmarks
                .iter()
                .filter_map(|&lm| landmark_path(network, src, lm, dst))
                .collect()
        })
    }
}

/// Builds the loop-collapsed sender → landmark → receiver path, if both legs
/// exist.
fn landmark_path(network: &Network, src: NodeId, lm: NodeId, dst: NodeId) -> Option<Path> {
    let mut nodes: Vec<NodeId> = if src == lm {
        vec![src]
    } else {
        shortest_path(network, src, lm)?.nodes().to_vec()
    };
    if lm != dst {
        let second = shortest_path(network, lm, dst)?;
        nodes.extend_from_slice(&second.nodes()[1..]);
    }
    if nodes.len() < 2 {
        return None;
    }
    // Collapse loops: keep only the segment between the first and last use
    // of each revisited node.
    let mut collapsed: Vec<NodeId> = Vec::with_capacity(nodes.len());
    let mut position: BTreeMap<NodeId, usize> = BTreeMap::new();
    for node in nodes {
        if let Some(&at) = position.get(&node) {
            for removed in collapsed.drain(at + 1..) {
                position.remove(&removed);
            }
        } else {
            position.insert(node, collapsed.len());
            collapsed.push(node);
        }
    }
    if collapsed.len() < 2 {
        return None;
    }
    // Loop collapsing leaves a simple path, which is always a valid trail.
    Path::new(network, collapsed).ok()
}

impl RoutingScheme for SilentWhispersScheme {
    fn name(&self) -> &'static str {
        "silentwhispers"
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::Atomic
    }

    fn route_payment(
        &mut self,
        network: &Network,
        balances: &dyn BalanceView,
        src: NodeId,
        dst: NodeId,
        amount: Amount,
    ) -> Option<Vec<(Path, Amount)>> {
        let paths: Vec<Path> = self.landmark_paths(network, src, dst).to_vec();
        if paths.is_empty() {
            return None;
        }
        let shares = split_evenly(amount, paths.len());
        let mut overlay = BalanceOverlay::new(balances);
        let mut parts = Vec::with_capacity(paths.len());
        for (path, share) in paths.into_iter().zip(shares) {
            if share.is_zero() {
                continue;
            }
            if overlay.bottleneck(&path) < share {
                return None; // atomic: any unfunded share fails the payment
            }
            overlay.debit_path(&path, share);
            parts.push((path, share));
        }
        if parts.is_empty() {
            None
        } else {
            Some(parts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hub-and-spoke plus a ring: nodes 0..6, node 0 is the obvious landmark.
    fn hub_network() -> Network {
        let mut g = Network::new(6);
        for i in 1..6u32 {
            g.add_channel(NodeId(0), NodeId(i), Amount::from_whole(20))
                .unwrap();
        }
        for i in 1..5u32 {
            g.add_channel(NodeId(i), NodeId(i + 1), Amount::from_whole(20))
                .unwrap();
        }
        g
    }

    #[test]
    fn picks_highest_degree_landmarks() {
        let g = hub_network();
        let s = SilentWhispersScheme::new(&g, 2);
        assert_eq!(s.landmarks()[0], NodeId(0));
        assert_eq!(s.landmarks().len(), 2);
    }

    #[test]
    fn routes_through_landmark() {
        let g = hub_network();
        let mut s = SilentWhispersScheme::with_landmarks(vec![NodeId(0)]);
        let parts = s
            .route_payment(&g, &g, NodeId(1), NodeId(4), Amount::from_whole(5))
            .expect("routable via hub");
        assert_eq!(parts.len(), 1);
        let (path, amt) = &parts[0];
        assert_eq!(amt, &Amount::from_whole(5));
        assert!(
            path.nodes().contains(&NodeId(0)),
            "must pass the landmark: {path}"
        );
    }

    #[test]
    fn splits_across_landmarks() {
        let g = hub_network();
        let mut s = SilentWhispersScheme::with_landmarks(vec![NodeId(0), NodeId(3)]);
        let parts = s
            .route_payment(&g, &g, NodeId(2), NodeId(5), Amount::from_whole(6))
            .expect("routable via both landmarks");
        assert_eq!(parts.len(), 2);
        let total: Amount = parts.iter().map(|(_, v)| *v).sum();
        assert_eq!(total, Amount::from_whole(6));
    }

    #[test]
    fn atomic_failure_when_one_share_unfunded() {
        let g = hub_network();
        // Channel 0-5 has 10 spendable per side; a 30-token payment split
        // over one landmark (share 30) cannot pass any single hub channel.
        let mut s = SilentWhispersScheme::with_landmarks(vec![NodeId(0)]);
        assert!(s
            .route_payment(&g, &g, NodeId(1), NodeId(5), Amount::from_whole(30))
            .is_none());
    }

    #[test]
    fn shares_contend_for_shared_channels() {
        // Two landmarks whose paths share the src's only channel: the
        // overlay must catch the double-spend.
        let mut g = Network::new(4);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(10))
            .unwrap(); // 5 spendable
        g.add_channel(NodeId(1), NodeId(2), Amount::from_whole(100))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(3), Amount::from_whole(100))
            .unwrap();
        g.add_channel(NodeId(2), NodeId(3), Amount::from_whole(100))
            .unwrap();
        let mut s = SilentWhispersScheme::with_landmarks(vec![NodeId(2), NodeId(3)]);
        // 8 tokens -> shares of 4+4, both crossing 0-1 which has only 5.
        assert!(s
            .route_payment(&g, &g, NodeId(0), NodeId(3), Amount::from_whole(8))
            .is_none());
        // 4 tokens -> shares of 2+2 fit.
        assert!(s
            .route_payment(&g, &g, NodeId(0), NodeId(3), Amount::from_whole(4))
            .is_some());
    }

    #[test]
    fn landmark_path_collapses_loops() {
        // src -> lm and lm -> dst retrace the same channel: collapse to the
        // direct segment.
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(10))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(2), Amount::from_whole(10))
            .unwrap();
        // Landmark 0; payment 1 -> 2. Walk: 1->0 then 0->1->2 collapses to 1->2.
        let p = landmark_path(&g, NodeId(1), NodeId(0), NodeId(2)).unwrap();
        assert_eq!(p.nodes(), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn src_or_dst_as_landmark() {
        let g = hub_network();
        let p = landmark_path(&g, NodeId(0), NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.dest(), NodeId(3));
        let p = landmark_path(&g, NodeId(2), NodeId(3), NodeId(3)).unwrap();
        assert_eq!(p.dest(), NodeId(3));
    }

    #[test]
    fn unroutable_when_disconnected() {
        let mut g = Network::new(4);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(10))
            .unwrap();
        g.add_channel(NodeId(2), NodeId(3), Amount::from_whole(10))
            .unwrap();
        let mut s = SilentWhispersScheme::with_landmarks(vec![NodeId(0)]);
        assert!(s
            .route_payment(&g, &g, NodeId(0), NodeId(3), Amount::ONE)
            .is_none());
    }
}
