//! SpeedyMurmurs-style embedding-based routing (atomic baseline, \[25\] in
//! the paper).
//!
//! Nodes are assigned coordinates from spanning trees (the coordinate is the
//! path of child indices from the root). A payment is split into one share
//! per tree; each share is forwarded greedily, hop by hop, to any network
//! neighbor that is strictly closer to the destination in tree distance
//! *and* has sufficient balance. Strictly decreasing distance guarantees
//! loop-free termination; the balance check is SpeedyMurmurs'
//! imbalance-unaware weakness the paper highlights.

use crate::scheme::{split_evenly, BalanceOverlay, RoutingScheme, SchemeKind};
use spider_core::{Amount, BalanceView, Network, NodeId, Path};

/// A rooted BFS spanning tree with prefix-embedding coordinates.
#[derive(Clone, Debug)]
pub struct SpanningTree {
    root: NodeId,
    /// coord[v] = sequence of child indices from the root to v.
    coord: Vec<Vec<u32>>,
    reachable: Vec<bool>,
}

impl SpanningTree {
    /// Builds the BFS spanning tree rooted at `root`.
    pub fn new(network: &Network, root: NodeId) -> Self {
        let n = network.num_nodes();
        let mut coord: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut reachable = vec![false; n];
        let mut child_count = vec![0u32; n];
        reachable[root.index()] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in network.neighbors(u) {
                if !reachable[v.index()] {
                    reachable[v.index()] = true;
                    let mut c = coord[u.index()].clone();
                    c.push(child_count[u.index()]);
                    child_count[u.index()] += 1;
                    coord[v.index()] = c;
                    queue.push_back(v);
                }
            }
        }
        SpanningTree {
            root,
            coord,
            reachable,
        }
    }

    /// The tree's root.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Tree distance between two nodes via their coordinates, or `None` if
    /// either is outside the tree's component.
    pub fn distance(&self, u: NodeId, v: NodeId) -> Option<usize> {
        if !self.reachable[u.index()] || !self.reachable[v.index()] {
            return None;
        }
        let a = &self.coord[u.index()];
        let b = &self.coord[v.index()];
        let common = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
        Some(a.len() + b.len() - 2 * common)
    }
}

/// The SpeedyMurmurs-style embedding routing scheme.
#[derive(Clone, Debug)]
pub struct SpeedyMurmursScheme {
    trees: Vec<SpanningTree>,
}

impl SpeedyMurmursScheme {
    /// Builds the scheme with `num_trees` spanning trees rooted at
    /// deterministically pseudo-random distinct nodes (SpeedyMurmurs picks
    /// its landmarks randomly, unlike SilentWhispers' well-connected ones).
    pub fn new(network: &Network, num_trees: usize) -> Self {
        Self::with_seed(network, num_trees, 0)
    }

    /// Like [`new`](Self::new) with an explicit root-selection seed.
    pub fn with_seed(network: &Network, num_trees: usize, seed: u64) -> Self {
        assert!(num_trees >= 1);
        let n = network.num_nodes() as u64;
        assert!(n >= num_trees as u64, "need at least one node per tree");
        let mut roots: Vec<NodeId> = Vec::with_capacity(num_trees);
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        while roots.len() < num_trees {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let candidate = NodeId((state >> 33) as u32 % n as u32);
            if !roots.contains(&candidate) {
                roots.push(candidate);
            }
        }
        Self::with_roots(network, roots)
    }

    /// Builds the scheme with explicit tree roots.
    pub fn with_roots(network: &Network, roots: Vec<NodeId>) -> Self {
        assert!(!roots.is_empty());
        let trees = roots
            .into_iter()
            .map(|root| SpanningTree::new(network, root))
            .collect();
        SpeedyMurmursScheme { trees }
    }

    /// The embedding trees.
    pub fn trees(&self) -> &[SpanningTree] {
        &self.trees
    }

    /// Greedily walks one share from `src` to `dst` under `view`.
    ///
    /// As described in the paper's related-work section, embedding-based
    /// routing "relays each transaction to the neighbor whose embedding is
    /// closest to the destination's embedding": the next hop is chosen by
    /// embedded distance alone (deterministic tie-break), and the share
    /// fails if that hop's channel lacks funds — the imbalance-unawareness
    /// Spider is designed to beat.
    fn greedy_route(
        &self,
        network: &Network,
        view: &BalanceOverlay<'_>,
        tree: &SpanningTree,
        src: NodeId,
        dst: NodeId,
        share: Amount,
    ) -> Option<Path> {
        let mut nodes = vec![src];
        let mut current = src;
        let mut dist = tree.distance(current, dst)?;
        while current != dst {
            // Closest neighbor in embedded space, irrespective of balance;
            // must be strictly closer to guarantee termination.
            let mut best: Option<(usize, NodeId, spider_core::ChannelId)> = None;
            for &(v, c) in network.neighbors(current) {
                let Some(d) = tree.distance(v, dst) else {
                    continue;
                };
                if d >= dist {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bd, bn, _)) => d < bd || (d == bd && v < bn),
                };
                if better {
                    best = Some((d, v, c));
                }
            }
            let (d, v, c) = best?;
            if view.available(c, current) < share {
                return None; // the designated next hop lacks funds
            }
            nodes.push(v);
            current = v;
            dist = d;
        }
        // Strictly decreasing distance yields a simple path; if validation
        // ever disagrees, degrade to "no route" rather than aborting.
        Path::new(network, nodes).ok()
    }
}

impl RoutingScheme for SpeedyMurmursScheme {
    fn name(&self) -> &'static str {
        "speedymurmurs"
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::Atomic
    }

    fn route_payment(
        &mut self,
        network: &Network,
        balances: &dyn BalanceView,
        src: NodeId,
        dst: NodeId,
        amount: Amount,
    ) -> Option<Vec<(Path, Amount)>> {
        let shares = split_evenly(amount, self.trees.len());
        let mut overlay = BalanceOverlay::new(balances);
        let mut parts = Vec::with_capacity(self.trees.len());
        for (tree, share) in self.trees.iter().zip(shares) {
            if share.is_zero() {
                continue;
            }
            let path = self.greedy_route(network, &overlay, tree, src, dst, share)?;
            overlay.debit_path(&path, share);
            parts.push((path, share));
        }
        if parts.is_empty() {
            None
        } else {
            Some(parts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ring of 6 plus chord 0-3.
    fn ring_with_chord() -> Network {
        let mut g = Network::new(6);
        for i in 0..6u32 {
            g.add_channel(NodeId(i), NodeId((i + 1) % 6), Amount::from_whole(10))
                .unwrap();
        }
        g.add_channel(NodeId(0), NodeId(3), Amount::from_whole(10))
            .unwrap();
        g
    }

    #[test]
    fn tree_distance_properties() {
        let g = ring_with_chord();
        let t = SpanningTree::new(&g, NodeId(0));
        for u in g.nodes() {
            assert_eq!(t.distance(u, u), Some(0));
            for v in g.nodes() {
                assert_eq!(t.distance(u, v), t.distance(v, u));
            }
        }
        // Distance respects tree structure: root to its BFS child is 1.
        assert_eq!(t.distance(NodeId(0), NodeId(1)), Some(1));
    }

    #[test]
    fn unreachable_nodes_have_no_distance() {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::ONE).unwrap();
        let t = SpanningTree::new(&g, NodeId(0));
        assert_eq!(t.distance(NodeId(0), NodeId(2)), None);
    }

    #[test]
    fn routes_simple_payment() {
        let g = ring_with_chord();
        let mut s = SpeedyMurmursScheme::new(&g, 1);
        let parts = s
            .route_payment(&g, &g, NodeId(1), NodeId(4), Amount::from_whole(2))
            .expect("routable");
        let total: Amount = parts.iter().map(|(_, v)| *v).sum();
        assert_eq!(total, Amount::from_whole(2));
        for (p, _) in &parts {
            assert_eq!(p.source(), NodeId(1));
            assert_eq!(p.dest(), NodeId(4));
        }
    }

    #[test]
    fn multiple_trees_split_payment() {
        let g = ring_with_chord();
        let mut s = SpeedyMurmursScheme::new(&g, 3);
        assert_eq!(s.trees().len(), 3);
        let parts = s
            .route_payment(&g, &g, NodeId(1), NodeId(4), Amount::from_whole(3))
            .expect("routable");
        let total: Amount = parts.iter().map(|(_, v)| *v).sum();
        assert_eq!(total, Amount::from_whole(3));
    }

    #[test]
    fn fails_when_balances_insufficient() {
        let g = ring_with_chord();
        let mut s = SpeedyMurmursScheme::new(&g, 1);
        // Any single channel has 5 spendable; 50 cannot move.
        assert!(s
            .route_payment(&g, &g, NodeId(1), NodeId(4), Amount::from_whole(50))
            .is_none());
    }

    #[test]
    fn greedy_is_imbalance_unaware() {
        // Drain the tree-preferred channel: SpeedyMurmurs may still find a
        // closer funded neighbor, but when every closer neighbor is drained
        // it must fail — it cannot detour through farther nodes.
        let mut g = Network::new(4);
        // Star around 0 — all routes to 3 pass 0.
        g.add_channel_with_balances(NodeId(1), NodeId(0), Amount::ZERO, Amount::from_whole(10))
            .unwrap();
        g.add_channel(NodeId(0), NodeId(2), Amount::from_whole(10))
            .unwrap();
        g.add_channel(NodeId(0), NodeId(3), Amount::from_whole(10))
            .unwrap();
        let mut s = SpeedyMurmursScheme::new(&g, 1);
        // Node 1 has zero spendable toward 0: payment must fail.
        assert!(s
            .route_payment(&g, &g, NodeId(1), NodeId(3), Amount::ONE)
            .is_none());
    }

    #[test]
    fn deterministic_routing() {
        let g = ring_with_chord();
        let mut s1 = SpeedyMurmursScheme::new(&g, 2);
        let mut s2 = SpeedyMurmursScheme::new(&g, 2);
        let a = s1.route_payment(&g, &g, NodeId(2), NodeId(5), Amount::from_whole(2));
        let b = s2.route_payment(&g, &g, NodeId(2), NodeId(5), Amount::from_whole(2));
        match (a, b) {
            (Some(x), Some(y)) => {
                assert_eq!(x.len(), y.len());
                for ((p1, a1), (p2, a2)) in x.iter().zip(&y) {
                    assert_eq!(p1.nodes(), p2.nodes());
                    assert_eq!(a1, a2);
                }
            }
            (None, None) => {}
            _ => panic!("nondeterministic outcome"),
        }
    }
}
