//! Online price-based routing: the §5.3 primal-dual algorithm running
//! *live* inside the network rather than as an offline solve.
//!
//! §5.3.1: "routers have to dynamically estimate the rate over their
//! payment channels from the transactions that they encounter. The source
//! nodes, whenever they have to send transactions, query for the path
//! prices, and adapt the rate on each path based on these prices."
//!
//! Each channel direction keeps a capacity price `λ` and an imbalance price
//! `μ` (eqs. (23)–(24)), updated from the traffic the scheme itself routes
//! over sliding windows of `window` units. A transaction unit is sent on
//! the *cheapest* candidate path (`z_p = Σ λ + μ_fwd − μ_rev`, eq. (20))
//! that can fund it — steering traffic toward rebalancing channels without
//! any offline demand estimate, and adapting when the demand shifts (the
//! failure mode of the offline Spider LP on non-stationary workloads).

use crate::paths::{path_bottleneck, PathCache, PathStrategy};
use crate::scheme::{RoutingScheme, SchemeKind, UnitDecision};
use spider_core::{Amount, BalanceView, Direction, Network, NodeId};

/// Tuning for [`PriceScheme`].
#[derive(Clone, Copy, Debug)]
pub struct PriceConfig {
    /// Candidate paths per pair (edge-disjoint shortest).
    pub num_paths: usize,
    /// Units per measurement window before a dual update.
    pub window: u64,
    /// Capacity-price step `η` (eq. 23).
    pub eta: f64,
    /// Imbalance-price step `κ` (eq. 24).
    pub kappa: f64,
    /// Nominal per-window capacity budget per channel, as a fraction of the
    /// channel's total funds (stands in for `c/Δ` in unit-count space).
    pub capacity_fraction: f64,
}

impl Default for PriceConfig {
    fn default() -> Self {
        PriceConfig {
            num_paths: 4,
            window: 256,
            eta: 0.02,
            kappa: 0.05,
            capacity_fraction: 0.5,
        }
    }
}

/// The online price-based routing scheme.
#[derive(Debug)]
pub struct PriceScheme {
    config: PriceConfig,
    cache: PathCache,
    /// λ per channel (capacity price).
    lambda: Vec<f64>,
    /// μ per channel direction (imbalance price).
    mu: Vec<[f64; 2]>,
    /// Value routed per channel direction in the current window (tokens).
    window_flow: Vec<[f64; 2]>,
    units_in_window: u64,
    initialized: bool,
}

impl PriceScheme {
    /// Creates the scheme with default tuning.
    pub fn new() -> Self {
        Self::with_config(PriceConfig::default())
    }

    /// Creates the scheme with explicit tuning.
    pub fn with_config(config: PriceConfig) -> Self {
        assert!(config.num_paths >= 1);
        assert!(config.window >= 1);
        PriceScheme {
            config,
            cache: PathCache::new(PathStrategy::EdgeDisjoint(config.num_paths)),
            lambda: Vec::new(),
            mu: Vec::new(),
            window_flow: Vec::new(),
            units_in_window: 0,
            initialized: false,
        }
    }

    fn ensure_state(&mut self, network: &Network) {
        if !self.initialized {
            let n = network.num_channels();
            self.lambda = vec![0.0; n];
            self.mu = vec![[0.0; 2]; n];
            self.window_flow = vec![[0.0; 2]; n];
            self.initialized = true;
        }
    }

    fn slot(d: Direction) -> usize {
        match d {
            Direction::AtoB => 0,
            Direction::BtoA => 1,
        }
    }

    /// Dual update at the end of a measurement window (eqs. 23–24, with
    /// rates replaced by per-window token counts).
    fn update_prices(&mut self, network: &Network) {
        for ch in network.channels() {
            let e = ch.id.index();
            let cap_budget = ch.capacity().as_tokens() * self.config.capacity_fraction;
            let fwd = self.window_flow[e][0];
            let rev = self.window_flow[e][1];
            self.lambda[e] = (self.lambda[e]
                + self.config.eta * ((fwd + rev) - cap_budget) / cap_budget.max(1.0))
            .max(0.0);
            self.mu[e][0] =
                (self.mu[e][0] + self.config.kappa * (fwd - rev) / cap_budget.max(1.0)).max(0.0);
            self.mu[e][1] =
                (self.mu[e][1] + self.config.kappa * (rev - fwd) / cap_budget.max(1.0)).max(0.0);
            self.window_flow[e] = [0.0; 2];
        }
    }

    /// Current price of a channel direction (for diagnostics/tests).
    pub fn channel_price(&self, channel: spider_core::ChannelId, dir: Direction) -> f64 {
        if !self.initialized {
            return 0.0;
        }
        let e = channel.index();
        self.lambda[e] + self.mu[e][Self::slot(dir)] - self.mu[e][1 - Self::slot(dir)]
    }
}

impl Default for PriceScheme {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutingScheme for PriceScheme {
    fn name(&self) -> &'static str {
        "spider-prices"
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::PacketSwitched
    }

    fn route_unit(
        &mut self,
        network: &Network,
        balances: &dyn BalanceView,
        src: NodeId,
        dst: NodeId,
        unit: Amount,
    ) -> UnitDecision {
        self.ensure_state(network);
        // Split borrows: the cache needs &mut self, the price tables &self.
        let (lambda, mu) = (&self.lambda, &self.mu);
        let price_of = |p: &spider_core::Path| -> f64 {
            p.hops()
                .iter()
                .map(|&(c, d)| {
                    let e = c.index();
                    lambda[e] + mu[e][Self::slot(d)] - mu[e][1 - Self::slot(d)]
                })
                .sum()
        };
        let paths = self.cache.paths(network, src, dst);
        if paths.is_empty() {
            return UnitDecision::Never;
        }
        // Cheapest fundable path; ties toward fewer hops then first listed.
        let mut best: Option<(f64, usize)> = None;
        for (i, p) in paths.iter().enumerate() {
            if path_bottleneck(balances, p) < unit {
                continue;
            }
            let price = price_of(p);
            let better = match best {
                None => true,
                Some((bp, bi)) => {
                    price < bp - 1e-12 || ((price - bp).abs() <= 1e-12 && p.len() < paths[bi].len())
                }
            };
            if better {
                best = Some((price, i));
            }
        }
        let Some((_, i)) = best else {
            return UnitDecision::Unavailable;
        };
        let chosen = paths[i].clone();
        // Record the routed value for the window estimate.
        for &(c, d) in chosen.hops() {
            self.window_flow[c.index()][Self::slot(d)] += unit.as_tokens();
        }
        self.units_in_window += 1;
        if self.units_in_window >= self.config.window {
            self.units_in_window = 0;
            self.update_prices(network);
        }
        UnitDecision::Route(chosen)
    }

    fn telemetry_stats(&self) -> Vec<(&'static str, u64)> {
        let s = self.cache.stats();
        vec![
            ("routing.paths.lookups", s.lookups),
            ("routing.paths.computed_pairs", s.computed_pairs),
            ("routing.paths.computed", s.computed_paths),
        ]
    }

    fn checkpoint_state(&self) -> Option<Vec<u8>> {
        let mut e = spider_core::Enc::new();
        e.bool(self.initialized);
        e.u64(self.units_in_window);
        e.seq(&self.lambda, |e, v| e.f64(*v));
        e.seq(&self.mu, |e, m| {
            e.f64(m[0]);
            e.f64(m[1]);
        });
        e.seq(&self.window_flow, |e, m| {
            e.f64(m[0]);
            e.f64(m[1]);
        });
        e.bytes(&self.cache.checkpoint());
        Some(e.into_bytes())
    }

    fn restore_state(
        &mut self,
        network: &Network,
        bytes: &[u8],
    ) -> Result<(), spider_core::CoreError> {
        let internal = |e: spider_core::BinError| spider_core::CoreError::Internal(format!("{e}"));
        let mut d = spider_core::Dec::new(bytes);
        self.initialized = d.bool().map_err(internal)?;
        self.units_in_window = d.u64().map_err(internal)?;
        self.lambda = d.seq(|d| d.f64()).map_err(internal)?;
        self.mu = d.seq(|d| Ok([d.f64()?, d.f64()?])).map_err(internal)?;
        self.window_flow = d.seq(|d| Ok([d.f64()?, d.f64()?])).map_err(internal)?;
        let n = network.num_channels();
        if self.initialized
            && (self.lambda.len() != n || self.mu.len() != n || self.window_flow.len() != n)
        {
            return Err(spider_core::CoreError::Internal(format!(
                "price state covers {} channels, network has {n}",
                self.lambda.len()
            )));
        }
        let cache_bytes = d.bytes().map_err(internal)?.to_vec();
        d.expect_end().map_err(internal)?;
        self.cache
            .restore(network, &cache_bytes)
            .map_err(|e| spider_core::CoreError::Internal(format!("path cache restore: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_core::Network;

    /// Ring of 6 plus chord 0-3.
    fn ring_with_chord() -> Network {
        let mut g = Network::new(6);
        for i in 0..6u32 {
            g.add_channel(NodeId(i), NodeId((i + 1) % 6), Amount::from_whole(1000))
                .unwrap();
        }
        g.add_channel(NodeId(0), NodeId(3), Amount::from_whole(1000))
            .unwrap();
        g
    }

    #[test]
    fn routes_on_cheapest_path_initially_shortest() {
        let g = ring_with_chord();
        let mut s = PriceScheme::new();
        match s.route_unit(&g, &g, NodeId(0), NodeId(3), Amount::ONE) {
            UnitDecision::Route(p) => assert_eq!(p.len(), 1, "all prices 0 -> shortest"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn imbalance_price_rises_on_one_way_traffic() {
        let g = ring_with_chord();
        let mut s = PriceScheme::with_config(PriceConfig {
            window: 16,
            ..Default::default()
        });
        let chord = g.channel_between(NodeId(0), NodeId(3)).unwrap().id;
        let dir = g.channel(chord).direction_from(NodeId(0));
        for _ in 0..64 {
            let _ = s.route_unit(&g, &g, NodeId(0), NodeId(3), Amount::ONE);
        }
        assert!(
            s.channel_price(chord, dir) > 0.0,
            "one-way chord traffic must be priced, got {}",
            s.channel_price(chord, dir)
        );
        // The reverse direction must look *attractive* (negative net price
        // relative to forward).
        assert!(s.channel_price(chord, dir.reverse()) <= 0.0);
    }

    #[test]
    fn traffic_shifts_away_from_priced_path() {
        let g = ring_with_chord();
        let mut s = PriceScheme::with_config(PriceConfig {
            window: 8,
            kappa: 0.5,
            ..Default::default()
        });
        let mut used_long_path = false;
        for _ in 0..256 {
            match s.route_unit(&g, &g, NodeId(0), NodeId(3), Amount::ONE) {
                UnitDecision::Route(p) => {
                    if p.len() > 1 {
                        used_long_path = true;
                    }
                }
                other => panic!("{other:?}"),
            }
        }
        assert!(
            used_long_path,
            "rising chord prices must push some units onto ring paths"
        );
    }

    #[test]
    fn opposing_traffic_keeps_prices_low() {
        let g = ring_with_chord();
        let mut s = PriceScheme::with_config(PriceConfig {
            window: 8,
            ..Default::default()
        });
        let chord = g.channel_between(NodeId(0), NodeId(3)).unwrap().id;
        for _ in 0..128 {
            let _ = s.route_unit(&g, &g, NodeId(0), NodeId(3), Amount::ONE);
            let _ = s.route_unit(&g, &g, NodeId(3), NodeId(0), Amount::ONE);
        }
        let fwd = s.channel_price(chord, Direction::AtoB);
        let rev = s.channel_price(chord, Direction::BtoA);
        assert!(
            fwd.abs() < 0.5 && rev.abs() < 0.5,
            "balanced traffic keeps imbalance prices near zero: {fwd} / {rev}"
        );
    }

    #[test]
    fn never_without_a_path() {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::ONE).unwrap();
        let mut s = PriceScheme::new();
        assert_eq!(
            s.route_unit(&g, &g, NodeId(0), NodeId(2), Amount::ONE),
            UnitDecision::Never
        );
    }

    #[test]
    fn unavailable_when_unfundable() {
        let g = ring_with_chord();
        let mut s = PriceScheme::new();
        assert_eq!(
            s.route_unit(&g, &g, NodeId(0), NodeId(3), Amount::from_whole(10_000)),
            UnitDecision::Unavailable
        );
    }
}
