//! Path discovery: shortest paths, k-shortest (Yen), and edge-disjoint
//! shortest paths.
//!
//! The paper's Spider schemes are "restricted to 4 [edge-]disjoint shortest
//! paths for every source-destination pair" (§6.1); practical
//! implementations would pick "the K shortest paths or the K
//! highest-capacity paths" (§5.3.1). All of those strategies live here.

use spider_core::{
    Amount, BalanceView, BinError, ChannelSet, Dec, Enc, Network, NodeId, PairTable, Path,
};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// Breadth-first shortest path by hop count, avoiding `banned` channels.
/// Ties are broken toward lower node ids, so results are deterministic.
pub fn shortest_path_avoiding(
    network: &Network,
    src: NodeId,
    dst: NodeId,
    banned: &ChannelSet,
) -> Option<Path> {
    if src == dst {
        return None;
    }
    let n = network.num_nodes();
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[src.index()] = true;
    let mut queue = VecDeque::from([src]);
    'outer: while let Some(u) = queue.pop_front() {
        // Deterministic neighbor order: as stored (insertion order), which is
        // fixed for a given Network construction.
        for &(v, c) in network.neighbors(u) {
            if banned.contains(c) || seen[v.index()] {
                continue;
            }
            seen[v.index()] = true;
            prev[v.index()] = Some(u);
            if v == dst {
                break 'outer;
            }
            queue.push_back(v);
        }
    }
    if !seen[dst.index()] {
        return None;
    }
    let mut nodes = vec![dst];
    let mut cur = dst;
    while let Some(p) = prev[cur.index()] {
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    debug_assert_eq!(nodes[0], src);
    // BFS predecessor chains always form a valid simple path.
    Path::new(network, nodes).ok()
}

/// Shortest path by hop count.
pub fn shortest_path(network: &Network, src: NodeId, dst: NodeId) -> Option<Path> {
    shortest_path_avoiding(network, src, dst, &ChannelSet::new())
}

/// Up to `k` mutually edge-disjoint shortest paths: repeatedly finds a BFS
/// shortest path and removes its channels (the paper's "4 disjoint shortest
/// paths" strategy).
pub fn edge_disjoint_paths(network: &Network, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    let mut banned = ChannelSet::new();
    let mut out = Vec::new();
    for _ in 0..k {
        let Some(p) = shortest_path_avoiding(network, src, dst, &banned) else {
            break;
        };
        for &(c, _) in p.hops() {
            banned.insert(c);
        }
        out.push(p);
    }
    out
}

/// Up to `k` loopless shortest paths by hop count (Yen's algorithm).
/// Paths are returned in non-decreasing length; ties resolve
/// deterministically.
pub fn k_shortest_paths(network: &Network, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    let Some(first) = shortest_path(network, src, dst) else {
        return Vec::new();
    };
    let mut result: Vec<Path> = vec![first];
    // Candidate set ordered by (len, node sequence) for determinism.
    let mut candidates: BinaryHeap<std::cmp::Reverse<(usize, Vec<NodeId>)>> = BinaryHeap::new();
    // Insert-and-membership only, never iterated, and hashing a Vec<NodeId>
    // beats a full lexicographic BTreeSet comparison on long paths.
    // spider-lint: allow(determinism) — membership-only set, no iteration
    let mut seen_candidates: std::collections::HashSet<Vec<NodeId>> = Default::default();
    // One reusable ban set; `clear()` is O(1) thanks to epoch versioning.
    let mut banned = ChannelSet::new();

    while result.len() < k {
        let last = match result.last() {
            Some(p) => p.nodes().to_vec(),
            None => break,
        };
        for i in 0..last.len() - 1 {
            let spur_node = last[i];
            let root: Vec<NodeId> = last[..=i].to_vec();
            banned.clear();
            // Ban channels used by previously accepted paths sharing the root.
            for p in &result {
                if p.nodes().len() > i && p.nodes()[..=i] == root[..] {
                    let Some(ch) = network.channel_between(p.nodes()[i], p.nodes()[i + 1]) else {
                        continue;
                    };
                    banned.insert(ch.id);
                }
            }
            // Ban channels incident to root nodes (except the spur) to keep
            // paths loopless.
            for &node in &root[..i] {
                for &(_, c) in network.neighbors(node) {
                    banned.insert(c);
                }
            }
            let Some(spur) = shortest_path_avoiding(network, spur_node, dst, &banned) else {
                continue;
            };
            let mut total: Vec<NodeId> = root.clone();
            total.extend_from_slice(&spur.nodes()[1..]);
            if seen_candidates.insert(total.clone()) {
                candidates.push(std::cmp::Reverse((total.len(), total)));
            }
        }
        // Pop the best unused candidate.
        let mut next: Option<Vec<NodeId>> = None;
        while let Some(std::cmp::Reverse((_, nodes))) = candidates.pop() {
            if !result.iter().any(|p| p.nodes() == nodes) {
                next = Some(nodes);
                break;
            }
        }
        match next.and_then(|nodes| Path::new(network, nodes).ok()) {
            Some(p) => result.push(p),
            None => break,
        }
    }
    result
}

/// Maximum-bottleneck ("widest") path by total channel capacity, avoiding
/// `banned` channels — the paper's "K highest-capacity paths" candidate
/// strategy (§5.3.1). Ties break toward fewer hops, then lower node ids.
pub fn widest_path_avoiding(
    network: &Network,
    src: NodeId,
    dst: NodeId,
    banned: &ChannelSet,
) -> Option<Path> {
    if src == dst {
        return None;
    }
    let n = network.num_nodes();
    // best[v] = (bottleneck, -hops) maximized lexicographically.
    let mut best: Vec<(Amount, i64)> = vec![(Amount::ZERO, 0); n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut heap: BinaryHeap<(Amount, i64, NodeId)> = BinaryHeap::new();
    best[src.index()] = (Amount::MAX, 0);
    heap.push((Amount::MAX, 0, src));
    while let Some((width, neg_hops, u)) = heap.pop() {
        if (width, neg_hops) < best[u.index()] {
            continue;
        }
        if u == dst {
            break;
        }
        for &(v, c) in network.neighbors(u) {
            if banned.contains(c) {
                continue;
            }
            let cap = network.channel(c).capacity();
            let cand = (width.min(cap), neg_hops - 1);
            if cand > best[v.index()] {
                best[v.index()] = cand;
                prev[v.index()] = Some(u);
                heap.push((cand.0, cand.1, v));
            }
        }
    }
    if best[dst.index()].0 == Amount::ZERO {
        return None;
    }
    let mut nodes = vec![dst];
    let mut cur = dst;
    while let Some(p) = prev[cur.index()] {
        nodes.push(p);
        cur = p;
        if cur == src {
            break;
        }
    }
    nodes.reverse();
    if nodes[0] != src {
        return None;
    }
    Path::new(network, nodes).ok()
}

/// Up to `k` mutually edge-disjoint widest paths (successive widest path
/// with channel removal).
pub fn widest_paths(network: &Network, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    let mut banned = ChannelSet::new();
    let mut out = Vec::new();
    for _ in 0..k {
        let Some(p) = widest_path_avoiding(network, src, dst, &banned) else {
            break;
        };
        for &(c, _) in p.hops() {
            banned.insert(c);
        }
        out.push(p);
    }
    out
}

/// Spendable bottleneck of `path` under `balances`: the minimum directional
/// balance along its hops.
pub fn path_bottleneck(balances: &dyn BalanceView, path: &Path) -> Amount {
    let mut min = Amount::MAX;
    for (i, &(c, dir)) in path.hops().iter().enumerate() {
        let from = path.nodes()[i];
        min = min.min(balances.available_dir(c, from, dir));
    }
    min
}

/// A per-pair cache of candidate path sets.
///
/// Strategy is fixed at construction; entries are computed on first use.
#[derive(Debug)]
pub struct PathCache {
    strategy: PathStrategy,
    /// Paths are `Arc`-shared so schemes can hand them to the engine (one
    /// per in-flight unit) without cloning the node/hop vectors.
    cache: PairTable<Vec<Arc<Path>>>,
    stats: PathCacheStats,
}

/// Deterministic work counters for a [`PathCache`] (no wall-clock timings,
/// so they are identical across hosts and runs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathCacheStats {
    /// Total `paths()` lookups.
    pub lookups: u64,
    /// Lookups that had to run the path-computation strategy.
    pub computed_pairs: u64,
    /// Total candidate paths produced by those computations.
    pub computed_paths: u64,
}

impl PathCacheStats {
    /// Lookups served from cache.
    pub fn hits(&self) -> u64 {
        self.lookups - self.computed_pairs
    }
}

/// Which candidate-path strategy a [`PathCache`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathStrategy {
    /// The single BFS shortest path.
    Shortest,
    /// Up to `k` edge-disjoint shortest paths (the paper's default, k = 4).
    EdgeDisjoint(usize),
    /// Up to `k` loopless shortest paths (Yen).
    KShortest(usize),
    /// Up to `k` edge-disjoint maximum-bottleneck (highest-capacity) paths.
    WidestDisjoint(usize),
}

impl PathCache {
    /// Creates an empty cache with the given strategy.
    pub fn new(strategy: PathStrategy) -> Self {
        PathCache {
            strategy,
            cache: Default::default(),
            stats: PathCacheStats::default(),
        }
    }

    /// Runs the strategy for one pair (no caching, no stats).
    fn compute(strategy: PathStrategy, network: &Network, src: NodeId, dst: NodeId) -> Vec<Path> {
        match strategy {
            PathStrategy::Shortest => shortest_path(network, src, dst).into_iter().collect(),
            PathStrategy::EdgeDisjoint(k) => edge_disjoint_paths(network, src, dst, k),
            PathStrategy::KShortest(k) => k_shortest_paths(network, src, dst, k),
            PathStrategy::WidestDisjoint(k) => widest_paths(network, src, dst, k),
        }
    }

    /// The paths for `(src, dst)`, computing and caching them on first use.
    pub fn paths(&mut self, network: &Network, src: NodeId, dst: NodeId) -> &[Arc<Path>] {
        self.stats.lookups += 1;
        let strategy = self.strategy;
        let stats = &mut self.stats;
        self.cache.entry_or_insert_with(src, dst, || {
            let paths = Self::compute(strategy, network, src, dst);
            stats.computed_pairs += 1;
            stats.computed_paths += paths.len() as u64;
            paths.into_iter().map(Arc::new).collect()
        })
    }

    /// Serializes the cache's resumable state: the set of cached pairs plus
    /// the work counters. Path contents are *not* stored — they are a pure
    /// function of the topology and are recomputed on [`restore`].
    ///
    /// [`restore`]: PathCache::restore
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut pairs: Vec<(u32, u32)> = self
            .cache
            .iter()
            .map(|(src, dst, _)| (src.0, dst.0))
            .collect();
        pairs.sort_unstable();
        let mut e = Enc::new();
        e.seq(&pairs, |e, &(s, d)| {
            e.u32(s);
            e.u32(d);
        });
        e.u64(self.stats.lookups);
        e.u64(self.stats.computed_pairs);
        e.u64(self.stats.computed_paths);
        e.into_bytes()
    }

    /// Restores state captured by [`checkpoint`]: recomputes every cached
    /// pair against `network` (deterministic given the same topology) and
    /// reinstates the work counters, so post-resume lookups and stats are
    /// indistinguishable from an uninterrupted run.
    ///
    /// [`checkpoint`]: PathCache::checkpoint
    pub fn restore(&mut self, network: &Network, bytes: &[u8]) -> Result<(), BinError> {
        let mut d = Dec::new(bytes);
        let pairs = d.seq(|d| Ok((d.u32()?, d.u32()?)))?;
        let stats = PathCacheStats {
            lookups: d.u64()?,
            computed_pairs: d.u64()?,
            computed_paths: d.u64()?,
        };
        d.expect_end()?;
        self.cache = Default::default();
        for (s, dst) in pairs {
            let (src, dst) = (NodeId(s), NodeId(dst));
            let paths = Self::compute(self.strategy, network, src, dst);
            self.cache
                .entry_or_insert_with(src, dst, || paths.into_iter().map(Arc::new).collect());
        }
        self.stats = stats;
        Ok(())
    }

    /// Work counters accumulated by this cache.
    pub fn stats(&self) -> PathCacheStats {
        self.stats
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// `true` if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_core::Amount;

    /// Ring of 6 nodes plus chord 0-3.
    fn ring_with_chord() -> Network {
        let mut g = Network::new(6);
        for i in 0..6u32 {
            g.add_channel(NodeId(i), NodeId((i + 1) % 6), Amount::from_whole(10))
                .unwrap();
        }
        g.add_channel(NodeId(0), NodeId(3), Amount::from_whole(10))
            .unwrap();
        g
    }

    #[test]
    fn shortest_path_uses_chord() {
        let g = ring_with_chord();
        let p = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(3)]);
    }

    #[test]
    fn shortest_path_none_for_self_or_unreachable() {
        let g = ring_with_chord();
        assert!(shortest_path(&g, NodeId(0), NodeId(0)).is_none());
        let mut g2 = Network::new(3);
        g2.add_channel(NodeId(0), NodeId(1), Amount::ONE).unwrap();
        assert!(shortest_path(&g2, NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn edge_disjoint_finds_three_routes() {
        let g = ring_with_chord();
        // 0 -> 3: chord (1 hop), clockwise (3 hops), counter-clockwise (3 hops).
        let paths = edge_disjoint_paths(&g, NodeId(0), NodeId(3), 4);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].len(), 1);
        // All pairwise edge-disjoint.
        for i in 0..paths.len() {
            for j in i + 1..paths.len() {
                for &(c, _) in paths[i].hops() {
                    assert!(!paths[j].uses_channel(c));
                }
            }
        }
    }

    #[test]
    fn edge_disjoint_respects_k() {
        let g = ring_with_chord();
        let paths = edge_disjoint_paths(&g, NodeId(0), NodeId(3), 2);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn yen_returns_increasing_lengths() {
        let g = ring_with_chord();
        let paths = k_shortest_paths(&g, NodeId(0), NodeId(3), 5);
        assert!(paths.len() >= 3, "found {}", paths.len());
        for w in paths.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
        // All distinct and valid.
        let mut seen = std::collections::BTreeSet::new();
        for p in &paths {
            assert!(seen.insert(p.nodes().to_vec()), "duplicate {p}");
            assert_eq!(p.source(), NodeId(0));
            assert_eq!(p.dest(), NodeId(3));
        }
    }

    #[test]
    fn yen_on_line_finds_single_path() {
        let mut g = Network::new(4);
        for i in 0..3u32 {
            g.add_channel(NodeId(i), NodeId(i + 1), Amount::ONE)
                .unwrap();
        }
        let paths = k_shortest_paths(&g, NodeId(0), NodeId(3), 5);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 3);
    }

    #[test]
    fn bottleneck_is_min_directional_balance() {
        let mut g = Network::new(3);
        g.add_channel_with_balances(
            NodeId(0),
            NodeId(1),
            Amount::from_whole(9),
            Amount::from_whole(1),
        )
        .unwrap();
        g.add_channel_with_balances(
            NodeId(1),
            NodeId(2),
            Amount::from_whole(4),
            Amount::from_whole(6),
        )
        .unwrap();
        let p = Path::new(&g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(path_bottleneck(&g, &p), Amount::from_whole(4));
        let back = Path::new(&g, vec![NodeId(2), NodeId(1), NodeId(0)]).unwrap();
        assert_eq!(path_bottleneck(&g, &back), Amount::from_whole(1));
    }

    #[test]
    fn path_cache_caches() {
        let g = ring_with_chord();
        let mut cache = PathCache::new(PathStrategy::EdgeDisjoint(4));
        assert!(cache.is_empty());
        let a = cache.paths(&g, NodeId(0), NodeId(3)).len();
        assert_eq!(cache.len(), 1);
        let b = cache.paths(&g, NodeId(0), NodeId(3)).len();
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        cache.paths(&g, NodeId(1), NodeId(4));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_stats_count_lookups_and_computations() {
        let g = ring_with_chord();
        let mut cache = PathCache::new(PathStrategy::EdgeDisjoint(4));
        assert_eq!(cache.stats(), PathCacheStats::default());
        let first = cache.paths(&g, NodeId(0), NodeId(3)).len() as u64;
        cache.paths(&g, NodeId(0), NodeId(3));
        cache.paths(&g, NodeId(1), NodeId(4));
        let stats = cache.stats();
        assert_eq!(stats.lookups, 3);
        assert_eq!(stats.computed_pairs, 2);
        assert_eq!(stats.hits(), 1);
        assert!(stats.computed_paths > first);
    }

    #[test]
    fn widest_path_prefers_fat_channels() {
        // 0-1-3 with fat channels vs direct thin chord 0-3.
        let mut g = Network::new(4);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(100))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(3), Amount::from_whole(100))
            .unwrap();
        g.add_channel(NodeId(0), NodeId(3), Amount::from_whole(2))
            .unwrap();
        let p = widest_path_avoiding(&g, NodeId(0), NodeId(3), &ChannelSet::new()).unwrap();
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn widest_path_ties_break_to_fewer_hops() {
        // Two equal-capacity routes, 1 hop vs 2 hops.
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(2), Amount::from_whole(10))
            .unwrap();
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(10))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(2), Amount::from_whole(10))
            .unwrap();
        let p = widest_path_avoiding(&g, NodeId(0), NodeId(2), &ChannelSet::new()).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn widest_paths_are_edge_disjoint() {
        let g = ring_with_chord();
        let paths = widest_paths(&g, NodeId(0), NodeId(3), 4);
        assert!(paths.len() >= 2);
        for i in 0..paths.len() {
            for j in i + 1..paths.len() {
                for &(c, _) in paths[i].hops() {
                    assert!(!paths[j].uses_channel(c));
                }
            }
        }
    }

    #[test]
    fn widest_path_none_when_disconnected() {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::ONE).unwrap();
        assert!(widest_path_avoiding(&g, NodeId(0), NodeId(2), &ChannelSet::new()).is_none());
        assert!(widest_path_avoiding(&g, NodeId(0), NodeId(0), &ChannelSet::new()).is_none());
    }

    #[test]
    fn cache_supports_widest_strategy() {
        let g = ring_with_chord();
        let mut cache = PathCache::new(PathStrategy::WidestDisjoint(3));
        assert!(!cache.paths(&g, NodeId(0), NodeId(3)).is_empty());
    }

    #[test]
    fn cache_strategies_differ() {
        let g = ring_with_chord();
        let mut single = PathCache::new(PathStrategy::Shortest);
        let mut yen = PathCache::new(PathStrategy::KShortest(4));
        assert_eq!(single.paths(&g, NodeId(0), NodeId(3)).len(), 1);
        assert!(yen.paths(&g, NodeId(0), NodeId(3)).len() > 1);
    }
}
