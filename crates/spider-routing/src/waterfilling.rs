//! Spider (Waterfilling): the paper's quick-converging heuristic (§5.3.1).
//!
//! Each source keeps `k` edge-disjoint shortest paths per destination and
//! always sends the next transaction unit on the path with the *largest
//! spendable bottleneck* — equalizing available capacity across its paths
//! like a waterfilling allocation, which implicitly steers units toward
//! rebalancing the underlying channels.

use crate::paths::{path_bottleneck, PathCache, PathStrategy};
use crate::scheme::{RoutingScheme, SchemeKind, UnitDecision};
use spider_core::{Amount, BalanceView, Network, NodeId};

/// The waterfilling routing scheme over `k` edge-disjoint shortest paths.
#[derive(Debug)]
pub struct WaterfillingScheme {
    cache: PathCache,
}

impl WaterfillingScheme {
    /// Creates the scheme with the paper's default of 4 paths per pair.
    pub fn new() -> Self {
        Self::with_paths(4)
    }

    /// Creates the scheme with `k` edge-disjoint shortest paths per pair.
    pub fn with_paths(k: usize) -> Self {
        assert!(k >= 1);
        Self::with_strategy(PathStrategy::EdgeDisjoint(k))
    }

    /// Creates the scheme with an arbitrary candidate-path strategy
    /// (§5.3.1 discusses k-shortest and highest-capacity alternatives).
    pub fn with_strategy(strategy: PathStrategy) -> Self {
        WaterfillingScheme {
            cache: PathCache::new(strategy),
        }
    }
}

impl Default for WaterfillingScheme {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutingScheme for WaterfillingScheme {
    fn name(&self) -> &'static str {
        "spider-waterfilling"
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::PacketSwitched
    }

    fn route_unit(
        &mut self,
        network: &Network,
        balances: &dyn BalanceView,
        src: NodeId,
        dst: NodeId,
        unit: Amount,
    ) -> UnitDecision {
        let paths = self.cache.paths(network, src, dst);
        if paths.is_empty() {
            return UnitDecision::Never;
        }
        let Some(best) = paths
            .iter()
            .map(|p| (path_bottleneck(balances, p), p))
            .max_by(|a, b| {
                // Max bottleneck; tie-break toward shorter path for
                // determinism and lower collateral use.
                a.0.cmp(&b.0).then(b.1.len().cmp(&a.1.len()))
            })
        else {
            // Unreachable: `paths` was checked non-empty above.
            return UnitDecision::Never;
        };
        if best.0 >= unit {
            UnitDecision::Route(std::sync::Arc::clone(best.1))
        } else {
            UnitDecision::Unavailable
        }
    }

    fn telemetry_stats(&self) -> Vec<(&'static str, u64)> {
        let s = self.cache.stats();
        vec![
            ("routing.paths.lookups", s.lookups),
            ("routing.paths.computed_pairs", s.computed_pairs),
            ("routing.paths.computed", s.computed_paths),
        ]
    }

    fn checkpoint_state(&self) -> Option<Vec<u8>> {
        Some(self.cache.checkpoint())
    }

    fn restore_state(
        &mut self,
        network: &Network,
        bytes: &[u8],
    ) -> Result<(), spider_core::CoreError> {
        self.cache
            .restore(network, bytes)
            .map_err(|e| spider_core::CoreError::Internal(format!("path cache restore: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_core::{ChannelId, Path};
    use std::collections::HashMap;

    /// Ring of 6 plus chord 0-3, uneven balances controlled per test.
    fn ring_with_chord() -> Network {
        let mut g = Network::new(6);
        for i in 0..6u32 {
            g.add_channel(NodeId(i), NodeId((i + 1) % 6), Amount::from_whole(10))
                .unwrap();
        }
        g.add_channel(NodeId(0), NodeId(3), Amount::from_whole(10))
            .unwrap();
        g
    }

    /// A balance view with explicit per-(channel, sender) overrides.
    struct Fixed<'a> {
        base: &'a Network,
        overrides: HashMap<(ChannelId, NodeId), Amount>,
    }
    impl BalanceView for Fixed<'_> {
        fn available(&self, c: ChannelId, from: NodeId) -> Amount {
            self.overrides
                .get(&(c, from))
                .copied()
                .unwrap_or_else(|| self.base.available(c, from))
        }
    }

    #[test]
    fn picks_widest_path() {
        let g = ring_with_chord();
        // Drain the chord (0-3) so the widest path is around the ring.
        let chord = g.channel_between(NodeId(0), NodeId(3)).unwrap().id;
        let view = Fixed {
            base: &g,
            overrides: HashMap::from([((chord, NodeId(0)), Amount::from_whole(1))]),
        };
        let mut s = WaterfillingScheme::new();
        match s.route_unit(&g, &view, NodeId(0), NodeId(3), Amount::from_whole(2)) {
            UnitDecision::Route(p) => {
                assert!(p.len() > 1, "must avoid the drained chord, got {p}");
            }
            other => panic!("expected route, got {other:?}"),
        }
    }

    #[test]
    fn prefers_chord_when_balances_equal() {
        let g = ring_with_chord();
        let mut s = WaterfillingScheme::new();
        match s.route_unit(&g, &g, NodeId(0), NodeId(3), Amount::ONE) {
            UnitDecision::Route(p) => assert_eq!(p.len(), 1, "tie-break to shortest"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unavailable_when_all_paths_tight() {
        let g = ring_with_chord();
        let mut s = WaterfillingScheme::new();
        assert_eq!(
            s.route_unit(&g, &g, NodeId(0), NodeId(3), Amount::from_whole(50)),
            UnitDecision::Unavailable
        );
    }

    #[test]
    fn never_when_no_path() {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::ONE).unwrap();
        let mut s = WaterfillingScheme::new();
        assert_eq!(
            s.route_unit(&g, &g, NodeId(0), NodeId(2), Amount::ONE),
            UnitDecision::Never
        );
    }

    #[test]
    fn spreads_units_across_paths_as_balances_drain() {
        // Simulate draining: send repeatedly, manually debiting an overlay.
        let g = ring_with_chord();
        let mut s = WaterfillingScheme::with_paths(4);
        let mut overlay = crate::scheme::BalanceOverlay::new(&g);
        let mut used_paths: std::collections::HashSet<Vec<NodeId>> = Default::default();
        for _ in 0..8 {
            match s.route_unit(&g, &overlay, NodeId(0), NodeId(3), Amount::from_whole(1)) {
                UnitDecision::Route(p) => {
                    overlay.debit_path(&p, Amount::from_whole(1));
                    used_paths.insert(p.nodes().to_vec());
                }
                other => panic!("{other:?}"),
            }
        }
        assert!(
            used_paths.len() >= 2,
            "waterfilling should spread over multiple paths, used {used_paths:?}"
        );
        // Sanity: all used paths are valid.
        for nodes in &used_paths {
            Path::new(&g, nodes.clone()).unwrap();
        }
    }
}
