//! Routing schemes for payment channel networks.
//!
//! Path machinery plus the six schemes of the paper's evaluation (§6.1):
//!
//! | scheme | module | kind |
//! |---|---|---|
//! | SilentWhispers (landmarks) | [`landmark`] | atomic |
//! | SpeedyMurmurs (embeddings) | [`embedding`] | atomic |
//! | Max-flow | [`maxflow_scheme`] | atomic |
//! | Shortest-path (packet-switched) | [`shortest_path`](mod@shortest_path) | non-atomic |
//! | Spider (Waterfilling) | [`waterfilling`] | non-atomic |
//! | Spider (LP) | [`lp_scheme`] | non-atomic |
//!
//! All schemes implement [`RoutingScheme`] and are deterministic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod embedding;
pub mod fees;
pub mod landmark;
pub mod lp_scheme;
pub mod maxflow_scheme;
pub mod paths;
pub mod price_scheme;
pub mod scheme;
pub mod shortest_path;
pub mod waterfilling;

pub use embedding::{SpanningTree, SpeedyMurmursScheme};
pub use fees::{cheapest_path, FeeSchedule};
pub use landmark::SilentWhispersScheme;
pub use lp_scheme::LpScheme;
pub use maxflow_scheme::MaxFlowScheme;
pub use paths::{
    edge_disjoint_paths, k_shortest_paths, path_bottleneck, shortest_path, widest_paths, PathCache,
    PathCacheStats, PathStrategy,
};
pub use price_scheme::{PriceConfig, PriceScheme};
pub use scheme::{split_evenly, BalanceOverlay, RoutingScheme, SchemeKind, UnitDecision};
pub use shortest_path::ShortestPathScheme;
pub use waterfilling::WaterfillingScheme;
