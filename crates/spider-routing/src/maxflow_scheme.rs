//! Max-flow routing — the "gold standard" baseline (§3).
//!
//! For each transaction, a (centralized stand-in for distributed)
//! Ford–Fulkerson computes the maximum flow between sender and receiver on
//! the graph of current spendable balances; if it covers the payment, the
//! payment is delivered atomically along the decomposed flow paths.
//! Expensive — `O(|V| · |E|²)` per transaction — which is exactly the
//! overhead argument the paper makes; see the `opt_kernels` bench.

use crate::scheme::{RoutingScheme, SchemeKind};
use spider_core::{Amount, BalanceView, Network, NodeId, Path};
use spider_opt::maxflow::balance_limited_flow;

/// The atomic max-flow routing scheme.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxFlowScheme {
    queries: u64,
    augmenting_paths: u64,
}

impl MaxFlowScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        MaxFlowScheme::default()
    }
}

impl RoutingScheme for MaxFlowScheme {
    fn name(&self) -> &'static str {
        "max-flow"
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::Atomic
    }

    fn route_payment(
        &mut self,
        network: &Network,
        balances: &dyn BalanceView,
        src: NodeId,
        dst: NodeId,
        amount: Amount,
    ) -> Option<Vec<(Path, Amount)>> {
        let flow = balance_limited_flow(network, balances, src, dst, amount);
        self.queries += 1;
        self.augmenting_paths += flow.augmenting_paths;
        if flow.value < amount {
            return None;
        }
        let mut parts = Vec::with_capacity(flow.paths.len());
        for (nodes, value) in flow.paths {
            // A decomposition trail that fails path validation would be a
            // solver bug; degrade to "no route" rather than aborting.
            let Ok(path) = Path::new(network, nodes) else {
                return None;
            };
            parts.push((path, value));
        }
        debug_assert_eq!(
            parts.iter().map(|(_, v)| *v).sum::<Amount>(),
            amount,
            "decomposed parts must sum to the payment"
        );
        Some(parts)
    }

    fn telemetry_stats(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("routing.maxflow.queries", self.queries),
            ("routing.maxflow.augmenting_paths", self.augmenting_paths),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Network {
        // 0 -> {1, 2} -> 3, each channel capacity 10 (5 spendable per side).
        let mut g = Network::new(4);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(10))
            .unwrap();
        g.add_channel(NodeId(0), NodeId(2), Amount::from_whole(10))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(3), Amount::from_whole(10))
            .unwrap();
        g.add_channel(NodeId(2), NodeId(3), Amount::from_whole(10))
            .unwrap();
        g
    }

    #[test]
    fn delivers_multipath_payment() {
        let g = diamond();
        let mut s = MaxFlowScheme::new();
        // 8 tokens exceeds any single path's bottleneck (5) but fits two.
        let parts = s
            .route_payment(&g, &g, NodeId(0), NodeId(3), Amount::from_whole(8))
            .expect("multipath delivery");
        assert!(parts.len() >= 2);
        let total: Amount = parts.iter().map(|(_, v)| *v).sum();
        assert_eq!(total, Amount::from_whole(8));
    }

    #[test]
    fn rejects_payment_exceeding_maxflow() {
        let g = diamond();
        let mut s = MaxFlowScheme::new();
        // Max flow is 10 (5 + 5); 11 must fail atomically.
        assert!(s
            .route_payment(&g, &g, NodeId(0), NodeId(3), Amount::from_whole(11))
            .is_none());
    }

    #[test]
    fn single_path_when_sufficient() {
        let g = diamond();
        let mut s = MaxFlowScheme::new();
        let parts = s
            .route_payment(&g, &g, NodeId(0), NodeId(3), Amount::from_whole(3))
            .unwrap();
        let total: Amount = parts.iter().map(|(_, v)| *v).sum();
        assert_eq!(total, Amount::from_whole(3));
    }

    #[test]
    fn telemetry_stats_track_queries_and_augmentations() {
        let g = diamond();
        let mut s = MaxFlowScheme::new();
        assert_eq!(
            s.telemetry_stats(),
            vec![
                ("routing.maxflow.queries", 0),
                ("routing.maxflow.augmenting_paths", 0),
            ]
        );
        s.route_payment(&g, &g, NodeId(0), NodeId(3), Amount::from_whole(8))
            .unwrap();
        s.route_payment(&g, &g, NodeId(0), NodeId(3), Amount::from_whole(3))
            .unwrap();
        let stats = s.telemetry_stats();
        assert_eq!(stats[0], ("routing.maxflow.queries", 2));
        assert!(stats[1].1 >= 3, "two queries push >= 3 augmenting paths");
    }

    #[test]
    fn fails_when_disconnected() {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(10))
            .unwrap();
        let mut s = MaxFlowScheme::new();
        assert!(s
            .route_payment(&g, &g, NodeId(0), NodeId(2), Amount::ONE)
            .is_none());
    }

    #[test]
    fn uses_rerouting_through_cross_edges() {
        // The classic cross example: naive greedy would strand capacity.
        let mut g = Network::new(4);
        g.add_channel_with_balances(NodeId(0), NodeId(1), Amount::from_whole(1), Amount::ZERO)
            .unwrap();
        g.add_channel_with_balances(NodeId(0), NodeId(2), Amount::from_whole(1), Amount::ZERO)
            .unwrap();
        g.add_channel_with_balances(NodeId(1), NodeId(2), Amount::from_whole(1), Amount::ZERO)
            .unwrap();
        g.add_channel_with_balances(NodeId(1), NodeId(3), Amount::from_whole(1), Amount::ZERO)
            .unwrap();
        g.add_channel_with_balances(NodeId(2), NodeId(3), Amount::from_whole(1), Amount::ZERO)
            .unwrap();
        let mut s = MaxFlowScheme::new();
        let parts = s
            .route_payment(&g, &g, NodeId(0), NodeId(3), Amount::from_whole(2))
            .expect("max flow is exactly 2");
        let total: Amount = parts.iter().map(|(_, v)| *v).sum();
        assert_eq!(total, Amount::from_whole(2));
    }
}
