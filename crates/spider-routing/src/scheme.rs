//! The routing-scheme interface shared by all six evaluated schemes.
//!
//! Atomic schemes (SilentWhispers, SpeedyMurmurs, max-flow) must deliver a
//! whole payment in one shot across one or more paths, or not at all.
//! Packet-switched schemes (shortest-path, Spider waterfilling, Spider LP)
//! are asked for a route one *transaction unit* at a time and may defer.

use crate::paths::path_bottleneck;
use spider_core::{Amount, BalanceView, ChannelId, CoreError, Direction, Network, NodeId, Path};
use std::sync::Arc;

/// Whether a scheme delivers payments atomically or unit-by-unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeKind {
    /// Whole payment in one shot (`route_payment`).
    Atomic,
    /// One transaction unit at a time (`route_unit`).
    PacketSwitched,
}

/// Outcome of asking a packet-switched scheme for a unit route.
#[derive(Clone, Debug, PartialEq)]
pub enum UnitDecision {
    /// Send the unit on this path now. The path is shared with the scheme's
    /// cache, so routing a unit costs one refcount bump, not a deep clone.
    Route(Arc<Path>),
    /// No capacity right now; retry after balances change.
    Unavailable,
    /// This pair can never be routed by this scheme (e.g. the LP assigned it
    /// zero rate, or no path exists). The payment should be abandoned.
    Never,
}

/// A routing scheme under evaluation.
///
/// Implementations may keep per-pair caches and internal round-robin state
/// (hence `&mut self`), but must be deterministic. Schemes are `Send` so
/// the experiment runner can move each (scheme, trial) cell onto a worker
/// thread; they run single-threaded within a simulation, so `Sync` is not
/// required.
pub trait RoutingScheme: Send {
    /// Short display name used in reports ("spider-waterfilling", ...).
    fn name(&self) -> &'static str;

    /// Atomic or packet-switched.
    fn kind(&self) -> SchemeKind;

    /// Atomic routing: find paths (with per-path amounts summing to
    /// `amount`) that can all be funded *simultaneously* under `balances`.
    /// Returns `None` when the payment cannot be delivered in full.
    ///
    /// Only meaningful for [`SchemeKind::Atomic`] schemes; the default
    /// declines everything.
    fn route_payment(
        &mut self,
        network: &Network,
        balances: &dyn BalanceView,
        src: NodeId,
        dst: NodeId,
        amount: Amount,
    ) -> Option<Vec<(Path, Amount)>> {
        let _ = (network, balances, src, dst, amount);
        None
    }

    /// Packet-switched routing: choose a path for one unit of `unit` tokens.
    ///
    /// Only meaningful for [`SchemeKind::PacketSwitched`] schemes; the
    /// default gives up.
    fn route_unit(
        &mut self,
        network: &Network,
        balances: &dyn BalanceView,
        src: NodeId,
        dst: NodeId,
        unit: Amount,
    ) -> UnitDecision {
        let _ = (network, balances, src, dst, unit);
        UnitDecision::Never
    }

    /// Deterministic work counters accumulated by this scheme (path-cache
    /// activity, solver invocations, ...), as `(metric name, value)` pairs
    /// for a telemetry registry. Counters must be pure functions of the
    /// routing calls made — never wall-clock derived. The default reports
    /// nothing.
    fn telemetry_stats(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Serializes scheme-internal state for an engine checkpoint, or `None`
    /// when the scheme keeps no resumable state (the default). Schemes that
    /// return `Some` here must accept the same bytes in
    /// [`restore_state`](RoutingScheme::restore_state) and continue exactly
    /// as if the run had never been interrupted.
    fn checkpoint_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state captured by
    /// [`checkpoint_state`](RoutingScheme::checkpoint_state). The default
    /// accepts only an empty blob (matching the default `None` checkpoint).
    fn restore_state(&mut self, network: &Network, bytes: &[u8]) -> Result<(), CoreError> {
        let _ = network;
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(CoreError::Internal(format!(
                "scheme {} does not support state restore",
                self.name()
            )))
        }
    }
}

/// A scratch overlay over a [`BalanceView`] that tracks hypothetical
/// deductions.
///
/// Atomic schemes use this to verify that *all* parts of a multi-path
/// payment can be funded at once: each candidate part is debited in the
/// overlay before checking the next.
pub struct BalanceOverlay<'a> {
    base: &'a dyn BalanceView,
    /// Per-channel debit slots, indexed by `ChannelId`. A channel has exactly
    /// two endpoints, so each record holds two `(spender, debit)` slots;
    /// [`NO_NODE`] marks an unused slot. Grown lazily to the highest debited
    /// channel id.
    debits: Vec<[(NodeId, Amount); 2]>,
}

/// Sentinel for an unused debit slot (no real node id this large).
const NO_NODE: NodeId = NodeId(u32::MAX);

impl<'a> BalanceOverlay<'a> {
    /// Wraps a balance view with an empty overlay.
    pub fn new(base: &'a dyn BalanceView) -> Self {
        BalanceOverlay {
            base,
            debits: Vec::new(),
        }
    }

    /// Records a hypothetical spend of `amount` from `from` on every hop of
    /// `path`.
    pub fn debit_path(&mut self, path: &Path, amount: Amount) {
        for (i, &(c, _)) in path.hops().iter().enumerate() {
            let from = path.nodes()[i];
            if c.index() >= self.debits.len() {
                self.debits
                    .resize(c.index() + 1, [(NO_NODE, Amount::ZERO); 2]);
            }
            let slots = &mut self.debits[c.index()];
            let slot = match slots.iter().position(|&(n, _)| n == from) {
                Some(i) => i,
                // Claim the first free slot for this spender.
                None => slots.iter().position(|&(n, _)| n == NO_NODE).unwrap_or(0),
            };
            slots[slot] = (from, slots[slot].1 + amount);
        }
    }

    /// Bottleneck of `path` under the overlay.
    pub fn bottleneck(&self, path: &Path) -> Amount {
        path_bottleneck(self, path)
    }
}

impl BalanceOverlay<'_> {
    fn debit_for(&self, channel: ChannelId, from: NodeId) -> Amount {
        self.debits
            .get(channel.index())
            .and_then(|slots| slots.iter().find(|&&(n, _)| n == from))
            .map(|&(_, d)| d)
            .unwrap_or(Amount::ZERO)
    }
}

impl BalanceView for BalanceOverlay<'_> {
    fn available(&self, channel: ChannelId, from: NodeId) -> Amount {
        let debit = self.debit_for(channel, from);
        (self.base.available(channel, from) - debit).max(Amount::ZERO)
    }

    fn available_dir(&self, channel: ChannelId, from: NodeId, dir: Direction) -> Amount {
        let debit = self.debit_for(channel, from);
        (self.base.available_dir(channel, from, dir) - debit).max(Amount::ZERO)
    }
}

/// Splits `amount` into `parts` near-equal shares that sum exactly to
/// `amount` (the remainder lands on the first share). Shares are all
/// positive when `amount >= parts` micro-units.
pub fn split_evenly(amount: Amount, parts: usize) -> Vec<Amount> {
    assert!(parts > 0);
    let base = amount / parts as i64;
    let mut out = vec![base; parts];
    out[0] += amount - base * parts as i64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_hop_net() -> Network {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(10))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(2), Amount::from_whole(10))
            .unwrap();
        g
    }

    #[test]
    fn overlay_reduces_available() {
        let g = two_hop_net();
        let p = Path::new(&g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        let mut overlay = BalanceOverlay::new(&g);
        assert_eq!(overlay.bottleneck(&p), Amount::from_whole(5));
        overlay.debit_path(&p, Amount::from_whole(3));
        assert_eq!(overlay.bottleneck(&p), Amount::from_whole(2));
        overlay.debit_path(&p, Amount::from_whole(3));
        // Clamped at zero, never negative.
        assert_eq!(overlay.bottleneck(&p), Amount::ZERO);
    }

    #[test]
    fn overlay_is_directional() {
        let g = two_hop_net();
        let fwd = Path::new(&g, vec![NodeId(0), NodeId(1)]).unwrap();
        let rev = Path::new(&g, vec![NodeId(1), NodeId(0)]).unwrap();
        let mut overlay = BalanceOverlay::new(&g);
        overlay.debit_path(&fwd, Amount::from_whole(4));
        assert_eq!(overlay.bottleneck(&fwd), Amount::from_whole(1));
        // Reverse direction untouched.
        assert_eq!(overlay.bottleneck(&rev), Amount::from_whole(5));
    }

    #[test]
    fn split_evenly_sums_exactly() {
        let total = Amount::from_micros(10);
        let parts = split_evenly(total, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().copied().sum::<Amount>(), total);
        assert_eq!(parts[0], Amount::from_micros(4));
        assert_eq!(parts[1], Amount::from_micros(3));
    }

    #[test]
    fn split_single_part() {
        let total = Amount::from_whole(7);
        assert_eq!(split_evenly(total, 1), vec![total]);
    }

    #[test]
    fn default_trait_impls_decline() {
        struct Nop;
        impl RoutingScheme for Nop {
            fn name(&self) -> &'static str {
                "nop"
            }
            fn kind(&self) -> SchemeKind {
                SchemeKind::Atomic
            }
        }
        let g = two_hop_net();
        let mut s = Nop;
        assert!(s
            .route_payment(&g, &g, NodeId(0), NodeId(2), Amount::ONE)
            .is_none());
        assert_eq!(
            s.route_unit(&g, &g, NodeId(0), NodeId(2), Amount::ONE),
            UnitDecision::Never
        );
    }
}
