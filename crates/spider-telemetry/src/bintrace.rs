//! Compact, indexed binary backend for [`TraceEvent`] streams.
//!
//! Layout (all integers little-endian, varints are LEB128):
//!
//! ```text
//! header := magic "SPBT" | version u8 | kind_count u16
//!           | kind_count × (len u16 | utf8 name) | header_crc u32
//! file   := header | block*
//! block  := body_len u32 | body_crc u32 | body
//! body   := count u32 | flags u8 | t_min f64 | t_max f64
//!           | chan_count varint | delta-encoded sorted channel ids
//!           | node_count varint | delta-encoded sorted node ids
//!           | count × event
//! event  := kind_index u8 | fields (declaration order)
//! ```
//!
//! Numeric fields use a tagged encoding: `u32`/`u64` fields are plain
//! varints; `f64` fields carry a one-byte tag — raw 8-byte IEEE bits, or a
//! zigzag varint of the value scaled by 1, 100, or 10⁶ when (and only
//! when) decoding the scaled integer reproduces the exact source bits.
//! Every narrowing is verified at encode time, so the format is lossless
//! by construction: `decode(encode(events)) == events` bit-for-bit.
//!
//! Each block header carries an index — the sim-time range and the sorted
//! sets of channel and node ids its events touch — so a reader can answer
//! "all events touching channel X in `[t1, t2]`" by skipping blocks whose
//! index cannot match, without decoding them (`body_len` makes the skip a
//! pure pointer bump). Events without a timestamp (solver samples) set a
//! flag bit so time-windowed queries never skip past them.
//!
//! The writer is strictly sequential and deterministic: identical event
//! streams produce byte-identical files on any host, mirroring the JSONL
//! guarantee. The format version byte is checked on read; see DESIGN.md
//! for the compatibility rule.
//!
//! Corruption is detected, never silently decoded: `header_crc` covers
//! every header byte before it and `body_crc` covers its block body, so
//! any bit flip surfaces as a structured [`BinTraceError`] — flips in the
//! length/CRC fields themselves land in `Truncated` or a checksum
//! mismatch, and flips in a kind-table name are caught by the header CRC
//! before any event resolves through the table.

use crate::trace::{events_to_jsonl, parse_jsonl, TraceEvent};
use std::fmt;

/// File magic, first four bytes of every binary trace.
pub const BINTRACE_MAGIC: [u8; 4] = *b"SPBT";

/// Current format version (bumped on any incompatible layout change).
/// v2 added the header and per-block CRC32 checksums.
pub const BINTRACE_VERSION: u8 = 2;

/// Default number of events per indexed block.
pub const DEFAULT_BLOCK_EVENTS: usize = 512;

/// All kind names, in the order used for kind indices. Order is part of
/// the format only through the header's kind table: readers resolve
/// indices through the table, never positionally.
const KIND_NAMES: [&str; 19] = [
    "payment_arrived",
    "payment_split",
    "unit_sent",
    "unit_settled",
    "unit_refunded",
    "unit_queued",
    "payment_completed",
    "payment_abandoned",
    "rebalance_applied",
    "channel_sample",
    "channel_outage",
    "channel_recovered",
    "node_crashed",
    "node_recovered",
    "unit_dropped",
    "unit_griefed",
    "payment_retry",
    "channel_blacklisted",
    "solver_sample",
];

/// Block flag bit: the block contains at least one event without a
/// timestamp, so time-window pruning must not skip it.
const FLAG_HAS_UNTIMED: u8 = 1;

/// Errors surfaced while decoding a binary trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BinTraceError {
    /// The file does not start with [`BINTRACE_MAGIC`].
    BadMagic,
    /// The version byte is not one this reader understands.
    BadVersion(u8),
    /// The byte stream ended inside a structure.
    Truncated,
    /// A kind index has no entry in the header's kind table.
    BadKindIndex(u8),
    /// A kind-table name is not valid UTF-8 or not a known kind.
    BadKindName(String),
    /// A float tag byte was not one of the defined encodings.
    BadFloatTag(u8),
    /// A varint ran past 10 bytes.
    BadVarint,
    /// A block's declared body length disagrees with its contents.
    BadBlockLength,
    /// The header's checksum does not match its bytes (corrupted kind
    /// table or version/magic region).
    BadHeaderChecksum {
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the header bytes actually read.
        computed: u32,
    },
    /// A block body's checksum does not match its bytes (bit flip or
    /// other corruption inside the block).
    BadBlockChecksum {
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the body bytes actually read.
        computed: u32,
    },
}

impl fmt::Display for BinTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinTraceError::BadMagic => write!(f, "not a binary trace (bad magic)"),
            BinTraceError::BadVersion(v) => write!(
                f,
                "unsupported binary trace version {v} (reader supports {BINTRACE_VERSION})"
            ),
            BinTraceError::Truncated => write!(f, "binary trace is truncated"),
            BinTraceError::BadKindIndex(i) => write!(f, "kind index {i} out of table range"),
            BinTraceError::BadKindName(n) => write!(f, "unknown event kind {n:?} in kind table"),
            BinTraceError::BadFloatTag(t) => write!(f, "invalid float tag {t}"),
            BinTraceError::BadVarint => write!(f, "malformed varint"),
            BinTraceError::BadBlockLength => write!(f, "block length does not match contents"),
            BinTraceError::BadHeaderChecksum { stored, computed } => write!(
                f,
                "header checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            BinTraceError::BadBlockChecksum { stored, computed } => write!(
                f,
                "block checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for BinTraceError {}

/// `true` when `bytes` starts with the binary-trace magic.
pub fn is_bintrace(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == BINTRACE_MAGIC
}

// ---------------------------------------------------------------------------
// Primitive encoders
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Float tags: raw IEEE bits, or zigzag varint at scale 1 / 100 / 10⁶.
const F64_RAW: u8 = 0;
const F64_INT: u8 = 1;
const F64_CENTI: u8 = 2;
const F64_MICRO: u8 = 3;
/// Timestamp-only tag: equal to the previous timestamp in this block.
/// Bursts of events sharing one sim time (a payment arriving, splitting,
/// and dispatching its units) collapse to one byte each.
const F64_PREV: u8 = 4;

/// Largest integer magnitude we narrow floats through (stays exact in
/// f64 and well inside i64).
const MAX_EXACT: f64 = 9.0e15;

fn put_f64(out: &mut Vec<u8>, v: f64) {
    if v.is_finite() {
        for (tag, scale) in [(F64_INT, 1.0), (F64_CENTI, 100.0), (F64_MICRO, 1.0e6)] {
            let scaled = (v * scale).round();
            if scaled.abs() <= MAX_EXACT {
                let int = scaled as i64;
                let back = int as f64 / scale;
                if back.to_bits() == v.to_bits() {
                    out.push(tag);
                    put_varint(out, zigzag(int));
                    return;
                }
            }
        }
    }
    out.push(F64_RAW);
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Encodes a timestamp, reusing `prev` (the previous timestamp in the
/// block, `0.0` at block start) when bit-identical.
fn put_time(out: &mut Vec<u8>, t: f64, prev: &mut f64) {
    if t.to_bits() == prev.to_bits() {
        out.push(F64_PREV);
    } else {
        put_f64(out, t);
        *prev = t;
    }
}

/// Cursor over an immutable byte slice.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinTraceError> {
        if self.remaining() < n {
            return Err(BinTraceError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, BinTraceError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, BinTraceError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, BinTraceError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn raw_f64(&mut self) -> Result<f64, BinTraceError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(f64::from_bits(u64::from_le_bytes(arr)))
    }

    fn varint(&mut self) -> Result<u64, BinTraceError> {
        let mut v: u64 = 0;
        for i in 0..10 {
            let byte = self.u8()?;
            v |= u64::from(byte & 0x7f) << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(BinTraceError::BadVarint)
    }

    fn varint_u32(&mut self) -> Result<u32, BinTraceError> {
        u32::try_from(self.varint()?).map_err(|_| BinTraceError::BadVarint)
    }

    fn f64(&mut self) -> Result<f64, BinTraceError> {
        let tag = self.u8()?;
        let scale = match tag {
            F64_RAW => return self.raw_f64(),
            F64_INT => 1.0,
            F64_CENTI => 100.0,
            F64_MICRO => 1.0e6,
            other => return Err(BinTraceError::BadFloatTag(other)),
        };
        let int = unzigzag(self.varint()?);
        Ok(int as f64 / scale)
    }

    fn time(&mut self, prev: &mut f64) -> Result<f64, BinTraceError> {
        if self.remaining() >= 1 && self.data[self.pos] == F64_PREV {
            self.pos += 1;
            return Ok(*prev);
        }
        let t = self.f64()?;
        *prev = t;
        Ok(t)
    }
}

// ---------------------------------------------------------------------------
// Event codec
// ---------------------------------------------------------------------------

fn kind_index(kind: &str) -> Option<u8> {
    KIND_NAMES.iter().position(|&k| k == kind).map(|i| i as u8)
}

fn encode_event(out: &mut Vec<u8>, e: &TraceEvent, prev: &mut f64) {
    // Every kind string is in KIND_NAMES; a miss is a bug caught by the
    // exhaustiveness test below, so default to 0 rather than panicking.
    out.push(kind_index(e.kind()).unwrap_or(0));
    match *e {
        TraceEvent::PaymentArrived {
            t,
            payment,
            src,
            dst,
            amount,
        } => {
            put_time(out, t, prev);
            put_varint(out, payment);
            put_varint(out, u64::from(src));
            put_varint(out, u64::from(dst));
            put_f64(out, amount);
        }
        TraceEvent::PaymentSplit { t, payment, units } => {
            put_time(out, t, prev);
            put_varint(out, payment);
            put_varint(out, units);
        }
        TraceEvent::UnitSent {
            t,
            payment,
            amount,
            hops,
        } => {
            put_time(out, t, prev);
            put_varint(out, payment);
            put_f64(out, amount);
            put_varint(out, u64::from(hops));
        }
        TraceEvent::UnitSettled { t, payment, amount }
        | TraceEvent::UnitRefunded { t, payment, amount } => {
            put_time(out, t, prev);
            put_varint(out, payment);
            put_f64(out, amount);
        }
        TraceEvent::UnitQueued {
            t,
            payment,
            channel,
            depth,
        } => {
            put_time(out, t, prev);
            put_varint(out, payment);
            put_varint(out, u64::from(channel));
            put_varint(out, u64::from(depth));
        }
        TraceEvent::PaymentCompleted { t, payment, delay } => {
            put_time(out, t, prev);
            put_varint(out, payment);
            put_f64(out, delay);
        }
        TraceEvent::PaymentAbandoned {
            t,
            payment,
            delivered,
        } => {
            put_time(out, t, prev);
            put_varint(out, payment);
            put_f64(out, delivered);
        }
        TraceEvent::RebalanceApplied {
            t,
            channel,
            moved,
            fee,
        } => {
            put_time(out, t, prev);
            put_varint(out, u64::from(channel));
            put_f64(out, moved);
            put_f64(out, fee);
        }
        TraceEvent::ChannelSample {
            t,
            channel,
            imbalance,
            inflight,
            queue_depth,
        } => {
            put_time(out, t, prev);
            put_varint(out, u64::from(channel));
            put_f64(out, imbalance);
            put_f64(out, inflight);
            put_varint(out, u64::from(queue_depth));
        }
        TraceEvent::ChannelOutage { t, channel } | TraceEvent::ChannelRecovered { t, channel } => {
            put_time(out, t, prev);
            put_varint(out, u64::from(channel));
        }
        TraceEvent::NodeCrashed { t, node } | TraceEvent::NodeRecovered { t, node } => {
            put_time(out, t, prev);
            put_varint(out, u64::from(node));
        }
        TraceEvent::UnitDropped {
            t,
            payment,
            amount,
            channel,
        } => {
            put_time(out, t, prev);
            put_varint(out, payment);
            put_f64(out, amount);
            put_varint(out, u64::from(channel));
        }
        TraceEvent::UnitGriefed {
            t,
            payment,
            amount,
            hold,
        } => {
            put_time(out, t, prev);
            put_varint(out, payment);
            put_f64(out, amount);
            put_f64(out, hold);
        }
        TraceEvent::PaymentRetry {
            t,
            payment,
            attempt,
            backoff,
        } => {
            put_time(out, t, prev);
            put_varint(out, payment);
            put_varint(out, u64::from(attempt));
            put_f64(out, backoff);
        }
        TraceEvent::ChannelBlacklisted { t, channel, until } => {
            put_time(out, t, prev);
            put_varint(out, u64::from(channel));
            put_f64(out, until);
        }
        TraceEvent::SolverSample {
            iter,
            objective,
            residual,
            mean_price,
        } => {
            put_varint(out, iter);
            put_f64(out, objective);
            put_f64(out, residual);
            put_f64(out, mean_price);
        }
    }
}

fn decode_event(
    cur: &mut Cursor<'_>,
    kinds: &[String],
    prev: &mut f64,
) -> Result<TraceEvent, BinTraceError> {
    let idx = cur.u8()?;
    let kind = kinds
        .get(usize::from(idx))
        .ok_or(BinTraceError::BadKindIndex(idx))?;
    let e = match kind.as_str() {
        "payment_arrived" => TraceEvent::PaymentArrived {
            t: cur.time(prev)?,
            payment: cur.varint()?,
            src: cur.varint_u32()?,
            dst: cur.varint_u32()?,
            amount: cur.f64()?,
        },
        "payment_split" => TraceEvent::PaymentSplit {
            t: cur.time(prev)?,
            payment: cur.varint()?,
            units: cur.varint()?,
        },
        "unit_sent" => TraceEvent::UnitSent {
            t: cur.time(prev)?,
            payment: cur.varint()?,
            amount: cur.f64()?,
            hops: cur.varint_u32()?,
        },
        "unit_settled" => TraceEvent::UnitSettled {
            t: cur.time(prev)?,
            payment: cur.varint()?,
            amount: cur.f64()?,
        },
        "unit_refunded" => TraceEvent::UnitRefunded {
            t: cur.time(prev)?,
            payment: cur.varint()?,
            amount: cur.f64()?,
        },
        "unit_queued" => TraceEvent::UnitQueued {
            t: cur.time(prev)?,
            payment: cur.varint()?,
            channel: cur.varint_u32()?,
            depth: cur.varint_u32()?,
        },
        "payment_completed" => TraceEvent::PaymentCompleted {
            t: cur.time(prev)?,
            payment: cur.varint()?,
            delay: cur.f64()?,
        },
        "payment_abandoned" => TraceEvent::PaymentAbandoned {
            t: cur.time(prev)?,
            payment: cur.varint()?,
            delivered: cur.f64()?,
        },
        "rebalance_applied" => TraceEvent::RebalanceApplied {
            t: cur.time(prev)?,
            channel: cur.varint_u32()?,
            moved: cur.f64()?,
            fee: cur.f64()?,
        },
        "channel_sample" => TraceEvent::ChannelSample {
            t: cur.time(prev)?,
            channel: cur.varint_u32()?,
            imbalance: cur.f64()?,
            inflight: cur.f64()?,
            queue_depth: cur.varint_u32()?,
        },
        "channel_outage" => TraceEvent::ChannelOutage {
            t: cur.time(prev)?,
            channel: cur.varint_u32()?,
        },
        "channel_recovered" => TraceEvent::ChannelRecovered {
            t: cur.time(prev)?,
            channel: cur.varint_u32()?,
        },
        "node_crashed" => TraceEvent::NodeCrashed {
            t: cur.time(prev)?,
            node: cur.varint_u32()?,
        },
        "node_recovered" => TraceEvent::NodeRecovered {
            t: cur.time(prev)?,
            node: cur.varint_u32()?,
        },
        "unit_dropped" => TraceEvent::UnitDropped {
            t: cur.time(prev)?,
            payment: cur.varint()?,
            amount: cur.f64()?,
            channel: cur.varint_u32()?,
        },
        "unit_griefed" => TraceEvent::UnitGriefed {
            t: cur.time(prev)?,
            payment: cur.varint()?,
            amount: cur.f64()?,
            hold: cur.f64()?,
        },
        "payment_retry" => TraceEvent::PaymentRetry {
            t: cur.time(prev)?,
            payment: cur.varint()?,
            attempt: cur.varint_u32()?,
            backoff: cur.f64()?,
        },
        "channel_blacklisted" => TraceEvent::ChannelBlacklisted {
            t: cur.time(prev)?,
            channel: cur.varint_u32()?,
            until: cur.f64()?,
        },
        "solver_sample" => TraceEvent::SolverSample {
            iter: cur.varint()?,
            objective: cur.f64()?,
            residual: cur.f64()?,
            mean_price: cur.f64()?,
        },
        other => return Err(BinTraceError::BadKindName(other.to_string())),
    };
    Ok(e)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Sequential, deterministic binary-trace writer.
///
/// Push events in order, then call [`finish`](Self::finish) to obtain the
/// encoded bytes. Events are buffered into indexed blocks of
/// `block_events` events each.
#[derive(Debug)]
pub struct BinTraceWriter {
    out: Vec<u8>,
    pending: Vec<TraceEvent>,
    block_events: usize,
}

impl BinTraceWriter {
    /// A writer with the default block size.
    pub fn new() -> Self {
        Self::with_block_events(DEFAULT_BLOCK_EVENTS)
    }

    /// A writer flushing an indexed block every `block_events` events.
    pub fn with_block_events(block_events: usize) -> Self {
        let mut out = Vec::new();
        out.extend_from_slice(&BINTRACE_MAGIC);
        out.push(BINTRACE_VERSION);
        out.extend_from_slice(&(KIND_NAMES.len() as u16).to_le_bytes());
        for name in KIND_NAMES {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        let header_crc = spider_core::crc32(&out);
        out.extend_from_slice(&header_crc.to_le_bytes());
        BinTraceWriter {
            out,
            pending: Vec::new(),
            block_events: block_events.max(1),
        }
    }

    /// Appends one event.
    pub fn push(&mut self, e: &TraceEvent) {
        self.pending.push(e.clone());
        if self.pending.len() >= self.block_events {
            self.flush_block();
        }
    }

    /// Flushes any buffered events and returns the complete file bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.flush_block();
        self.out
    }

    fn flush_block(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let mut t_min = f64::INFINITY;
        let mut t_max = f64::NEG_INFINITY;
        let mut has_untimed = false;
        let mut channels: Vec<u32> = Vec::new();
        let mut nodes: Vec<u32> = Vec::new();
        for e in &self.pending {
            match e.time() {
                Some(t) => {
                    t_min = t_min.min(t);
                    t_max = t_max.max(t);
                }
                None => has_untimed = true,
            }
            if let Some(c) = e.channel() {
                channels.push(c);
            }
            let (a, b) = e.nodes();
            if let Some(n) = a {
                nodes.push(n);
            }
            if let Some(n) = b {
                nodes.push(n);
            }
        }
        channels.sort_unstable();
        channels.dedup();
        nodes.sort_unstable();
        nodes.dedup();
        if !t_min.is_finite() {
            t_min = 0.0;
            t_max = 0.0;
        }

        let mut body = Vec::new();
        body.extend_from_slice(&(self.pending.len() as u32).to_le_bytes());
        body.push(if has_untimed { FLAG_HAS_UNTIMED } else { 0 });
        body.extend_from_slice(&t_min.to_bits().to_le_bytes());
        body.extend_from_slice(&t_max.to_bits().to_le_bytes());
        put_varint(&mut body, channels.len() as u64);
        let mut prev = 0u32;
        for (i, &c) in channels.iter().enumerate() {
            let delta = if i == 0 { c } else { c - prev };
            put_varint(&mut body, u64::from(delta));
            prev = c;
        }
        put_varint(&mut body, nodes.len() as u64);
        let mut prev = 0u32;
        for (i, &n) in nodes.iter().enumerate() {
            let delta = if i == 0 { n } else { n - prev };
            put_varint(&mut body, u64::from(delta));
            prev = n;
        }
        let mut prev_t = 0.0;
        for e in &self.pending {
            encode_event(&mut body, e, &mut prev_t);
        }

        self.out
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        self.out
            .extend_from_slice(&spider_core::crc32(&body).to_le_bytes());
        self.out.extend_from_slice(&body);
        self.pending.clear();
    }
}

impl Default for BinTraceWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Encodes an event slice with the default block size.
pub fn encode(events: &[TraceEvent]) -> Vec<u8> {
    let mut w = BinTraceWriter::new();
    for e in events {
        w.push(e);
    }
    w.finish()
}

// ---------------------------------------------------------------------------
// Reader / queries
// ---------------------------------------------------------------------------

/// A filter over trace events. `None` fields match everything; set fields
/// must all match ("and" semantics). Events without a timestamp match any
/// time window.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceQuery {
    /// Only events touching this channel id.
    pub channel: Option<u32>,
    /// Only events touching this node id.
    pub node: Option<u32>,
    /// Only events belonging to this payment id.
    pub payment: Option<u64>,
    /// Only events of this kind (see [`TraceEvent::kind`]).
    pub kind: Option<String>,
    /// Only events at `t >= from`.
    pub from: Option<f64>,
    /// Only events at `t <= to`.
    pub to: Option<f64>,
}

impl TraceQuery {
    /// `true` when `e` passes every set filter.
    pub fn matches(&self, e: &TraceEvent) -> bool {
        if let Some(c) = self.channel {
            if e.channel() != Some(c) {
                return false;
            }
        }
        if let Some(n) = self.node {
            let (a, b) = e.nodes();
            if a != Some(n) && b != Some(n) {
                return false;
            }
        }
        if let Some(p) = self.payment {
            if e.payment() != Some(p) {
                return false;
            }
        }
        if let Some(kind) = &self.kind {
            if e.kind() != kind {
                return false;
            }
        }
        if self.from.is_some() || self.to.is_some() {
            if let Some(t) = e.time() {
                if let Some(from) = self.from {
                    if t < from {
                        return false;
                    }
                }
                if let Some(to) = self.to {
                    if t > to {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// How much work a query did, for observability of the index itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Total blocks in the file.
    pub blocks_total: usize,
    /// Blocks whose index forced a decode.
    pub blocks_scanned: usize,
    /// Events decoded (from scanned blocks).
    pub events_decoded: usize,
    /// Events matching the query.
    pub events_matched: usize,
}

struct Header {
    kinds: Vec<String>,
}

fn read_header(bytes: &[u8]) -> Result<(Header, Cursor<'_>), BinTraceError> {
    let mut cur = Cursor::new(bytes);
    if cur.take(4)? != BINTRACE_MAGIC {
        return Err(BinTraceError::BadMagic);
    }
    let version = cur.u8()?;
    if version != BINTRACE_VERSION {
        return Err(BinTraceError::BadVersion(version));
    }
    let kind_count = cur.u16()?;
    let mut kinds = Vec::with_capacity(usize::from(kind_count));
    for _ in 0..kind_count {
        let len = cur.u16()?;
        let raw = cur.take(usize::from(len))?;
        let name =
            std::str::from_utf8(raw).map_err(|_| BinTraceError::BadKindName(format!("{raw:?}")))?;
        kinds.push(name.to_string());
    }
    let consumed = bytes.len() - cur.remaining();
    let stored = cur.u32()?;
    let computed = spider_core::crc32(&bytes[..consumed]);
    if stored != computed {
        return Err(BinTraceError::BadHeaderChecksum { stored, computed });
    }
    Ok((Header { kinds }, cur))
}

struct BlockHead {
    count: u32,
    has_untimed: bool,
    t_min: f64,
    t_max: f64,
    channels: Vec<u32>,
    nodes: Vec<u32>,
}

fn read_block_head(cur: &mut Cursor<'_>) -> Result<BlockHead, BinTraceError> {
    let count = cur.u32()?;
    let flags = cur.u8()?;
    let t_min = cur.raw_f64()?;
    let t_max = cur.raw_f64()?;
    let n_channels = cur.varint()?;
    let mut channels = Vec::with_capacity(n_channels.min(1 << 20) as usize);
    let mut acc = 0u32;
    for i in 0..n_channels {
        let delta = cur.varint_u32()?;
        acc = if i == 0 {
            delta
        } else {
            acc.wrapping_add(delta)
        };
        channels.push(acc);
    }
    let n_nodes = cur.varint()?;
    let mut nodes = Vec::with_capacity(n_nodes.min(1 << 20) as usize);
    let mut acc = 0u32;
    for i in 0..n_nodes {
        let delta = cur.varint_u32()?;
        acc = if i == 0 {
            delta
        } else {
            acc.wrapping_add(delta)
        };
        nodes.push(acc);
    }
    Ok(BlockHead {
        count,
        has_untimed: flags & FLAG_HAS_UNTIMED != 0,
        t_min,
        t_max,
        channels,
        nodes,
    })
}

impl BlockHead {
    /// `true` when the block's index cannot rule this query out.
    fn may_match(&self, q: &TraceQuery) -> bool {
        if let Some(from) = q.from {
            if self.t_max < from && !self.has_untimed {
                return false;
            }
        }
        if let Some(to) = q.to {
            if self.t_min > to && !self.has_untimed {
                return false;
            }
        }
        if let Some(c) = q.channel {
            if self.channels.binary_search(&c).is_err() {
                return false;
            }
        }
        if let Some(n) = q.node {
            if self.nodes.binary_search(&n).is_err() {
                return false;
            }
        }
        true
    }
}

/// Decodes every event in a binary trace.
pub fn decode(bytes: &[u8]) -> Result<Vec<TraceEvent>, BinTraceError> {
    let (events, _) = run_query(bytes, None)?;
    Ok(events)
}

/// Runs an indexed query: blocks whose index cannot match are skipped
/// without decoding. Returns matching events in file order.
pub fn query(bytes: &[u8], q: &TraceQuery) -> Result<Vec<TraceEvent>, BinTraceError> {
    let (events, _) = run_query(bytes, Some(q))?;
    Ok(events)
}

/// Like [`query`], also reporting how many blocks the index let the
/// reader skip.
pub fn query_with_stats(
    bytes: &[u8],
    q: &TraceQuery,
) -> Result<(Vec<TraceEvent>, QueryStats), BinTraceError> {
    run_query(bytes, Some(q))
}

fn run_query(
    bytes: &[u8],
    q: Option<&TraceQuery>,
) -> Result<(Vec<TraceEvent>, QueryStats), BinTraceError> {
    let (header, mut cur) = read_header(bytes)?;
    let mut out = Vec::new();
    let mut stats = QueryStats::default();
    while cur.remaining() > 0 {
        let body_len = cur.u32()? as usize;
        let stored = cur.u32()?;
        let body = cur.take(body_len)?;
        let computed = spider_core::crc32(body);
        if stored != computed {
            return Err(BinTraceError::BadBlockChecksum { stored, computed });
        }
        stats.blocks_total += 1;
        let mut bcur = Cursor::new(body);
        let head = read_block_head(&mut bcur)?;
        if let Some(q) = q {
            if !head.may_match(q) {
                continue;
            }
        }
        stats.blocks_scanned += 1;
        let mut prev_t = 0.0;
        for _ in 0..head.count {
            let e = decode_event(&mut bcur, &header.kinds, &mut prev_t)?;
            stats.events_decoded += 1;
            if q.is_none_or(|q| q.matches(&e)) {
                stats.events_matched += 1;
                out.push(e);
            }
        }
        if bcur.remaining() != 0 {
            return Err(BinTraceError::BadBlockLength);
        }
    }
    Ok((out, stats))
}

// ---------------------------------------------------------------------------
// Converters
// ---------------------------------------------------------------------------

/// Converts a JSONL trace to the binary format. Lossless: decoding the
/// result reproduces the parsed events bit-for-bit.
pub fn jsonl_to_bintrace(jsonl: &str) -> Result<Vec<u8>, (usize, String)> {
    let events = parse_jsonl(jsonl)?;
    Ok(encode(&events))
}

/// Converts a binary trace back to JSONL.
pub fn bintrace_to_jsonl(bytes: &[u8]) -> Result<String, BinTraceError> {
    let events = decode(bytes)?;
    Ok(events_to_jsonl(&events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::PaymentArrived {
                t: 0.1,
                payment: 7,
                src: 3,
                dst: 9,
                amount: 30.25,
            },
            TraceEvent::UnitSent {
                t: 0.30000000000000004,
                payment: 7,
                amount: 10.123456,
                hops: 2,
            },
            TraceEvent::UnitQueued {
                t: 0.4,
                payment: 7,
                channel: 12,
                depth: 3,
            },
            TraceEvent::UnitSettled {
                t: 0.6,
                payment: 7,
                amount: 10.0,
            },
            TraceEvent::ChannelSample {
                t: 1.0,
                channel: 12,
                imbalance: 0.2512345678901234,
                inflight: 20.5,
                queue_depth: 1,
            },
            TraceEvent::SolverSample {
                iter: 4,
                objective: 100.5,
                residual: 1e-9,
                mean_price: -0.0,
            },
            TraceEvent::NodeCrashed { t: 2.0, node: 3 },
        ]
    }

    #[test]
    fn round_trip_bit_exact() {
        let events = sample_events();
        let bytes = encode(&events);
        assert!(is_bintrace(&bytes));
        let back = decode(&bytes).unwrap();
        assert_eq!(back.len(), events.len());
        for (a, b) in events.iter().zip(&back) {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap()
            );
        }
        assert_eq!(back, events);
    }

    #[test]
    fn round_trip_preserves_weird_floats() {
        let weird = [
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            1e300,
            -1e-300,
            f64::NAN,
            0.1 + 0.2,
            9.007199254740993e15,
        ];
        for &v in &weird {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            let mut cur = Cursor::new(&buf);
            let back = cur.f64().unwrap();
            assert_eq!(
                back.to_bits(),
                v.to_bits(),
                "f64 {v:?} did not round-trip bit-exactly"
            );
        }
    }

    #[test]
    fn every_kind_has_a_table_entry_and_codec() {
        // One event per variant round-trips; kind table covers all kinds.
        let all = vec![
            TraceEvent::PaymentArrived {
                t: 1.0,
                payment: 1,
                src: 0,
                dst: 1,
                amount: 1.0,
            },
            TraceEvent::PaymentSplit {
                t: 1.0,
                payment: 1,
                units: 2,
            },
            TraceEvent::UnitSent {
                t: 1.0,
                payment: 1,
                amount: 1.0,
                hops: 1,
            },
            TraceEvent::UnitSettled {
                t: 1.0,
                payment: 1,
                amount: 1.0,
            },
            TraceEvent::UnitRefunded {
                t: 1.0,
                payment: 1,
                amount: 1.0,
            },
            TraceEvent::UnitQueued {
                t: 1.0,
                payment: 1,
                channel: 1,
                depth: 1,
            },
            TraceEvent::PaymentCompleted {
                t: 1.0,
                payment: 1,
                delay: 0.5,
            },
            TraceEvent::PaymentAbandoned {
                t: 1.0,
                payment: 1,
                delivered: 0.5,
            },
            TraceEvent::RebalanceApplied {
                t: 1.0,
                channel: 1,
                moved: 1.0,
                fee: 0.1,
            },
            TraceEvent::ChannelSample {
                t: 1.0,
                channel: 1,
                imbalance: 0.5,
                inflight: 1.0,
                queue_depth: 0,
            },
            TraceEvent::ChannelOutage { t: 1.0, channel: 1 },
            TraceEvent::ChannelRecovered { t: 1.0, channel: 1 },
            TraceEvent::NodeCrashed { t: 1.0, node: 1 },
            TraceEvent::NodeRecovered { t: 1.0, node: 1 },
            TraceEvent::UnitDropped {
                t: 1.0,
                payment: 1,
                amount: 1.0,
                channel: 1,
            },
            TraceEvent::UnitGriefed {
                t: 1.0,
                payment: 1,
                amount: 1.0,
                hold: 1.0,
            },
            TraceEvent::PaymentRetry {
                t: 1.0,
                payment: 1,
                attempt: 1,
                backoff: 1.0,
            },
            TraceEvent::ChannelBlacklisted {
                t: 1.0,
                channel: 1,
                until: 2.0,
            },
            TraceEvent::SolverSample {
                iter: 1,
                objective: 1.0,
                residual: 0.1,
                mean_price: 0.5,
            },
        ];
        assert_eq!(all.len(), KIND_NAMES.len());
        for e in &all {
            assert!(
                kind_index(e.kind()).is_some(),
                "kind {} missing from KIND_NAMES",
                e.kind()
            );
        }
        let back = decode(&encode(&all)).unwrap();
        assert_eq!(back, all);
    }

    #[test]
    fn jsonl_converters_are_lossless() {
        let events = sample_events();
        let jsonl = events_to_jsonl(&events);
        let bytes = jsonl_to_bintrace(&jsonl).unwrap();
        let back = bintrace_to_jsonl(&bytes).unwrap();
        assert_eq!(back, jsonl);
    }

    #[test]
    fn indexed_query_matches_brute_force() {
        // Many small blocks so index pruning actually kicks in.
        let mut w = BinTraceWriter::with_block_events(2);
        let events = sample_events();
        for e in &events {
            w.push(e);
        }
        let bytes = w.finish();
        let q = TraceQuery {
            channel: Some(12),
            from: Some(0.2),
            to: Some(0.9),
            ..TraceQuery::default()
        };
        let (hits, stats) = query_with_stats(&bytes, &q).unwrap();
        let brute: Vec<TraceEvent> = events.iter().filter(|e| q.matches(e)).cloned().collect();
        assert_eq!(hits, brute);
        assert_eq!(hits.len(), 1);
        assert!(
            stats.blocks_scanned < stats.blocks_total,
            "index never pruned"
        );
    }

    #[test]
    fn untimed_events_survive_time_windows() {
        let events = vec![TraceEvent::SolverSample {
            iter: 1,
            objective: 1.0,
            residual: 0.5,
            mean_price: 0.2,
        }];
        let bytes = encode(&events);
        let q = TraceQuery {
            from: Some(100.0),
            to: Some(200.0),
            ..TraceQuery::default()
        };
        assert_eq!(query(&bytes, &q).unwrap(), events);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(decode(b"nope").unwrap_err(), BinTraceError::BadMagic);
        let mut bytes = encode(&sample_events());
        bytes[4] = 99;
        assert_eq!(decode(&bytes).unwrap_err(), BinTraceError::BadVersion(99));
        let mut truncated = encode(&sample_events());
        truncated.truncate(truncated.len() - 3);
        assert!(decode(&truncated).is_err());
    }

    #[test]
    fn binary_is_deterministic_and_smaller() {
        // A realistic payment lifecycle: bursts of events sharing one sim
        // time, full-entropy timestamps between bursts.
        let mut events = Vec::new();
        for i in 0..500u64 {
            let t_arr = i as f64 * 0.0421375 + 0.0123456789;
            let t_set = t_arr + 1.7301;
            events.push(TraceEvent::PaymentArrived {
                t: t_arr,
                payment: i,
                src: (i % 400) as u32,
                dst: ((i * 7) % 400) as u32,
                amount: 123.456789,
            });
            events.push(TraceEvent::PaymentSplit {
                t: t_arr,
                payment: i,
                units: 3,
            });
            for _ in 0..3 {
                events.push(TraceEvent::UnitSent {
                    t: t_arr,
                    payment: i,
                    amount: 41.152263,
                    hops: 3,
                });
            }
            for _ in 0..3 {
                events.push(TraceEvent::UnitSettled {
                    t: t_set,
                    payment: i,
                    amount: 41.152263,
                });
            }
            events.push(TraceEvent::PaymentCompleted {
                t: t_set,
                payment: i,
                delay: t_set - t_arr,
            });
        }
        let a = encode(&events);
        let b = encode(&events);
        assert_eq!(a, b);
        let jsonl = events_to_jsonl(&events);
        assert!(
            a.len() * 5 <= jsonl.len(),
            "binary {} bytes vs jsonl {} bytes — under 5x",
            a.len(),
            jsonl.len()
        );
    }

    /// A small multi-block file for the corruption tests.
    fn multi_block_bytes() -> (Vec<TraceEvent>, Vec<u8>) {
        let events = sample_events();
        let mut w = BinTraceWriter::with_block_events(3);
        for e in &events {
            w.push(e);
        }
        (events, w.finish())
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let (_, bytes) = multi_block_bytes();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1u8 << bit;
                assert!(
                    decode(&bad).is_err(),
                    "flip of bit {bit} in byte {byte}/{} was silently accepted",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn corruption_surfaces_as_structured_errors() {
        let (_, bytes) = multi_block_bytes();
        // Kind-table corruption is caught by the header CRC: flip one bit
        // of the first kind name's first character (offset 9 = magic 4 +
        // version 1 + kind_count 2 + name length 2).
        let mut bad = bytes.clone();
        bad[9] ^= 0x01;
        assert!(matches!(
            decode(&bad).unwrap_err(),
            BinTraceError::BadHeaderChecksum { .. }
        ));
        // Body corruption is caught by the block CRC.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            decode(&bad).unwrap_err(),
            BinTraceError::BadBlockChecksum { .. }
        ));
    }

    proptest::proptest! {
        /// Any corruption of a valid file — truncation, byte splices, bit
        /// flips — decodes to a structured error or (for clean cuts at a
        /// block boundary) a strict prefix of the original events. Never a
        /// panic, never silently wrong data.
        #[test]
        fn prop_corrupted_bintrace_never_decodes_silently(
            cut in 0usize..2048,
            splice_at in 0usize..2048,
            splice_val in 0usize..256,
        ) {
            let (events, bytes) = multi_block_bytes();

            // Truncation: blocks are self-delimiting, so a cut exactly at
            // a block boundary yields a valid shorter trace — but then the
            // decoded events must be a strict prefix of the original.
            let cut = cut.min(bytes.len());
            if let Ok(prefix) = decode(&bytes[..cut]) {
                proptest::prop_assert!(prefix.len() <= events.len());
                proptest::prop_assert_eq!(&prefix[..], &events[..prefix.len()]);
            }

            // Byte splice: if any byte actually changed, decode must fail.
            let mut spliced = bytes.clone();
            let at = splice_at.min(bytes.len() - 1);
            spliced[at] = splice_val as u8;
            if spliced != bytes {
                proptest::prop_assert!(decode(&spliced).is_err());
            }
        }

        /// Corrupted JSONL input never panics the parser: it yields the
        /// events or a structured per-line error.
        #[test]
        fn prop_corrupted_jsonl_never_panics(
            splice_at in 0usize..4096,
            splice_val in 0usize..256,
        ) {
            let jsonl = events_to_jsonl(&sample_events());
            let mut raw = jsonl.into_bytes();
            let at = splice_at.min(raw.len() - 1);
            raw[at] = splice_val as u8;
            let text = String::from_utf8_lossy(&raw);
            match parse_jsonl(&text) {
                Ok(events) => proptest::prop_assert!(events.len() <= sample_events().len()),
                Err((line, msg)) => {
                    proptest::prop_assert!(line >= 1);
                    proptest::prop_assert!(!msg.is_empty());
                }
            }
        }
    }
}
