//! Fixed-bucket histograms with quantile estimation.
//!
//! Buckets are fixed at construction so recording is O(log buckets) with no
//! allocation, making the histogram safe for simulation hot paths. Quantiles
//! are estimated by linear interpolation inside the covering bucket and
//! clamped to the exact observed `[min, max]` range.

use serde::{Deserialize, Serialize};

/// A fixed-bucket histogram over non-negative samples.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Upper bounds of each bucket, strictly increasing. A final implicit
    /// overflow bucket catches samples above the last bound.
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram with the given strictly-increasing bucket upper bounds.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// `n` exponentially spaced buckets: bounds `start * factor^i`.
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && n >= 1);
        let mut bounds = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        Histogram::new(bounds)
    }

    /// Default latency histogram: 60 buckets from 10 ms to ~3300 s,
    /// ~20% relative resolution per bucket.
    pub fn latency_default() -> Self {
        Histogram::exponential(0.01, 1.2, 60)
    }

    /// Records one sample (negatives are clamped to zero).
    pub fn observe(&mut self, value: f64) {
        let v = value.max(0.0);
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of samples above the top bucket bound (the overflow
    /// bucket). Percentiles whose rank lands here are saturated: they are
    /// interpolated only between the top bound and the observed maximum.
    pub fn overflow(&self) -> u64 {
        self.counts.last().copied().unwrap_or(0)
    }

    /// `true` when the `q`-quantile's rank falls into the overflow
    /// bucket, i.e. the reported percentile is a lower bound rather than
    /// a bucketed estimate.
    pub fn quantile_saturated(&self, q: f64) -> bool {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let overflow = self.overflow();
        if self.count == 0 || overflow == 0 {
            return false;
        }
        q * self.count as f64 > (self.count - overflow) as f64
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample, or zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`), or zero when empty.
    ///
    /// Linear interpolation within the covering bucket, clamped to the
    /// exact observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        let rank = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cumulative + c;
            if (next as f64) >= rank && c > 0 {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
                let within = ((rank - cumulative as f64) / c as f64).clamp(0.0, 1.0);
                let est = lo + (hi - lo) * within;
                return est.clamp(self.min, self.max);
            }
            cumulative = next;
        }
        self.max
    }

    /// The complete internal state, for checkpointing. Unlike
    /// [`snapshot`](Histogram::snapshot) this is lossless: empty buckets and
    /// the exact (possibly non-finite) `min`/`max` sentinels are preserved,
    /// so [`from_state`](Histogram::from_state) rebuilds a histogram
    /// indistinguishable from the original.
    pub fn state(&self) -> HistogramState {
        HistogramState {
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
        }
    }

    /// Rebuilds a histogram from [`state`](Histogram::state) output,
    /// rejecting structurally invalid input with a message.
    pub fn from_state(state: HistogramState) -> Result<Histogram, String> {
        if state.bounds.is_empty() {
            return Err("histogram state has no buckets".to_string());
        }
        if !state.bounds.windows(2).all(|w| w[0] < w[1]) {
            return Err("histogram bounds not strictly increasing".to_string());
        }
        if state.counts.len() != state.bounds.len() + 1 {
            return Err(format!(
                "histogram has {} bounds but {} counts",
                state.bounds.len(),
                state.counts.len()
            ));
        }
        if state.counts.iter().sum::<u64>() != state.count {
            return Err("histogram bucket counts do not sum to total".to_string());
        }
        Ok(Histogram {
            bounds: state.bounds,
            counts: state.counts,
            count: state.count,
            sum: state.sum,
            min: state.min,
            max: state.max,
        })
    }

    /// Snapshot for serialization: non-empty buckets as
    /// `(upper_bound, count)` pairs (the overflow bucket reports `max` as
    /// its bound).
    pub fn snapshot(&self, name: &str, label: &str) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bound = if i < self.bounds.len() {
                self.bounds[i]
            } else {
                self.max
            };
            buckets.push((bound, c));
        }
        HistogramSnapshot {
            name: name.to_string(),
            label: label.to_string(),
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            overflow: self.overflow(),
            saturated: self.quantile_saturated(0.50)
                || self.quantile_saturated(0.95)
                || self.quantile_saturated(0.99),
            buckets,
        }
    }
}

/// Lossless internal state of a [`Histogram`], produced by
/// [`Histogram::state`] for engine checkpoints. `min`/`max` may be
/// `±INFINITY` (the empty-histogram sentinels), which is why this struct is
/// carried in binary snapshot sections rather than JSON.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramState {
    /// Bucket upper bounds, strictly increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (one per bound, plus the overflow bucket).
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (`INFINITY` when empty).
    pub min: f64,
    /// Largest sample (`NEG_INFINITY` when empty).
    pub max: f64,
}

fn is_zero(v: &u64) -> bool {
    *v == 0
}

fn is_false(v: &bool) -> bool {
    !*v
}

/// Serializable state of one histogram at snapshot time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Metric label (empty when unlabelled).
    pub label: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (zero when empty).
    pub min: f64,
    /// Largest sample (zero when empty).
    pub max: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Samples above the top bucket bound.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub overflow: u64,
    /// `true` when any reported percentile's rank fell into the overflow
    /// bucket (the estimate saturates toward the observed maximum).
    #[serde(default, skip_serializing_if = "is_false")]
    pub saturated: bool,
    /// Non-empty `(upper_bound, count)` buckets in bound order.
    pub buckets: Vec<(f64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::new(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.6, 3.0, 10.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 16.6).abs() < 1e-12);
        assert!((h.mean() - 3.32).abs() < 1e-12);
    }

    #[test]
    fn quantiles_bracket_samples() {
        let mut h = Histogram::exponential(0.01, 1.5, 40);
        for i in 1..=1000 {
            h.observe(i as f64 / 100.0); // 0.01 .. 10.0 uniform
        }
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 > 2.0 && p50 < 8.0, "p50 = {p50}");
        assert!(p95 > p50 && p95 <= 10.0, "p95 = {p95}");
        assert!(p99 >= p95 && p99 <= 10.0, "p99 = {p99}");
    }

    #[test]
    fn exact_for_single_value() {
        let mut h = Histogram::latency_default();
        for _ in 0..100 {
            h.observe(0.5);
        }
        // All mass in one bucket; clamping to [min, max] makes it exact.
        assert_eq!(h.quantile(0.5), 0.5);
        assert_eq!(h.quantile(0.99), 0.5);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::latency_default();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        let s = h.snapshot("x", "");
        assert_eq!(s.count, 0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn overflow_bucket_catches_large_samples() {
        let mut h = Histogram::new(vec![1.0]);
        h.observe(1000.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.quantile(0.5), 1000.0);
        let s = h.snapshot("x", "");
        assert_eq!(s.buckets, vec![(1000.0, 1)]);
        assert_eq!(s.overflow, 1);
        assert!(s.saturated);
    }

    #[test]
    fn saturation_marks_only_overflowing_quantiles() {
        let mut h = Histogram::new(vec![1.0, 2.0, 4.0]);
        // 90 in-range samples, 10 above the top bound.
        for _ in 0..90 {
            h.observe(0.5);
        }
        for _ in 0..10 {
            h.observe(100.0);
        }
        assert_eq!(h.overflow(), 10);
        assert!(!h.quantile_saturated(0.50));
        assert!(h.quantile_saturated(0.95));
        assert!(h.quantile_saturated(0.99));
        let s = h.snapshot("x", "");
        assert!(s.saturated);
        // No overflow → no saturation, and the legacy JSON stays
        // byte-identical (both new fields are skipped).
        let mut clean = Histogram::new(vec![1.0, 2.0, 4.0]);
        clean.observe(0.5);
        let snap = clean.snapshot("x", "");
        assert!(!snap.saturated);
        assert_eq!(snap.overflow, 0);
        let json = serde_json::to_string(&snap).unwrap();
        assert!(!json.contains("overflow") && !json.contains("saturated"));
    }

    #[test]
    fn snapshot_round_trips_json() {
        let mut h = Histogram::new(vec![1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        let snap = h.snapshot("delay", "srpt");
        let json = serde_json::to_string(&snap).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
