//! Structured telemetry substrate for the Spider workspace.
//!
//! Three layers, all deterministic:
//!
//! - [`registry`] — a lightweight metrics registry: counters, gauges, and
//!   fixed-bucket histograms addressable by static name + label,
//!   `Send + Sync`;
//! - [`trace`] — typed payment-lifecycle events ([`TraceEvent`]) recorded
//!   by a [`Tracer`] and serialized to JSON Lines;
//! - [`bintrace`] — a compact, indexed binary backend for the same event
//!   streams, with lossless JSONL↔binary converters;
//! - [`spans`] — an opt-in engine-phase profiler splitting deterministic
//!   sim-time counters from nondeterministic wall-clock totals;
//! - [`summary`] — aggregated per-run telemetry ([`TelemetrySummary`])
//!   embedded in simulation reports.
//!
//! The [`Telemetry`] handle ties them together. A disabled handle (the
//! default) holds no allocation and every recording method is an inlined
//! no-op branch on a `None`, so instrumented hot paths pay one predictable
//! branch when telemetry is off. Serialized output carries **simulation
//! time only** — never wall-clock timestamps — so traces are byte-identical
//! across hosts and worker counts.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bintrace;
pub mod histogram;
pub mod registry;
pub mod spans;
pub mod summary;
pub mod trace;

pub use bintrace::{BinTraceError, BinTraceWriter, TraceQuery};
pub use histogram::{Histogram, HistogramSnapshot, HistogramState};
pub use registry::{intern_name, MetricEntry, MetricsRegistry, MetricsSnapshot, RegistryState};
pub use spans::{Phase, PhaseProfile, PhaseWallStat, SpanGuard, SpanProfiler};
pub use summary::{DelayPercentiles, NetworkSample, TelemetrySummary};
pub use trace::{count_by_kind, events_to_jsonl, parse_jsonl, TraceEvent, Tracer};

use std::sync::Arc;

/// Default cadence for per-channel state samples (simulation seconds).
pub const DEFAULT_SAMPLE_INTERVAL: f64 = 1.0;

/// Lossless recorded state of an enabled [`Telemetry`] handle, captured by
/// [`Telemetry::export_state`] for engine checkpoints.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryState {
    /// Channel-sampling cadence (simulation seconds).
    pub sample_interval: f64,
    /// Whether the handle carried a span profiler. Profiled handles export
    /// this flag but cannot be restored.
    pub profiled: bool,
    /// Full registry contents.
    pub registry: registry::RegistryState,
    /// The event buffer, in emission order.
    pub events: Vec<TraceEvent>,
}

#[derive(Debug)]
struct TelemetryInner {
    registry: MetricsRegistry,
    tracer: Tracer,
    sample_interval: f64,
    /// Present only on profiled handles: span recording stays a no-op for
    /// plain enabled telemetry, so enabling traces never perturbs
    /// byte-identity contracts that predate the profiler.
    profiler: Option<SpanProfiler>,
}

/// A cheap, cloneable telemetry handle: either disabled (no-op) or backed
/// by a shared registry + tracer.
///
/// Engines take this by value inside their configs; callers keep a clone to
/// read results back after the run. `Default` is disabled, so existing
/// configs are unaffected unless telemetry is explicitly switched on.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl Telemetry {
    /// A disabled handle: every method is a no-op.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle with the default channel-sampling cadence.
    pub fn enabled() -> Self {
        Self::with_sample_interval(DEFAULT_SAMPLE_INTERVAL)
    }

    /// An enabled handle sampling channel state every `sample_interval`
    /// simulation seconds.
    pub fn with_sample_interval(sample_interval: f64) -> Self {
        Self::build(sample_interval, false)
    }

    /// An enabled handle that also records engine-phase spans (wall time
    /// and deterministic phase counters) via a [`SpanProfiler`].
    pub fn profiled() -> Self {
        Self::build(DEFAULT_SAMPLE_INTERVAL, true)
    }

    /// A profiled handle with a custom channel-sampling cadence.
    pub fn profiled_with_sample_interval(sample_interval: f64) -> Self {
        Self::build(sample_interval, true)
    }

    fn build(sample_interval: f64, profiling: bool) -> Self {
        assert!(sample_interval > 0.0, "sample interval must be positive");
        Telemetry {
            inner: Some(Arc::new(TelemetryInner {
                registry: MetricsRegistry::new(),
                tracer: Tracer::new(),
                sample_interval,
                profiler: profiling.then(SpanProfiler::new),
            })),
        }
    }

    /// `true` when this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// `true` when this handle records engine-phase spans.
    #[inline]
    pub fn is_profiling(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.profiler.is_some())
    }

    /// Channel-sampling cadence, or `None` when disabled.
    #[inline]
    pub fn sample_interval(&self) -> Option<f64> {
        self.inner.as_ref().map(|i| i.sample_interval)
    }

    /// Records a trace event. The closure only runs when enabled, so
    /// argument construction costs nothing when telemetry is off.
    #[inline]
    pub fn emit(&self, event: impl FnOnce() -> TraceEvent) {
        if let Some(inner) = &self.inner {
            inner.tracer.record(event());
        }
    }

    /// Adds `delta` to an unlabelled counter.
    #[inline]
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter_add(name, delta);
        }
    }

    /// Adds `delta` to a labelled counter. The label closure only runs when
    /// enabled.
    #[inline]
    pub fn counter_add_labelled(
        &self,
        name: &'static str,
        label: impl FnOnce() -> String,
        delta: u64,
    ) {
        if let Some(inner) = &self.inner {
            inner.registry.counter_add_labelled(name, &label(), delta);
        }
    }

    /// Sets an unlabelled gauge.
    #[inline]
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge_set(name, "", value);
        }
    }

    /// Records `value` into an unlabelled histogram created with `make` on
    /// first use.
    #[inline]
    pub fn histogram_observe(
        &self,
        name: &'static str,
        value: f64,
        make: impl FnOnce() -> Histogram,
    ) {
        if let Some(inner) = &self.inner {
            inner.registry.histogram_observe(name, "", value, make);
        }
    }

    /// Reads percentiles out of an unlabelled histogram, if it exists.
    pub fn delay_percentiles(&self, name: &'static str) -> Option<DelayPercentiles> {
        let inner = self.inner.as_ref()?;
        inner
            .registry
            .with_histogram(name, "", |h| DelayPercentiles {
                p50: h.quantile(0.50),
                p95: h.quantile(0.95),
                p99: h.quantile(0.99),
                saturated: h.quantile_saturated(0.50)
                    || h.quantile_saturated(0.95)
                    || h.quantile_saturated(0.99),
            })
    }

    /// Opens a wall-timed span for `phase`; a free no-op unless this
    /// handle was built with [`Telemetry::profiled`].
    #[inline]
    pub fn span_enter(&self, phase: Phase) -> SpanGuard<'_> {
        match self.profiler() {
            Some(p) => p.enter(phase),
            None => SpanGuard::noop(),
        }
    }

    /// Like [`span_enter`](Self::span_enter), attributing the span to a
    /// lane (shard rank) as well.
    #[inline]
    pub fn span_enter_lane(&self, phase: Phase, lane: u32) -> SpanGuard<'_> {
        match self.profiler() {
            Some(p) => p.enter_lane(phase, lane),
            None => SpanGuard::noop(),
        }
    }

    /// Adds `n` processed items to `phase` (deterministic; no-op unless
    /// profiling).
    #[inline]
    pub fn span_items(&self, phase: Phase, n: u64) {
        if let Some(p) = self.profiler() {
            p.add_items(phase, n);
        }
    }

    /// Adds `n` processed items to `phase` for `lane` and globally.
    #[inline]
    pub fn span_items_lane(&self, phase: Phase, lane: u32, n: u64) {
        if let Some(p) = self.profiler() {
            p.add_items_lane(phase, lane, n);
        }
    }

    /// Widens `phase`'s active sim-time window to include `t`.
    #[inline]
    pub fn span_sim(&self, phase: Phase, t: f64) {
        if let Some(p) = self.profiler() {
            p.mark_sim(phase, t);
        }
    }

    /// Direct access to the span profiler, when profiling.
    pub fn profiler(&self) -> Option<&SpanProfiler> {
        self.inner.as_ref().and_then(|i| i.profiler.as_ref())
    }

    /// Direct access to the registry, when enabled.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_ref().map(|i| &i.registry)
    }

    /// A copy of all trace events recorded so far (empty when disabled).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map(|i| i.tracer.events())
            .unwrap_or_default()
    }

    /// The whole trace as JSON Lines (empty when disabled).
    pub fn trace_jsonl(&self) -> String {
        self.inner
            .as_ref()
            .map(|i| i.tracer.to_jsonl())
            .unwrap_or_default()
    }

    /// Lossless capture of an enabled handle's recorded state — registry
    /// contents plus the full event buffer — for an engine checkpoint.
    /// `None` when disabled. Wall-clock span profiles are *not* captured
    /// (they are inherently nondeterministic); the `profiled` flag records
    /// whether the handle had one so callers can refuse to checkpoint it.
    pub fn export_state(&self) -> Option<TelemetryState> {
        let inner = self.inner.as_ref()?;
        Some(TelemetryState {
            sample_interval: inner.sample_interval,
            profiled: inner.profiler.is_some(),
            registry: inner.registry.export_state(),
            events: inner.tracer.events(),
        })
    }

    /// Rebuilds an enabled handle from [`export_state`] output: the new
    /// handle's registry, event buffer, and sampling cadence are
    /// indistinguishable from the captured one's. Fails on invalid registry
    /// state and on profiled captures (wall-clock profiles cannot be
    /// restored deterministically).
    ///
    /// [`export_state`]: Telemetry::export_state
    pub fn from_state(state: TelemetryState) -> Result<Telemetry, String> {
        if state.profiled {
            return Err("profiled telemetry cannot be restored".to_string());
        }
        // NaN must be rejected too, hence the explicit check alongside <= 0.
        if state.sample_interval <= 0.0 || state.sample_interval.is_nan() {
            return Err(format!(
                "sample interval must be positive, got {}",
                state.sample_interval
            ));
        }
        let t = Telemetry::with_sample_interval(state.sample_interval);
        if let Some(inner) = t.inner.as_ref() {
            inner.registry.restore_state(state.registry)?;
            for ev in state.events {
                inner.tracer.record(ev);
            }
        }
        Ok(t)
    }

    /// Restores checkpointed state *into this handle* in place, so a caller
    /// holding a clone keeps visibility into a resumed run's trace and
    /// metrics. The handle must be enabled, unprofiled, created with the
    /// same sampling cadence as the capture, and must not have recorded any
    /// events yet.
    pub fn restore_from_state(&self, state: TelemetryState) -> Result<(), String> {
        let Some(inner) = self.inner.as_ref() else {
            return Err("cannot restore telemetry into a disabled handle".to_string());
        };
        if state.profiled || inner.profiler.is_some() {
            return Err("profiled telemetry cannot be restored".to_string());
        }
        if inner.sample_interval.to_bits() != state.sample_interval.to_bits() {
            return Err(format!(
                "sample interval mismatch: handle {} vs snapshot {}",
                inner.sample_interval, state.sample_interval
            ));
        }
        if !inner.tracer.events().is_empty() {
            return Err("cannot restore into a handle that already recorded events".to_string());
        }
        inner.registry.restore_state(state.registry)?;
        for ev in state.events {
            inner.tracer.record(ev);
        }
        Ok(())
    }

    /// Builds the per-run summary: event counts, the given network series,
    /// and a metrics snapshot. `None` when disabled.
    pub fn summarize(&self, network_series: Vec<NetworkSample>) -> Option<TelemetrySummary> {
        let inner = self.inner.as_ref()?;
        let events = inner.tracer.events();
        Some(TelemetrySummary {
            events: events.len() as u64,
            event_counts: count_by_kind(&events),
            network_series,
            metrics: inner.registry.snapshot(),
            phases: inner
                .profiler
                .as_ref()
                .map(|p| p.phases())
                .unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let mut ran = false;
        t.emit(|| {
            ran = true;
            TraceEvent::PaymentArrived {
                t: 0.0,
                payment: 0,
                src: 0,
                dst: 0,
                amount: 0.0,
            }
        });
        assert!(!ran, "closure must not run when disabled");
        t.counter_add("x", 1);
        assert!(t.events().is_empty());
        assert!(t.trace_jsonl().is_empty());
        assert!(t.summarize(Vec::new()).is_none());
        assert!(t.delay_percentiles("x").is_none());
        assert!(t.sample_interval().is_none());
    }

    #[test]
    fn enabled_handle_records_and_summarizes() {
        let t = Telemetry::enabled();
        assert!(t.is_enabled());
        t.emit(|| TraceEvent::PaymentArrived {
            t: 0.1,
            payment: 1,
            src: 0,
            dst: 1,
            amount: 5.0,
        });
        t.counter_add("sim.units_sent", 3);
        t.histogram_observe("sim.completion_delay", 0.5, Histogram::latency_default);
        let summary = t.summarize(Vec::new()).unwrap();
        assert_eq!(summary.events, 1);
        assert_eq!(summary.event_count("payment_arrived"), 1);
        assert_eq!(summary.metrics.counter("sim.units_sent", ""), Some(3));
        let p = t.delay_percentiles("sim.completion_delay").unwrap();
        assert_eq!(p.p50, 0.5);
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::enabled();
        let clone = t.clone();
        clone.counter_add("shared", 2);
        assert_eq!(t.registry().unwrap().counter("shared", ""), 2);
    }
}
