//! The metrics registry: counters, gauges, and fixed-bucket histograms
//! addressable by static name + label.
//!
//! The registry is `Send + Sync` (interior mutability behind a mutex) so one
//! registry can serve an engine and the harness around it, or be shared by
//! scoped worker threads. Keys sort deterministically (`BTreeMap`), so
//! snapshots — and anything serialized from them — are byte-stable for a
//! given sequence of recordings, independent of thread interleaving of
//! *distinct* metrics.

use crate::histogram::{Histogram, HistogramSnapshot, HistogramState};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Interns a metric name, returning a `&'static str` usable as a registry
/// key. Needed when names come from deserialized data (snapshot restore)
/// rather than source literals. Each distinct name leaks once; the set of
/// metric names in a process is small and fixed, so the leak is bounded.
pub fn intern_name(name: &str) -> &'static str {
    static INTERNED: Mutex<BTreeMap<String, &'static str>> = Mutex::new(BTreeMap::new());
    let mut map = match INTERNED.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(&s) = map.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    map.insert(name.to_string(), leaked);
    leaked
}

/// Metric address: static name plus an owned label ("" when unlabelled).
type Key = (&'static str, String);

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    histograms: BTreeMap<Key, Histogram>,
}

/// A thread-safe registry of named metrics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the registry, recovering from a poisoned mutex: metrics are
    /// monotonic aggregates, so state written before another thread's
    /// panic is still valid and losing a recording would skew results
    /// more than keeping it.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Adds `delta` to the counter `name` (unlabelled).
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        self.counter_add_labelled(name, "", delta);
    }

    /// Adds `delta` to the counter `name{label}`.
    pub fn counter_add_labelled(&self, name: &'static str, label: &str, delta: u64) {
        let mut inner = self.lock();
        *inner.counters.entry((name, label.to_string())).or_insert(0) += delta;
    }

    /// Current value of counter `name{label}` (zero if never touched).
    pub fn counter(&self, name: &'static str, label: &str) -> u64 {
        self.lock()
            .counters
            .get(&(name, label.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Sets the gauge `name{label}` to `value`.
    pub fn gauge_set(&self, name: &'static str, label: &str, value: f64) {
        let mut inner = self.lock();
        inner.gauges.insert((name, label.to_string()), value);
    }

    /// Records `value` into the histogram `name{label}`, creating it with
    /// `make` on first use.
    pub fn histogram_observe(
        &self,
        name: &'static str,
        label: &str,
        value: f64,
        make: impl FnOnce() -> Histogram,
    ) {
        let mut inner = self.lock();
        inner
            .histograms
            .entry((name, label.to_string()))
            .or_insert_with(make)
            .observe(value);
    }

    /// Runs `f` against the histogram `name{label}` if it exists.
    pub fn with_histogram<T>(
        &self,
        name: &'static str,
        label: &str,
        f: impl FnOnce(&Histogram) -> T,
    ) -> Option<T> {
        let inner = self.lock();
        inner.histograms.get(&(name, label.to_string())).map(f)
    }

    /// A deterministic, serializable snapshot of every metric.
    ///
    /// Ordering is enforced here, not inherited: every section is
    /// explicitly sorted by `(name, label)` at snapshot time, so snapshot
    /// JSON stays byte-identical across identically-seeded runs even if
    /// the backing storage ever changes iteration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        let mut counters: Vec<MetricEntry> = inner
            .counters
            .iter()
            .map(|(&(name, ref label), &value)| MetricEntry {
                name: name.to_string(),
                label: label.clone(),
                value: value as f64,
            })
            .collect();
        let mut gauges: Vec<MetricEntry> = inner
            .gauges
            .iter()
            .map(|(&(name, ref label), &value)| MetricEntry {
                name: name.to_string(),
                label: label.clone(),
                value,
            })
            .collect();
        let mut histograms: Vec<HistogramSnapshot> = inner
            .histograms
            .iter()
            .map(|(&(name, ref label), h)| h.snapshot(name, label))
            .collect();
        let entry_key = |e: &MetricEntry| (e.name.clone(), e.label.clone());
        counters.sort_by_key(entry_key);
        gauges.sort_by_key(entry_key);
        histograms.sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// The registry's complete, lossless state for a checkpoint: exact
    /// integer counters, gauges, and full histogram states (including empty
    /// buckets and non-finite extrema that [`snapshot`] cannot carry),
    /// sorted by `(name, label)`.
    ///
    /// [`snapshot`]: MetricsRegistry::snapshot
    pub fn export_state(&self) -> RegistryState {
        let inner = self.lock();
        RegistryState {
            counters: inner
                .counters
                .iter()
                .map(|(&(name, ref label), &v)| (name.to_string(), label.clone(), v))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(&(name, ref label), &v)| (name.to_string(), label.clone(), v))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(&(name, ref label), h)| (name.to_string(), label.clone(), h.state()))
                .collect(),
        }
    }

    /// Overwrites this registry's contents with a state captured by
    /// [`export_state`](MetricsRegistry::export_state). Metric names are
    /// interned via [`intern_name`]. Fails on structurally invalid
    /// histogram states without modifying the registry.
    pub fn restore_state(&self, state: RegistryState) -> Result<(), String> {
        let mut histograms = BTreeMap::new();
        for (name, label, hs) in state.histograms {
            let h = Histogram::from_state(hs)
                .map_err(|e| format!("histogram {name}{{{label}}}: {e}"))?;
            histograms.insert((intern_name(&name), label), h);
        }
        let mut inner = self.lock();
        inner.counters = state
            .counters
            .into_iter()
            .map(|(name, label, v)| ((intern_name(&name), label), v))
            .collect();
        inner.gauges = state
            .gauges
            .into_iter()
            .map(|(name, label, v)| ((intern_name(&name), label), v))
            .collect();
        inner.histograms = histograms;
        Ok(())
    }
}

/// Lossless registry contents captured by [`MetricsRegistry::export_state`],
/// in `(name, label, value)` form sorted by key.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistryState {
    /// Exact counter values.
    pub counters: Vec<(String, String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, String, f64)>,
    /// Full histogram states.
    pub histograms: Vec<(String, String, HistogramState)>,
}

/// One named scalar metric in a snapshot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricEntry {
    /// Metric name.
    pub name: String,
    /// Metric label (empty when unlabelled).
    pub label: String,
    /// Value (counters are exact integers widened to f64).
    pub value: f64,
}

/// A serializable point-in-time copy of a [`MetricsRegistry`], sorted by
/// (name, label) so output is deterministic.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: Vec<MetricEntry>,
    /// Last-write-wins gauges.
    pub gauges: Vec<MetricEntry>,
    /// Histograms with percentile estimates.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a counter value by name + label.
    pub fn counter(&self, name: &str, label: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|e| e.name == name && e.label == label)
            .map(|e| e.value as u64)
    }

    /// Looks up a histogram snapshot by name + label.
    pub fn histogram(&self, name: &str, label: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name && h.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MetricsRegistry::new();
        r.counter_add("units", 3);
        r.counter_add("units", 2);
        r.counter_add_labelled("units", "retried", 1);
        assert_eq!(r.counter("units", ""), 5);
        assert_eq!(r.counter("units", "retried"), 1);
        assert_eq!(r.counter("never", ""), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let r = MetricsRegistry::new();
        r.gauge_set("imbalance", "", 0.4);
        r.gauge_set("imbalance", "", 0.2);
        let snap = r.snapshot();
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.gauges[0].value, 0.2);
    }

    #[test]
    fn histograms_created_on_first_use() {
        let r = MetricsRegistry::new();
        r.histogram_observe("delay", "", 0.5, Histogram::latency_default);
        r.histogram_observe("delay", "", 1.5, Histogram::latency_default);
        assert_eq!(r.with_histogram("delay", "", Histogram::count), Some(2));
        assert!(r.with_histogram("none", "", Histogram::count).is_none());
    }

    #[test]
    fn snapshot_is_sorted_and_serializable() {
        let r = MetricsRegistry::new();
        r.counter_add("z", 1);
        r.counter_add("a", 2);
        r.counter_add_labelled("a", "x", 3);
        let snap = r.snapshot();
        let names: Vec<(String, String)> = snap
            .counters
            .iter()
            .map(|e| (e.name.clone(), e.label.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("a".into(), "".into()),
                ("a".into(), "x".into()),
                ("z".into(), "".into())
            ]
        );
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counter("a", "x"), Some(3));
    }

    #[test]
    fn snapshot_json_is_byte_identical_across_identical_runs() {
        // Same deterministic recording sequence, two independent
        // registries: the serialized snapshots must match byte for byte.
        let run = || {
            let r = MetricsRegistry::new();
            let mut seed = 0x9e3779b97f4a7c15u64;
            for _ in 0..200 {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let which = seed % 3;
                let label = format!("l{}", seed % 5);
                match which {
                    0 => r.counter_add_labelled("flow.units", &label, seed % 7),
                    1 => r.gauge_set("flow.imbalance", &label, (seed % 1000) as f64 / 1000.0),
                    _ => r.histogram_observe(
                        "flow.delay",
                        &label,
                        (seed % 100) as f64 / 10.0,
                        Histogram::latency_default,
                    ),
                }
            }
            serde_json::to_string(&r.snapshot()).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn registry_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MetricsRegistry>();
    }
}
