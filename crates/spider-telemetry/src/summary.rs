//! Aggregated telemetry embedded into simulation reports.

use crate::registry::MetricsSnapshot;
use crate::spans::PhaseProfile;
use serde::{Deserialize, Serialize};

fn is_false(v: &bool) -> bool {
    !*v
}

/// Completion-delay percentiles estimated from the latency histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DelayPercentiles {
    /// Median completion delay (seconds).
    pub p50: f64,
    /// 95th-percentile completion delay (seconds).
    pub p95: f64,
    /// 99th-percentile completion delay (seconds).
    pub p99: f64,
    /// `true` when any reported percentile fell into the histogram's
    /// overflow bucket — the estimate is then clamped near the observed
    /// maximum rather than interpolated, and should be read as "at
    /// least this large".
    #[serde(default, skip_serializing_if = "is_false")]
    pub saturated: bool,
}

/// One network-wide aggregate sample (taken at the telemetry sampling
/// cadence, on scheduler ticks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkSample {
    /// Simulation time (seconds).
    pub t: f64,
    /// Mean relative channel imbalance across all channels.
    pub mean_imbalance: f64,
    /// Total in-flight (locked) tokens across all channels.
    pub total_inflight: f64,
    /// Payments pending at this instant.
    pub pending: u32,
    /// Largest per-channel router-queue depth (zero for the source-queued
    /// engine).
    pub max_queue_depth: u32,
}

/// Aggregated telemetry for one run, embedded in `SimReport` when telemetry
/// is enabled.
///
/// Everything here is a pure function of the simulation inputs: sim-time
/// stamps only, deterministically ordered collections.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySummary {
    /// Total trace events recorded.
    pub events: u64,
    /// Per-kind event counts, sorted by kind name.
    pub event_counts: Vec<(String, u64)>,
    /// Network-wide aggregate time series.
    pub network_series: Vec<NetworkSample>,
    /// Snapshot of every registered metric.
    pub metrics: MetricsSnapshot,
    /// Deterministic per-phase profiler breakdown (empty unless the run
    /// used a profiled telemetry handle; contains no wall-clock data).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub phases: Vec<PhaseProfile>,
}

impl TelemetrySummary {
    /// Count of events of `kind` (zero if none).
    pub fn event_count(&self, kind: &str) -> u64 {
        self.event_counts
            .iter()
            .find(|(k, _)| k == kind)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_round_trips_json() {
        let summary = TelemetrySummary {
            events: 3,
            event_counts: vec![("payment_arrived".into(), 2), ("unit_sent".into(), 1)],
            network_series: vec![NetworkSample {
                t: 1.0,
                mean_imbalance: 0.5,
                total_inflight: 20.0,
                pending: 2,
                max_queue_depth: 0,
            }],
            metrics: MetricsSnapshot::default(),
            phases: Vec::new(),
        };
        let json = serde_json::to_string(&summary).unwrap();
        let back: TelemetrySummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, summary);
        assert_eq!(back.event_count("payment_arrived"), 2);
        assert_eq!(back.event_count("missing"), 0);
    }
}
