//! Hierarchical engine-phase span profiler.
//!
//! The profiler answers "where does the time go?" for one simulation run,
//! split the same way the bench harness splits its output:
//!
//! - **deterministic** per-phase counters — call counts, item counts, and
//!   the sim-time window each phase was active over — a pure function of
//!   the simulation inputs, safe to serialize into reports;
//! - **nondeterministic** wall-clock totals — accumulated via monotonic
//!   [`Instant`] reads inside this crate only (the engines never touch the
//!   clock, keeping them clean under the determinism lint) — surfaced
//!   separately, never mixed into result JSON.
//!
//! Phases form a shallow hierarchy: the sharded engine's epoch-compute
//! phase contains the per-event phases (routing decision, unit dispatch,
//! settle/refund, queue drain, fault processing) and the message merge;
//! barrier wait sits alongside it. Sequential engines record the leaf
//! phases only. Wall times are *inclusive* — a parent span covers its
//! children.

use crate::histogram::{Histogram, HistogramSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// One instrumented engine phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Choosing paths / rates for a payment or unit (scheme logic).
    RoutingDecision,
    /// Splitting payments into units and locking them onto paths.
    UnitDispatch,
    /// Settling or refunding in-flight units (HTLC resolution).
    SettleRefund,
    /// Draining router or source queues on scheduler ticks.
    QueueDrain,
    /// Applying fault-plan events and fault-induced cleanups.
    FaultProcessing,
    /// One shard's compute half of a BSP epoch (sharded engine only).
    EpochCompute,
    /// Blocking on an epoch barrier (sharded engine only).
    BarrierWait,
    /// Ingesting cross-shard messages and published balances.
    MessageMerge,
}

/// Number of distinct phases.
pub const PHASE_COUNT: usize = 8;

impl Phase {
    /// Every phase, in stable report order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::EpochCompute,
        Phase::RoutingDecision,
        Phase::UnitDispatch,
        Phase::SettleRefund,
        Phase::QueueDrain,
        Phase::FaultProcessing,
        Phase::MessageMerge,
        Phase::BarrierWait,
    ];

    /// Stable snake_case name used in serialized breakdowns.
    pub fn name(self) -> &'static str {
        match self {
            Phase::RoutingDecision => "routing_decision",
            Phase::UnitDispatch => "unit_dispatch",
            Phase::SettleRefund => "settle_refund",
            Phase::QueueDrain => "queue_drain",
            Phase::FaultProcessing => "fault_processing",
            Phase::EpochCompute => "epoch_compute",
            Phase::BarrierWait => "barrier_wait",
            Phase::MessageMerge => "message_merge",
        }
    }

    /// Enclosing phase, when one exists. Leaf phases run inside the
    /// sharded engine's epoch-compute span; in sequential engines the
    /// parent simply records no calls and breakdowns render flat.
    pub fn parent(self) -> Option<Phase> {
        match self {
            Phase::RoutingDecision
            | Phase::UnitDispatch
            | Phase::SettleRefund
            | Phase::QueueDrain
            | Phase::FaultProcessing
            | Phase::MessageMerge => Some(Phase::EpochCompute),
            Phase::EpochCompute | Phase::BarrierWait => None,
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::RoutingDecision => 0,
            Phase::UnitDispatch => 1,
            Phase::SettleRefund => 2,
            Phase::QueueDrain => 3,
            Phase::FaultProcessing => 4,
            Phase::EpochCompute => 5,
            Phase::BarrierWait => 6,
            Phase::MessageMerge => 7,
        }
    }
}

/// Per-phase accumulator. `calls`/`items`/sim window are deterministic;
/// `wall_ns` is wall clock and never serialized with results.
#[derive(Clone, Copy, Debug)]
struct PhaseAccum {
    calls: u64,
    items: u64,
    sim_first: f64,
    sim_last: f64,
    wall_ns: u64,
}

impl Default for PhaseAccum {
    fn default() -> Self {
        PhaseAccum {
            calls: 0,
            items: 0,
            sim_first: f64::INFINITY,
            sim_last: f64::NEG_INFINITY,
            wall_ns: 0,
        }
    }
}

impl PhaseAccum {
    fn is_touched(&self) -> bool {
        self.calls > 0 || self.items > 0 || self.sim_first.is_finite()
    }
}

/// Default bucket layout for barrier-wait histograms: 1 µs .. ~1.2 s,
/// ~26% relative resolution (milliseconds).
fn barrier_histogram() -> Histogram {
    Histogram::exponential(0.001, 1.26, 60)
}

#[derive(Debug, Default)]
struct ProfilerState {
    global: [PhaseAccum; PHASE_COUNT],
    /// Per-lane (shard rank) accumulators, keyed deterministically.
    lanes: BTreeMap<u32, [PhaseAccum; PHASE_COUNT]>,
    /// Per-lane barrier-wait histograms (milliseconds, wall clock).
    barrier: BTreeMap<u32, Histogram>,
}

/// Collects per-phase statistics for one run.
///
/// Thread-safe: shard workers record concurrently. Deterministic fields
/// commute under addition/min/max, so their totals are independent of
/// thread interleaving.
#[derive(Debug, Default)]
pub struct SpanProfiler {
    state: Mutex<ProfilerState>,
}

impl SpanProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, ProfilerState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Opens a wall-timed span for `phase`; the returned guard records the
    /// elapsed wall time (and one call) when dropped.
    pub fn enter(&self, phase: Phase) -> SpanGuard<'_> {
        SpanGuard {
            active: Some(GuardInner {
                profiler: self,
                phase,
                lane: None,
                // spider-lint: allow(wallclock-reachability) — opt-in profiler; wall time is the measurement, never simulation state
                start: Instant::now(),
            }),
        }
    }

    /// Like [`enter`](Self::enter), attributing the span to `lane`
    /// (a shard rank) as well as the global totals.
    pub fn enter_lane(&self, phase: Phase, lane: u32) -> SpanGuard<'_> {
        SpanGuard {
            active: Some(GuardInner {
                profiler: self,
                phase,
                lane: Some(lane),
                // spider-lint: allow(wallclock-reachability) — opt-in profiler; wall time is the measurement, never simulation state
                start: Instant::now(),
            }),
        }
    }

    /// Adds `n` processed items to `phase` (deterministic).
    pub fn add_items(&self, phase: Phase, n: u64) {
        if n == 0 {
            return;
        }
        self.lock().global[phase.index()].items += n;
    }

    /// Adds `n` processed items to `phase` for `lane` and globally.
    pub fn add_items_lane(&self, phase: Phase, lane: u32, n: u64) {
        if n == 0 {
            return;
        }
        let mut state = self.lock();
        state.global[phase.index()].items += n;
        state.lanes.entry(lane).or_default()[phase.index()].items += n;
    }

    /// Widens `phase`'s active sim-time window to include `t`
    /// (deterministic).
    pub fn mark_sim(&self, phase: Phase, t: f64) {
        let mut state = self.lock();
        let acc = &mut state.global[phase.index()];
        acc.sim_first = acc.sim_first.min(t);
        acc.sim_last = acc.sim_last.max(t);
    }

    fn record_wall(&self, phase: Phase, lane: Option<u32>, elapsed_ns: u64) {
        let mut state = self.lock();
        let acc = &mut state.global[phase.index()];
        acc.calls += 1;
        acc.wall_ns += elapsed_ns;
        if let Some(lane) = lane {
            let lacc = &mut state.lanes.entry(lane).or_default()[phase.index()];
            lacc.calls += 1;
            lacc.wall_ns += elapsed_ns;
            if phase == Phase::BarrierWait {
                state
                    .barrier
                    .entry(lane)
                    .or_insert_with(barrier_histogram)
                    .observe(elapsed_ns as f64 / 1.0e6);
            }
        }
    }

    /// Deterministic per-phase breakdown (no wall times). Only phases that
    /// recorded anything appear, in [`Phase::ALL`] order.
    pub fn phases(&self) -> Vec<PhaseProfile> {
        let state = self.lock();
        Phase::ALL
            .iter()
            .filter_map(|&phase| {
                let acc = state.global[phase.index()];
                if !acc.is_touched() {
                    return None;
                }
                Some(PhaseProfile {
                    phase: phase.name().to_string(),
                    parent: phase.parent().map(|p| p.name().to_string()),
                    calls: acc.calls,
                    items: acc.items,
                    sim_first: acc.sim_first.is_finite().then_some(acc.sim_first),
                    sim_last: acc.sim_last.is_finite().then_some(acc.sim_last),
                })
            })
            .collect()
    }

    /// Wall-clock per-phase breakdown (nondeterministic — keep it in
    /// timing-only output, the way the bench harness segregates `timing`).
    pub fn wall_phases(&self) -> Vec<PhaseWallStat> {
        let state = self.lock();
        Phase::ALL
            .iter()
            .filter_map(|&phase| {
                let acc = state.global[phase.index()];
                if acc.calls == 0 {
                    return None;
                }
                Some(PhaseWallStat {
                    phase: phase.name().to_string(),
                    calls: acc.calls,
                    wall_ms: acc.wall_ns as f64 / 1.0e6,
                })
            })
            .collect()
    }

    /// Lanes (shard ranks) that recorded any span, in rank order.
    pub fn lanes(&self) -> Vec<u32> {
        self.lock().lanes.keys().copied().collect()
    }

    /// Wall-clock breakdown for one lane.
    pub fn lane_wall_phases(&self, lane: u32) -> Vec<PhaseWallStat> {
        let state = self.lock();
        let Some(accs) = state.lanes.get(&lane) else {
            return Vec::new();
        };
        Phase::ALL
            .iter()
            .filter_map(|&phase| {
                let acc = accs[phase.index()];
                if acc.calls == 0 {
                    return None;
                }
                Some(PhaseWallStat {
                    phase: phase.name().to_string(),
                    calls: acc.calls,
                    wall_ms: acc.wall_ns as f64 / 1.0e6,
                })
            })
            .collect()
    }

    /// Snapshot of one lane's barrier-wait histogram (milliseconds of wall
    /// time per wait), if that lane ever hit a barrier.
    pub fn barrier_wait(&self, lane: u32) -> Option<HistogramSnapshot> {
        self.lock()
            .barrier
            .get(&lane)
            .map(|h| h.snapshot("shard.barrier_wait_ms", &lane.to_string()))
    }
}

struct GuardInner<'a> {
    profiler: &'a SpanProfiler,
    phase: Phase,
    lane: Option<u32>,
    start: Instant,
}

/// RAII span: created by [`SpanProfiler::enter`] (or the `Telemetry`
/// handle's span methods), records one call plus elapsed wall time on
/// drop. A guard holding `None` (profiling disabled) is a free no-op.
#[must_use = "a span guard records its phase when dropped"]
pub struct SpanGuard<'a> {
    active: Option<GuardInner<'a>>,
}

impl SpanGuard<'_> {
    /// A guard that records nothing — what disabled handles hand out.
    pub fn noop() -> Self {
        SpanGuard { active: None }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(inner) = self.active.take() {
            let elapsed = inner.start.elapsed();
            let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
            inner.profiler.record_wall(inner.phase, inner.lane, ns);
        }
    }
}

impl std::fmt::Debug for SpanGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("active", &self.active.is_some())
            .finish()
    }
}

/// Deterministic per-phase statistics, embedded in `TelemetrySummary`
/// when profiling is on. Contains **no wall-clock data** by construction.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Phase name (see [`Phase::name`]).
    pub phase: String,
    /// Enclosing phase name, when the phase nests (sharded engine).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub parent: Option<String>,
    /// Number of spans recorded for this phase.
    pub calls: u64,
    /// Items processed inside this phase (units, messages, events — as
    /// attributed by the engine).
    pub items: u64,
    /// Earliest sim time the phase was active at, if marked.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sim_first: Option<f64>,
    /// Latest sim time the phase was active at, if marked.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sim_last: Option<f64>,
}

/// Wall-clock per-phase statistics — nondeterministic, restricted to
/// timing-only sections (bench `timing`, stderr breakdowns).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseWallStat {
    /// Phase name (see [`Phase::name`]).
    pub phase: String,
    /// Number of spans recorded for this phase.
    pub calls: u64,
    /// Total wall time inside this phase, milliseconds (inclusive of
    /// nested child phases).
    pub wall_ms: f64,
}

/// Renders a wall-phase breakdown as an aligned text table, children
/// indented under their parents.
pub fn render_wall_breakdown(stats: &[PhaseWallStat]) -> String {
    // A phase only nests when its parent actually recorded spans: the
    // sequential engines run the sharded leaves (routing, dispatch, ...)
    // without an enclosing epoch_compute, and those must count as
    // top-level or every share would read 0%.
    let nested = |name: &str| {
        parent_of(name).is_some_and(|p| stats.iter().any(|s| s.phase == p.name() && s.calls > 0))
    };
    let total: f64 = stats
        .iter()
        .filter(|s| !nested(&s.phase))
        .map(|s| s.wall_ms)
        .sum();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>10} {:>12} {:>7}\n",
        "phase", "calls", "wall_ms", "share"
    ));
    for s in stats {
        let indent = if nested(&s.phase) { "  " } else { "" };
        let share = if total > 0.0 {
            100.0 * s.wall_ms / total
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<22} {:>10} {:>12.3} {:>6.1}%\n",
            format!("{indent}{}", s.phase),
            s.calls,
            s.wall_ms,
            share
        ));
    }
    out
}

fn parent_of(name: &str) -> Option<Phase> {
    Phase::ALL
        .iter()
        .find(|p| p.name() == name)
        .and_then(|p| p.parent())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_calls_and_wall() {
        let p = SpanProfiler::new();
        {
            let _g = p.enter(Phase::RoutingDecision);
        }
        {
            let _g = p.enter(Phase::RoutingDecision);
        }
        let phases = p.phases();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].phase, "routing_decision");
        assert_eq!(phases[0].calls, 2);
        let wall = p.wall_phases();
        assert_eq!(wall.len(), 1);
        assert_eq!(wall[0].calls, 2);
    }

    #[test]
    fn deterministic_fields_exclude_wall() {
        let p = SpanProfiler::new();
        {
            let _g = p.enter(Phase::UnitDispatch);
        }
        p.add_items(Phase::UnitDispatch, 5);
        p.mark_sim(Phase::UnitDispatch, 1.5);
        p.mark_sim(Phase::UnitDispatch, 0.5);
        let profile = &p.phases()[0];
        assert_eq!(profile.items, 5);
        assert_eq!(profile.sim_first, Some(0.5));
        assert_eq!(profile.sim_last, Some(1.5));
        // Serialized form carries no wall-clock field at all.
        let json = serde_json::to_string(profile).unwrap();
        assert!(
            !json.contains("wall"),
            "deterministic profile leaked wall time: {json}"
        );
    }

    #[test]
    fn lanes_track_barrier_histograms() {
        let p = SpanProfiler::new();
        {
            let _g = p.enter_lane(Phase::BarrierWait, 1);
        }
        {
            let _g = p.enter_lane(Phase::BarrierWait, 1);
        }
        {
            let _g = p.enter_lane(Phase::EpochCompute, 0);
        }
        assert_eq!(p.lanes(), vec![0, 1]);
        let hist = p.barrier_wait(1).unwrap();
        assert_eq!(hist.count, 2);
        assert!(p.barrier_wait(0).is_none());
        assert_eq!(p.lane_wall_phases(1).len(), 1);
    }

    #[test]
    fn noop_guard_is_inert() {
        let g = SpanGuard::noop();
        drop(g);
    }

    #[test]
    fn phase_order_and_parents_stable() {
        assert_eq!(Phase::ALL.len(), PHASE_COUNT);
        assert_eq!(Phase::RoutingDecision.parent(), Some(Phase::EpochCompute));
        assert_eq!(Phase::BarrierWait.parent(), None);
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.dedup();
        assert_eq!(names.len(), PHASE_COUNT);
    }

    #[test]
    fn breakdown_renders_shares() {
        let stats = vec![
            PhaseWallStat {
                phase: "epoch_compute".into(),
                calls: 4,
                wall_ms: 8.0,
            },
            PhaseWallStat {
                phase: "routing_decision".into(),
                calls: 10,
                wall_ms: 3.0,
            },
        ];
        let text = render_wall_breakdown(&stats);
        assert!(text.contains("epoch_compute"));
        assert!(text.contains("  routing_decision"));
        assert!(text.contains("100.0%"));
    }
}
