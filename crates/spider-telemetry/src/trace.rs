//! Typed payment-lifecycle trace events and the tracer that records them.
//!
//! Events carry **simulation timestamps only** — never wall-clock time — so
//! a trace is a pure function of the simulation inputs and serializes to
//! byte-identical JSONL regardless of host, load, or worker count.

use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// One structured telemetry event.
///
/// `t` is simulation time in seconds. Identifier fields are the raw indices
/// used by the engine (payment id, channel index, node index) so traces can
/// be joined against topology and workload dumps.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A payment arrived at its sender.
    PaymentArrived {
        /// Simulation time (seconds).
        t: f64,
        /// Payment id.
        payment: u64,
        /// Source node index.
        src: u32,
        /// Destination node index.
        dst: u32,
        /// Face value in tokens.
        amount: f64,
    },
    /// A packet-switched payment was split into MTU-bounded units.
    PaymentSplit {
        /// Simulation time (seconds).
        t: f64,
        /// Payment id.
        payment: u64,
        /// Planned unit count (`ceil(amount / mtu)`).
        units: u64,
    },
    /// One transaction unit was routed and locked along a path.
    UnitSent {
        /// Simulation time (seconds).
        t: f64,
        /// Payment id.
        payment: u64,
        /// Unit value in tokens.
        amount: f64,
        /// Hop count of the chosen path.
        hops: u32,
    },
    /// A unit settled end to end (receiver keeps the funds).
    UnitSettled {
        /// Simulation time (seconds).
        t: f64,
        /// Payment id.
        payment: u64,
        /// Unit value in tokens.
        amount: f64,
    },
    /// A unit's locks were refunded (expired HTLC, AMP bounce, rollback, or
    /// router-queue drop).
    UnitRefunded {
        /// Simulation time (seconds).
        t: f64,
        /// Payment id.
        payment: u64,
        /// Unit value in tokens.
        amount: f64,
    },
    /// A unit entered a router queue (router-queue transport only).
    UnitQueued {
        /// Simulation time (seconds).
        t: f64,
        /// Payment id.
        payment: u64,
        /// Channel index of the queueing direction.
        channel: u32,
        /// Queue depth after insertion.
        depth: u32,
    },
    /// A payment delivered its full value.
    PaymentCompleted {
        /// Simulation time (seconds).
        t: f64,
        /// Payment id.
        payment: u64,
        /// Completion delay since arrival (seconds).
        delay: f64,
    },
    /// A payment was abandoned (deadline, unroutable, or atomic failure).
    PaymentAbandoned {
        /// Simulation time (seconds).
        t: f64,
        /// Payment id.
        payment: u64,
        /// Value delivered before abandonment (tokens).
        delivered: f64,
    },
    /// An on-chain rebalancing transaction confirmed and moved funds.
    RebalanceApplied {
        /// Simulation time (seconds).
        t: f64,
        /// Channel index.
        channel: u32,
        /// Tokens withdrawn from the rich side.
        moved: f64,
        /// On-chain fee paid (tokens).
        fee: f64,
    },
    /// Periodic per-channel state sample.
    ChannelSample {
        /// Simulation time (seconds).
        t: f64,
        /// Channel index.
        channel: u32,
        /// Relative imbalance `|a - b| / (a + b)` of spendable balances.
        imbalance: f64,
        /// In-flight (locked) tokens on the channel.
        inflight: f64,
        /// Units waiting in this channel's router queues (both directions;
        /// zero for the source-queued engine).
        queue_depth: u32,
    },
    /// A channel went down (fault injection): its capacity is masked and
    /// in-flight units crossing it are refunded.
    ChannelOutage {
        /// Simulation time (seconds).
        t: f64,
        /// Channel index.
        channel: u32,
    },
    /// A downed channel came back up.
    ChannelRecovered {
        /// Simulation time (seconds).
        t: f64,
        /// Channel index.
        channel: u32,
    },
    /// A node crashed (fault injection): every incident channel goes down.
    NodeCrashed {
        /// Simulation time (seconds).
        t: f64,
        /// Node index.
        node: u32,
    },
    /// A crashed node rejoined the network.
    NodeRecovered {
        /// Simulation time (seconds).
        t: f64,
        /// Node index.
        node: u32,
    },
    /// A unit was dropped in flight by fault injection (its locks are
    /// refunded in a paired `UnitRefunded` event).
    UnitDropped {
        /// Simulation time (seconds).
        t: f64,
        /// Payment id.
        payment: u64,
        /// Unit value in tokens.
        amount: f64,
        /// Channel index of the hop blamed for the drop.
        channel: u32,
    },
    /// A unit's HTLC was griefed: funds stay pinned until the hold expires,
    /// then refund (paired `UnitRefunded`).
    UnitGriefed {
        /// Simulation time (seconds).
        t: f64,
        /// Payment id.
        payment: u64,
        /// Unit value in tokens.
        amount: f64,
        /// How long the funds were pinned (seconds).
        hold: f64,
    },
    /// A sender scheduled a retry after a fault failure (exponential
    /// backoff).
    PaymentRetry {
        /// Simulation time (seconds).
        t: f64,
        /// Payment id.
        payment: u64,
        /// Fault-failure count for this payment so far.
        attempt: u32,
        /// Backoff delay before the next send attempt (seconds).
        backoff: f64,
    },
    /// A sender blacklisted a channel after a fault failure on it.
    ChannelBlacklisted {
        /// Simulation time (seconds).
        t: f64,
        /// Channel index.
        channel: u32,
        /// Simulation time until which routing avoids the channel.
        until: f64,
    },
    /// Periodic solver progress sample (primal-dual iterations).
    SolverSample {
        /// Iteration number (1-based).
        iter: u64,
        /// Current objective value (total throughput).
        objective: f64,
        /// Convergence residual: smallest max-rate change seen in any sweep
        /// so far (non-increasing along a run).
        residual: f64,
        /// Mean capacity price λ across channels.
        mean_price: f64,
    },
}

impl TraceEvent {
    /// Stable kind string, used for per-kind counting and reconciliation.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::PaymentArrived { .. } => "payment_arrived",
            TraceEvent::PaymentSplit { .. } => "payment_split",
            TraceEvent::UnitSent { .. } => "unit_sent",
            TraceEvent::UnitSettled { .. } => "unit_settled",
            TraceEvent::UnitRefunded { .. } => "unit_refunded",
            TraceEvent::UnitQueued { .. } => "unit_queued",
            TraceEvent::PaymentCompleted { .. } => "payment_completed",
            TraceEvent::PaymentAbandoned { .. } => "payment_abandoned",
            TraceEvent::RebalanceApplied { .. } => "rebalance_applied",
            TraceEvent::ChannelSample { .. } => "channel_sample",
            TraceEvent::ChannelOutage { .. } => "channel_outage",
            TraceEvent::ChannelRecovered { .. } => "channel_recovered",
            TraceEvent::NodeCrashed { .. } => "node_crashed",
            TraceEvent::NodeRecovered { .. } => "node_recovered",
            TraceEvent::UnitDropped { .. } => "unit_dropped",
            TraceEvent::UnitGriefed { .. } => "unit_griefed",
            TraceEvent::PaymentRetry { .. } => "payment_retry",
            TraceEvent::ChannelBlacklisted { .. } => "channel_blacklisted",
            TraceEvent::SolverSample { .. } => "solver_sample",
        }
    }

    /// Simulation timestamp, for every timed event kind. Solver samples
    /// are iteration-indexed, not time-indexed, and return `None`.
    pub fn time(&self) -> Option<f64> {
        match *self {
            TraceEvent::PaymentArrived { t, .. }
            | TraceEvent::PaymentSplit { t, .. }
            | TraceEvent::UnitSent { t, .. }
            | TraceEvent::UnitSettled { t, .. }
            | TraceEvent::UnitRefunded { t, .. }
            | TraceEvent::UnitQueued { t, .. }
            | TraceEvent::PaymentCompleted { t, .. }
            | TraceEvent::PaymentAbandoned { t, .. }
            | TraceEvent::RebalanceApplied { t, .. }
            | TraceEvent::ChannelSample { t, .. }
            | TraceEvent::ChannelOutage { t, .. }
            | TraceEvent::ChannelRecovered { t, .. }
            | TraceEvent::NodeCrashed { t, .. }
            | TraceEvent::NodeRecovered { t, .. }
            | TraceEvent::UnitDropped { t, .. }
            | TraceEvent::UnitGriefed { t, .. }
            | TraceEvent::PaymentRetry { t, .. }
            | TraceEvent::ChannelBlacklisted { t, .. } => Some(t),
            TraceEvent::SolverSample { .. } => None,
        }
    }

    /// The channel index this event touches, if any.
    pub fn channel(&self) -> Option<u32> {
        match *self {
            TraceEvent::UnitQueued { channel, .. }
            | TraceEvent::RebalanceApplied { channel, .. }
            | TraceEvent::ChannelSample { channel, .. }
            | TraceEvent::ChannelOutage { channel, .. }
            | TraceEvent::ChannelRecovered { channel, .. }
            | TraceEvent::UnitDropped { channel, .. }
            | TraceEvent::ChannelBlacklisted { channel, .. } => Some(channel),
            _ => None,
        }
    }

    /// The node indices this event touches (up to two), if any.
    pub fn nodes(&self) -> (Option<u32>, Option<u32>) {
        match *self {
            TraceEvent::PaymentArrived { src, dst, .. } => (Some(src), Some(dst)),
            TraceEvent::NodeCrashed { node, .. } | TraceEvent::NodeRecovered { node, .. } => {
                (Some(node), None)
            }
            _ => (None, None),
        }
    }

    /// The payment id this event belongs to, if any.
    pub fn payment(&self) -> Option<u64> {
        match *self {
            TraceEvent::PaymentArrived { payment, .. }
            | TraceEvent::PaymentSplit { payment, .. }
            | TraceEvent::UnitSent { payment, .. }
            | TraceEvent::UnitSettled { payment, .. }
            | TraceEvent::UnitRefunded { payment, .. }
            | TraceEvent::UnitQueued { payment, .. }
            | TraceEvent::PaymentCompleted { payment, .. }
            | TraceEvent::PaymentAbandoned { payment, .. }
            | TraceEvent::UnitDropped { payment, .. }
            | TraceEvent::UnitGriefed { payment, .. }
            | TraceEvent::PaymentRetry { payment, .. } => Some(payment),
            _ => None,
        }
    }
}

/// Records [`TraceEvent`]s in arrival order.
///
/// Thread-safe so a tracer can be shared by a harness and its engine; within
/// one deterministic single-threaded simulation the order is exactly the
/// emission order.
#[derive(Debug, Default)]
pub struct Tracer {
    events: Mutex<Vec<TraceEvent>>,
}

impl Tracer {
    /// An empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the event log, recovering from a poisoned mutex: events
    /// written before another thread's panic are intact, and a trace cut
    /// short mid-crash is exactly when the recorded prefix matters most.
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<TraceEvent>> {
        match self.events.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Appends one event.
    pub fn record(&self, event: TraceEvent) {
        self.lock().push(event);
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of all events recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().clone()
    }

    /// Serializes all events as JSON Lines (one compact object per line,
    /// trailing newline when non-empty).
    pub fn to_jsonl(&self) -> String {
        events_to_jsonl(&self.lock())
    }
}

/// Serializes events as JSON Lines.
pub fn events_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("trace events serialize"));
        out.push('\n');
    }
    out
}

/// Parses a JSONL trace back into events.
///
/// Returns the 1-based line number and error message of the first malformed
/// line, if any. Blank lines are ignored.
pub fn parse_jsonl(input: &str) -> Result<Vec<TraceEvent>, (usize, String)> {
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<TraceEvent>(line) {
            Ok(e) => out.push(e),
            Err(err) => return Err((i + 1, format!("{err:?}"))),
        }
    }
    Ok(out)
}

/// Counts events per kind, sorted by kind name (deterministic).
pub fn count_by_kind(events: &[TraceEvent]) -> Vec<(String, u64)> {
    let mut counts: std::collections::BTreeMap<&'static str, u64> = Default::default();
    for e in events {
        *counts.entry(e.kind()).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::PaymentArrived {
                t: 0.1,
                payment: 7,
                src: 0,
                dst: 2,
                amount: 30.0,
            },
            TraceEvent::UnitSent {
                t: 0.1,
                payment: 7,
                amount: 10.0,
                hops: 2,
            },
            TraceEvent::UnitSettled {
                t: 0.6,
                payment: 7,
                amount: 10.0,
            },
            TraceEvent::PaymentCompleted {
                t: 0.6,
                payment: 7,
                delay: 0.5,
            },
            TraceEvent::ChannelSample {
                t: 1.0,
                channel: 0,
                imbalance: 0.25,
                inflight: 20.0,
                queue_depth: 0,
            },
        ]
    }

    #[test]
    fn jsonl_round_trip() {
        let events = sample_events();
        let jsonl = events_to_jsonl(&events);
        assert_eq!(jsonl.lines().count(), events.len());
        let back = parse_jsonl(&jsonl).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn parse_rejects_garbage_with_line_number() {
        let mut jsonl = events_to_jsonl(&sample_events());
        jsonl.push_str("not json\n");
        let err = parse_jsonl(&jsonl).unwrap_err();
        assert_eq!(err.0, sample_events().len() + 1);
    }

    #[test]
    fn blank_lines_ignored() {
        let jsonl = format!("\n{}\n", events_to_jsonl(&sample_events()));
        assert_eq!(parse_jsonl(&jsonl).unwrap().len(), sample_events().len());
    }

    #[test]
    fn kind_counting() {
        let counts = count_by_kind(&sample_events());
        let get = |k: &str| {
            counts
                .iter()
                .find(|(name, _)| name == k)
                .map(|&(_, n)| n)
                .unwrap_or(0)
        };
        assert_eq!(get("payment_arrived"), 1);
        assert_eq!(get("unit_sent"), 1);
        assert_eq!(get("channel_sample"), 1);
        // Sorted by kind name.
        let names: Vec<&str> = counts.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn tracer_preserves_order() {
        let tracer = Tracer::new();
        for e in sample_events() {
            tracer.record(e);
        }
        assert_eq!(tracer.len(), 5);
        assert_eq!(tracer.events(), sample_events());
        assert_eq!(tracer.to_jsonl(), events_to_jsonl(&sample_events()));
    }
}
