//! Core types for the Spider payment channel network stack.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! - [`Amount`] — exact fixed-point currency arithmetic,
//! - [`NodeId`], [`ChannelId`], [`PaymentId`], [`UnitId`] — identifier
//!   newtypes,
//! - [`Network`] / [`Channel`] — the payment channel network graph `G(V,E)`,
//! - [`Path`] — validated trails through the network,
//! - [`DemandMatrix`] — the payment graph `H(V,E_H)` of desired rates,
//! - [`BalanceView`] — read access to live or initial channel balances.
//!
//! Everything here is deterministic and allocation-conscious; there is no
//! randomness and no I/O in this crate.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod amount;
pub mod binio;
pub mod dense;
pub mod error;
pub mod graph;
pub mod ids;
pub mod path;
pub mod payment_graph;

pub use amount::{Amount, MICROS_PER_TOKEN};
pub use binio::{crc32, BinError, Dec, Enc};
pub use dense::{ChannelSet, PairTable};
pub use error::CoreError;
pub use graph::{BalanceView, Channel, Network};
pub use ids::{ChannelId, Direction, NodeId, PaymentId, UnitId};
pub use path::Path;
pub use payment_graph::DemandMatrix;
