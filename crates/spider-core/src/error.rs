//! Error types shared across the workspace.

use crate::ids::{ChannelId, NodeId};
use std::fmt;

/// Errors produced by core graph and path operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// A node id referred to a node that does not exist in the network.
    UnknownNode(NodeId),
    /// A channel id referred to a channel that does not exist.
    UnknownChannel(ChannelId),
    /// No channel exists between the two given nodes.
    NoChannelBetween(NodeId, NodeId),
    /// The two endpoints of a channel must be distinct.
    SelfChannel(NodeId),
    /// A channel between these nodes already exists.
    DuplicateChannel(NodeId, NodeId),
    /// A path failed validation (too short, broken hop, repeated edge, ...).
    InvalidPath(String),
    /// A ledger operation would overdraw a channel balance.
    InsufficientFunds {
        /// The channel that lacks funds.
        channel: ChannelId,
        /// The node attempting to send.
        from: NodeId,
        /// Micro-units available.
        available: i64,
        /// Micro-units requested.
        requested: i64,
    },
    /// An amount was negative where a non-negative amount is required.
    NegativeAmount,
    /// A settle or refund would release more than a channel's recorded
    /// in-flight funds — a double-settle / double-refund in the caller.
    ExcessRelease {
        /// The channel whose in-flight pool would go negative.
        channel: ChannelId,
        /// Micro-units currently in flight.
        inflight: i64,
        /// Micro-units the caller tried to release.
        requested: i64,
    },
    /// A ledger operation named a node that is not an endpoint of the
    /// channel it addressed.
    NotAnEndpoint {
        /// The node that is not an endpoint.
        node: NodeId,
        /// The channel it was used with.
        channel: ChannelId,
    },
    /// An arithmetic operation on channel funds would overflow the
    /// fixed-point micro-token representation.
    Overflow {
        /// The channel whose balance or capacity would overflow.
        channel: ChannelId,
        /// The ledger operation that would overflow.
        op: &'static str,
    },
    /// An internal infrastructure invariant failed (serialization, worker
    /// bookkeeping, ...) — a bug, surfaced as a typed error instead of a
    /// panic.
    Internal(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownNode(n) => write!(f, "unknown node {n}"),
            CoreError::UnknownChannel(c) => write!(f, "unknown channel {c}"),
            CoreError::NoChannelBetween(a, b) => {
                write!(f, "no channel between {a} and {b}")
            }
            CoreError::SelfChannel(n) => {
                write!(f, "cannot open a channel from {n} to itself")
            }
            CoreError::DuplicateChannel(a, b) => {
                write!(f, "a channel between {a} and {b} already exists")
            }
            CoreError::InvalidPath(reason) => write!(f, "invalid path: {reason}"),
            CoreError::InsufficientFunds {
                channel,
                from,
                available,
                requested,
            } => write!(
                f,
                "insufficient funds on {channel} from {from}: have {available}µ, need {requested}µ"
            ),
            CoreError::NegativeAmount => write!(f, "amount must be non-negative"),
            CoreError::ExcessRelease {
                channel,
                inflight,
                requested,
            } => write!(
                f,
                "release exceeds inflight on {channel}: have {inflight}µ locked, tried to release {requested}µ"
            ),
            CoreError::NotAnEndpoint { node, channel } => {
                write!(f, "{node} is not an endpoint of {channel}")
            }
            CoreError::Overflow { channel, op } => {
                write!(f, "amount overflow on {channel} during {op}")
            }
            CoreError::Internal(what) => write!(f, "internal error: {what}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::NoChannelBetween(NodeId(1), NodeId(2));
        assert_eq!(e.to_string(), "no channel between n1 and n2");
        let e = CoreError::InsufficientFunds {
            channel: ChannelId(3),
            from: NodeId(0),
            available: 10,
            requested: 20,
        };
        assert!(e.to_string().contains("ch3"));
        assert!(e.to_string().contains("10µ"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&CoreError::NegativeAmount);
    }
}
