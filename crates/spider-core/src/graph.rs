//! The payment channel network graph `G(V, E)`.
//!
//! A [`Network`] is the static description of a PCN: its nodes, its
//! (undirected) payment channels, and each channel's *initial* balance split.
//! The discrete-event simulator keeps live balances separately; routing code
//! reads balances through the [`BalanceView`] trait so it works against
//! either the initial state or a live ledger.

use crate::amount::Amount;
use crate::error::CoreError;
use crate::ids::{ChannelId, Direction, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::OnceLock;

/// A bidirectional payment channel between nodes `a` and `b`.
///
/// The channel escrows `balance_a + balance_b` in total; `balance_a` is
/// spendable by endpoint `a`, `balance_b` by endpoint `b`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Channel {
    /// This channel's id (also its index in [`Network::channels`]).
    pub id: ChannelId,
    /// First endpoint. By convention `a < b`.
    pub a: NodeId,
    /// Second endpoint.
    pub b: NodeId,
    /// Initial funds spendable by `a`.
    pub balance_a: Amount,
    /// Initial funds spendable by `b`.
    pub balance_b: Amount,
}

impl Channel {
    /// Total escrowed funds (the channel "capacity" `c_e` of the paper).
    #[inline]
    pub fn capacity(&self) -> Amount {
        self.balance_a + self.balance_b
    }

    /// The endpoint opposite to `node`, or
    /// [`CoreError::NotAnEndpoint`] when `node` is neither endpoint.
    #[inline]
    pub fn try_other(&self, node: NodeId) -> Result<NodeId, CoreError> {
        if node == self.a {
            Ok(self.b)
        } else if node == self.b {
            Ok(self.a)
        } else {
            Err(CoreError::NotAnEndpoint {
                node,
                channel: self.id,
            })
        }
    }

    /// The endpoint opposite to `node`.
    ///
    /// # Panics
    /// Panics if `node` is not an endpoint of this channel; library code
    /// should prefer [`try_other`](Self::try_other).
    #[inline]
    pub fn other(&self, node: NodeId) -> NodeId {
        match self.try_other(node) {
            Ok(n) => n,
            Err(e) => panic!("{e}"),
        }
    }

    /// The direction of this channel when sending *from* `node`, or
    /// [`CoreError::NotAnEndpoint`] when `node` is neither endpoint.
    #[inline]
    pub fn try_direction_from(&self, node: NodeId) -> Result<Direction, CoreError> {
        if node == self.a {
            Ok(Direction::AtoB)
        } else if node == self.b {
            Ok(Direction::BtoA)
        } else {
            Err(CoreError::NotAnEndpoint {
                node,
                channel: self.id,
            })
        }
    }

    /// The direction of this channel when sending *from* `node`.
    ///
    /// # Panics
    /// Panics if `node` is not an endpoint of this channel; library code
    /// should prefer [`try_direction_from`](Self::try_direction_from).
    #[inline]
    pub fn direction_from(&self, node: NodeId) -> Direction {
        match self.try_direction_from(node) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// The initial balance spendable in the given direction.
    #[inline]
    pub fn balance_in(&self, dir: Direction) -> Amount {
        match dir {
            Direction::AtoB => self.balance_a,
            Direction::BtoA => self.balance_b,
        }
    }

    /// The sending endpoint for the given direction.
    #[inline]
    pub fn sender(&self, dir: Direction) -> NodeId {
        match dir {
            Direction::AtoB => self.a,
            Direction::BtoA => self.b,
        }
    }
}

/// Read access to per-direction spendable channel balances.
///
/// Implemented by [`Network`] (initial balances) and by the simulator's live
/// ledger, so routing schemes can be written once against this trait.
pub trait BalanceView {
    /// Funds currently spendable on `channel` when sending from `from`.
    fn available(&self, channel: ChannelId, from: NodeId) -> Amount;

    /// Funds spendable on a hop whose crossing direction is already known —
    /// `(from, dir)` must come from a validated [`crate::Path`] hop. Views
    /// backed by per-side state override this to skip the endpoint lookup
    /// that [`available`](BalanceView::available) needs; the default simply
    /// delegates.
    fn available_dir(&self, channel: ChannelId, from: NodeId, dir: Direction) -> Amount {
        let _ = dir;
        self.available(channel, from)
    }
}

/// Prebuilt CSR (compressed sparse row) adjacency: all `(neighbor, channel)`
/// pairs in one contiguous slab, with per-node offsets. Node `u`'s neighbors
/// are `entries[offsets[u] .. offsets[u + 1]]`, in channel-id order — the
/// same deterministic order incremental insertion used to produce.
#[derive(Clone, Debug, Default)]
struct CsrAdjacency {
    offsets: Vec<u32>,
    entries: Vec<(NodeId, ChannelId)>,
}

impl CsrAdjacency {
    fn build(num_nodes: usize, channels: &[Channel]) -> Self {
        let mut offsets = vec![0u32; num_nodes + 1];
        for c in channels {
            offsets[c.a.index() + 1] += 1;
            offsets[c.b.index() + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        // Fill in channel-id order; `cursor` tracks each node's next free
        // slot, so per-node neighbor order is channel-id order.
        let mut cursor = offsets.clone();
        let mut entries = vec![(NodeId(0), ChannelId(0)); 2 * channels.len()];
        for c in channels {
            let ia = cursor[c.a.index()] as usize;
            entries[ia] = (c.b, c.id);
            cursor[c.a.index()] += 1;
            let ib = cursor[c.b.index()] as usize;
            entries[ib] = (c.a, c.id);
            cursor[c.b.index()] += 1;
        }
        CsrAdjacency { offsets, entries }
    }

    #[inline]
    fn neighbors(&self, node: NodeId) -> &[(NodeId, ChannelId)] {
        let lo = self.offsets[node.index()] as usize;
        let hi = self.offsets[node.index() + 1] as usize;
        &self.entries[lo..hi]
    }
}

/// The static payment channel network topology.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Network {
    channels: Vec<Channel>,
    num_nodes: usize,
    /// lookup from a normalized `(min, max)` node pair to the channel id.
    #[serde(skip)]
    pair_index: HashMap<(NodeId, NodeId), ChannelId>,
    /// Dense adjacency, built lazily on first traversal and dropped on any
    /// mutation; purely derived from `channels`, so it is skipped by serde
    /// and rebuilt identically after a round trip.
    #[serde(skip)]
    csr: OnceLock<CsrAdjacency>,
}

impl Network {
    /// Creates an empty network with `n` nodes and no channels.
    pub fn new(n: usize) -> Self {
        Network {
            channels: Vec::new(),
            num_nodes: n,
            pair_index: HashMap::new(),
            csr: OnceLock::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The prebuilt CSR adjacency, building it on first use.
    #[inline]
    fn csr(&self) -> &CsrAdjacency {
        self.csr
            .get_or_init(|| CsrAdjacency::build(self.num_nodes, &self.channels))
    }

    /// Number of channels.
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes as u32).map(NodeId)
    }

    /// All channels.
    #[inline]
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Appends a new node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.num_nodes += 1;
        self.csr.take();
        NodeId((self.num_nodes - 1) as u32)
    }

    /// Opens a channel between `a` and `b` with the total `capacity` split
    /// evenly between the two endpoints (the paper's evaluation setup).
    pub fn add_channel(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: Amount,
    ) -> Result<ChannelId, CoreError> {
        let half = capacity / 2;
        self.add_channel_with_balances(a, b, half, capacity - half)
    }

    /// Opens a channel with an explicit balance on each side.
    pub fn add_channel_with_balances(
        &mut self,
        a: NodeId,
        b: NodeId,
        balance_a: Amount,
        balance_b: Amount,
    ) -> Result<ChannelId, CoreError> {
        if a.index() >= self.num_nodes() {
            return Err(CoreError::UnknownNode(a));
        }
        if b.index() >= self.num_nodes() {
            return Err(CoreError::UnknownNode(b));
        }
        if a == b {
            return Err(CoreError::SelfChannel(a));
        }
        if balance_a.is_negative() || balance_b.is_negative() {
            return Err(CoreError::NegativeAmount);
        }
        let key = normalize(a, b);
        if self.pair_index.contains_key(&key) {
            return Err(CoreError::DuplicateChannel(a, b));
        }
        // Store endpoints in normalized order so (a, balance_a) always refers
        // to the smaller node id regardless of argument order.
        let (lo, hi) = key;
        let (bal_lo, bal_hi) = if a == lo {
            (balance_a, balance_b)
        } else {
            (balance_b, balance_a)
        };
        let id = ChannelId(self.channels.len() as u32);
        self.channels.push(Channel {
            id,
            a: lo,
            b: hi,
            balance_a: bal_lo,
            balance_b: bal_hi,
        });
        self.pair_index.insert(key, id);
        self.csr.take();
        Ok(id)
    }

    /// The channel with the given id.
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.index()]
    }

    /// The channel between `a` and `b`, if one exists.
    pub fn channel_between(&self, a: NodeId, b: NodeId) -> Option<&Channel> {
        self.pair_index
            .get(&normalize(a, b))
            .map(|&id| &self.channels[id.index()])
    }

    /// `(neighbor, channel)` pairs adjacent to `node`, as one contiguous
    /// CSR slice in channel-id order.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, ChannelId)] {
        self.csr().neighbors(node)
    }

    /// Degree of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.neighbors(node).len()
    }

    /// Total funds escrowed across all channels.
    pub fn total_capacity(&self) -> Amount {
        self.channels.iter().map(|c| c.capacity()).sum()
    }

    /// `true` if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &(v, _) in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Hop distances from `src` to every node via BFS (`u32::MAX` where
    /// unreachable).
    pub fn bfs_distances(&self, src: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.num_nodes()];
        dist[src.index()] = 0;
        let mut queue = std::collections::VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in self.neighbors(u) {
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Rebuilds the `(pair -> channel)` index; call after deserializing.
    pub fn rebuild_index(&mut self) {
        self.pair_index = self
            .channels
            .iter()
            .map(|c| (normalize(c.a, c.b), c.id))
            .collect();
    }
}

impl BalanceView for Network {
    fn available(&self, channel: ChannelId, from: NodeId) -> Amount {
        let c = self.channel(channel);
        match c.try_direction_from(from) {
            Ok(dir) => c.balance_in(dir),
            // A non-endpoint can never spend on this channel.
            Err(_) => Amount::ZERO,
        }
    }

    fn available_dir(&self, channel: ChannelId, from: NodeId, dir: Direction) -> Amount {
        let c = self.channel(channel);
        debug_assert_eq!(c.try_direction_from(from), Ok(dir));
        c.balance_in(dir)
    }
}

#[inline]
fn normalize(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Network {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(10))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(2), Amount::from_whole(20))
            .unwrap();
        g.add_channel(NodeId(2), NodeId(0), Amount::from_whole(30))
            .unwrap();
        g
    }

    #[test]
    fn build_and_query() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_channels(), 3);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert!(g.is_connected());
        assert_eq!(g.total_capacity(), Amount::from_whole(60));
    }

    #[test]
    fn channel_balances_split_evenly() {
        let g = triangle();
        let c = g.channel_between(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(c.balance_a, Amount::from_whole(5));
        assert_eq!(c.balance_b, Amount::from_whole(5));
        assert_eq!(c.capacity(), Amount::from_whole(10));
    }

    #[test]
    fn channel_between_is_order_independent() {
        let g = triangle();
        let c1 = g.channel_between(NodeId(0), NodeId(2)).unwrap();
        let c2 = g.channel_between(NodeId(2), NodeId(0)).unwrap();
        assert_eq!(c1.id, c2.id);
        assert!(g.channel_between(NodeId(0), NodeId(0)).is_none());
    }

    #[test]
    fn endpoints_normalized() {
        let mut g = Network::new(2);
        // Add with arguments in "reverse" order and uneven balances.
        let id = g
            .add_channel_with_balances(
                NodeId(1),
                NodeId(0),
                Amount::from_whole(7),
                Amount::from_whole(3),
            )
            .unwrap();
        let c = g.channel(id);
        assert_eq!((c.a, c.b), (NodeId(0), NodeId(1)));
        // Node 1 supplied 7, so balance on node-1's side must be 7.
        assert_eq!(
            c.balance_in(c.direction_from(NodeId(1))),
            Amount::from_whole(7)
        );
        assert_eq!(
            c.balance_in(c.direction_from(NodeId(0))),
            Amount::from_whole(3)
        );
    }

    #[test]
    fn rejects_invalid_channels() {
        let mut g = Network::new(2);
        assert_eq!(
            g.add_channel(NodeId(0), NodeId(0), Amount::ONE),
            Err(CoreError::SelfChannel(NodeId(0)))
        );
        assert_eq!(
            g.add_channel(NodeId(0), NodeId(5), Amount::ONE),
            Err(CoreError::UnknownNode(NodeId(5)))
        );
        g.add_channel(NodeId(0), NodeId(1), Amount::ONE).unwrap();
        assert_eq!(
            g.add_channel(NodeId(1), NodeId(0), Amount::ONE),
            Err(CoreError::DuplicateChannel(NodeId(1), NodeId(0)))
        );
        assert_eq!(
            g.add_channel_with_balances(NodeId(0), NodeId(1), -Amount::ONE, Amount::ONE),
            Err(CoreError::NegativeAmount)
        );
    }

    #[test]
    fn channel_direction_helpers() {
        let g = triangle();
        let c = g.channel_between(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(c.other(NodeId(0)), NodeId(1));
        assert_eq!(c.direction_from(NodeId(0)), Direction::AtoB);
        assert_eq!(c.direction_from(NodeId(1)), Direction::BtoA);
        assert_eq!(c.sender(Direction::AtoB), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_non_endpoint() {
        let g = triangle();
        let c = g.channel_between(NodeId(0), NodeId(1)).unwrap();
        let _ = c.other(NodeId(2));
    }

    #[test]
    fn disconnected_detection() {
        let mut g = Network::new(4);
        g.add_channel(NodeId(0), NodeId(1), Amount::ONE).unwrap();
        g.add_channel(NodeId(2), NodeId(3), Amount::ONE).unwrap();
        assert!(!g.is_connected());
    }

    #[test]
    fn bfs_distances_computed() {
        let mut g = Network::new(4);
        g.add_channel(NodeId(0), NodeId(1), Amount::ONE).unwrap();
        g.add_channel(NodeId(1), NodeId(2), Amount::ONE).unwrap();
        let d = g.bfs_distances(NodeId(0));
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], 2);
        assert_eq!(d[3], u32::MAX);
    }

    #[test]
    fn network_implements_balance_view() {
        let g = triangle();
        let c = g.channel_between(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(g.available(c.id, NodeId(0)), Amount::from_whole(5));
    }

    #[test]
    fn add_node_extends_graph() {
        let mut g = triangle();
        let n = g.add_node();
        assert_eq!(n, NodeId(3));
        assert_eq!(g.num_nodes(), 4);
        assert!(!g.is_connected());
    }
}
