//! Identifier newtypes used throughout the workspace.
//!
//! All identifiers are small dense integers so they can index `Vec`-backed
//! tables directly; the newtypes prevent mixing a node index into a channel
//! table and vice versa.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node (router or end-host) in the payment channel network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's dense index, for table lookups.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An undirected payment channel between two nodes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// The channel's dense index, for table lookups.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ChannelId {
    fn from(v: u32) -> Self {
        ChannelId(v)
    }
}

impl From<usize> for ChannelId {
    fn from(v: usize) -> Self {
        ChannelId(v as u32)
    }
}

impl fmt::Debug for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// An application-level payment, possibly split into many transaction units.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PaymentId(pub u64);

impl fmt::Debug for PaymentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pay{}", self.0)
    }
}

impl fmt::Display for PaymentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pay{}", self.0)
    }
}

/// A single transaction unit (one "packet" of a payment).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UnitId {
    /// The payment this unit belongs to.
    pub payment: PaymentId,
    /// Sequence number of the unit within the payment.
    pub seq: u32,
}

impl fmt::Debug for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.payment, self.seq)
    }
}

/// A directed view of a channel: the direction `from -> to`.
///
/// Payment channels are undirected objects with one balance per endpoint; a
/// `Direction` selects which endpoint is sending.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Direction {
    /// From the channel's first endpoint (`a`) to its second (`b`).
    AtoB,
    /// From the channel's second endpoint (`b`) to its first (`a`).
    BtoA,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn reverse(self) -> Direction {
        match self {
            Direction::AtoB => Direction::BtoA,
            Direction::BtoA => Direction::AtoB,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let n: NodeId = 7u32.into();
        assert_eq!(n.index(), 7);
        assert_eq!(format!("{n}"), "n7");
        let m: NodeId = 9usize.into();
        assert_eq!(m, NodeId(9));
    }

    #[test]
    fn channel_id_round_trip() {
        let c: ChannelId = 3u32.into();
        assert_eq!(c.index(), 3);
        assert_eq!(format!("{c:?}"), "ch3");
    }

    #[test]
    fn unit_id_formats_with_payment() {
        let u = UnitId {
            payment: PaymentId(5),
            seq: 2,
        };
        assert_eq!(format!("{u:?}"), "pay5#2");
    }

    #[test]
    fn direction_reverse_is_involution() {
        assert_eq!(Direction::AtoB.reverse(), Direction::BtoA);
        assert_eq!(Direction::AtoB.reverse().reverse(), Direction::AtoB);
    }

    #[test]
    fn ids_order_by_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(PaymentId(10) > PaymentId(9));
    }
}
