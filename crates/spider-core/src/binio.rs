//! Minimal binary encode/decode helpers for snapshot and trace containers.
//!
//! Everything is little-endian and length-prefixed. Floats travel as raw
//! IEEE-754 bits (`f64::to_bits`), so non-finite values — `NaN` sentinels,
//! `±INFINITY` histogram extrema — round-trip exactly, which JSON cannot do.
//! Decoding never panics: every read is bounds-checked and returns a
//! [`BinError`] on truncated or malformed input, so a corrupt file surfaces
//! as a structured error in the caller.

use std::fmt;

/// A structured decode failure: truncated input or an invalid value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BinError {
    /// The input ended before the expected number of bytes.
    Truncated {
        /// Byte offset at which the read was attempted.
        offset: usize,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A decoded value was out of range or otherwise invalid.
    Invalid {
        /// Byte offset of the offending value.
        offset: usize,
        /// What was wrong.
        what: String,
    },
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::Truncated {
                offset,
                needed,
                remaining,
            } => write!(
                f,
                "truncated input at byte {offset}: needed {needed} bytes, {remaining} remain"
            ),
            BinError::Invalid { offset, what } => {
                write!(f, "invalid value at byte {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for BinError {}

/// An append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` (little-endian, two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its raw IEEE-754 bits. Non-finite values
    /// round-trip exactly.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends raw bytes with no length prefix (for containers that carry
    /// the length in their own header).
    pub fn bytes_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends a presence byte followed by the value when `Some`.
    pub fn opt(&mut self, v: Option<impl FnOnce(&mut Enc)>) {
        match v {
            Some(write) => {
                self.u8(1);
                write(self);
            }
            None => self.u8(0),
        }
    }

    /// Appends a length prefix followed by `write` per item.
    pub fn seq<T>(&mut self, items: &[T], mut write: impl FnMut(&mut Enc, &T)) {
        self.usize(items.len());
        for item in items {
            write(self, item);
        }
    }
}

/// A bounds-checked little-endian decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` once every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Fails with [`BinError::Invalid`] unless the input is fully consumed.
    pub fn expect_end(&self) -> Result<(), BinError> {
        if self.is_at_end() {
            Ok(())
        } else {
            Err(BinError::Invalid {
                offset: self.pos,
                what: format!("{} trailing bytes", self.remaining()),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.remaining() < n {
            return Err(BinError::Truncated {
                offset: self.pos,
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, BinError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, BinError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, BinError> {
        Ok(self.u64()? as i64)
    }

    /// Reads a `usize`, rejecting values that do not fit.
    pub fn usize(&mut self) -> Result<usize, BinError> {
        let offset = self.pos;
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| BinError::Invalid {
            offset,
            what: format!("length {v} exceeds usize"),
        })
    }

    /// Reads an `f64` from raw bits.
    pub fn f64(&mut self) -> Result<f64, BinError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool, rejecting bytes other than 0 and 1.
    pub fn bool(&mut self) -> Result<bool, BinError> {
        let offset = self.pos;
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(BinError::Invalid {
                offset,
                what: format!("bool byte {other}"),
            }),
        }
    }

    /// Reads a length-prefixed byte slice. The length is validated against
    /// the remaining input before any allocation, so a corrupt prefix
    /// cannot trigger a huge reservation.
    pub fn bytes(&mut self) -> Result<&'a [u8], BinError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Reads exactly `n` raw bytes (no length prefix), bounds-checked.
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, BinError> {
        let offset = self.pos;
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| BinError::Invalid {
            offset,
            what: "invalid UTF-8".to_string(),
        })
    }

    /// Reads an option encoded by [`Enc::opt`].
    pub fn opt<T>(
        &mut self,
        read: impl FnOnce(&mut Dec<'a>) -> Result<T, BinError>,
    ) -> Result<Option<T>, BinError> {
        let offset = self.pos;
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(read(self)?)),
            other => Err(BinError::Invalid {
                offset,
                what: format!("option tag {other}"),
            }),
        }
    }

    /// Reads a sequence encoded by [`Enc::seq`]. The element count is
    /// sanity-checked against the remaining bytes (at least one byte per
    /// element) before reserving, so corrupt lengths fail fast.
    pub fn seq<T>(
        &mut self,
        mut read: impl FnMut(&mut Dec<'a>) -> Result<T, BinError>,
    ) -> Result<Vec<T>, BinError> {
        let offset = self.pos;
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(BinError::Invalid {
                offset,
                what: format!(
                    "sequence length {n} exceeds {} remaining bytes",
                    self.remaining()
                ),
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(read(self)?);
        }
        Ok(out)
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
///
/// The same checksum `cksum`-family tools and zip implementations use; kept
/// here so snapshot sections can be validated without a new dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.i64(-42);
        e.f64(f64::NEG_INFINITY);
        e.f64(f64::NAN);
        e.bool(true);
        e.str("héllo");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap(), f64::NEG_INFINITY);
        assert!(d.f64().unwrap().is_nan());
        assert!(d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "héllo");
        assert!(d.is_at_end());
        d.expect_end().unwrap();
    }

    #[test]
    fn options_and_sequences_round_trip() {
        let mut e = Enc::new();
        e.opt(Some(|e: &mut Enc| e.u32(5)));
        e.opt(None::<fn(&mut Enc)>);
        e.seq(&[1u64, 2, 3], |e, &v| e.u64(v));
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.opt(|d| d.u32()).unwrap(), Some(5));
        assert_eq!(d.opt(|d| d.u32()).unwrap(), None);
        assert_eq!(d.seq(|d| d.u64()).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn truncation_is_a_structured_error_never_a_panic() {
        let mut e = Enc::new();
        e.u64(123);
        e.str("abcdef");
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            let r = d.u64().and_then(|_| d.str());
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn corrupt_lengths_fail_without_allocating() {
        // A huge length prefix with no bytes behind it.
        let mut e = Enc::new();
        e.u64(u64::MAX);
        let bytes = e.into_bytes();
        assert!(Dec::new(&bytes).bytes().is_err());
        assert!(Dec::new(&bytes).seq(|d| d.u8()).is_err());
    }

    #[test]
    fn invalid_tags_are_rejected() {
        assert!(Dec::new(&[2]).bool().is_err());
        assert!(Dec::new(&[9]).opt(|d| d.u8()).is_err());
        let mut bad_utf8 = Enc::new();
        bad_utf8.bytes(&[0xFF, 0xFE]);
        assert!(Dec::new(&bad_utf8.into_bytes()).str().is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }
}
