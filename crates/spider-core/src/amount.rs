//! Fixed-point currency arithmetic.
//!
//! All money in the simulator is represented as an [`Amount`]: a signed count
//! of *micro-units* (10⁻⁶ of one token, e.g. one XRP). Using integers instead
//! of `f64` makes conservation-of-funds an exact invariant — every unit that
//! leaves one side of a payment channel arrives on the other side, with no
//! rounding drift over millions of simulated transfers.
//!
//! Optimization code (LP solvers, fluid models) works in `f64` and converts
//! at the boundary via [`Amount::from_tokens`] / [`Amount::as_tokens`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Number of micro-units per whole token.
pub const MICROS_PER_TOKEN: i64 = 1_000_000;

/// A signed, fixed-point amount of currency, stored in micro-units.
///
/// `Amount` supports exact addition and subtraction. Multiplication by a
/// scalar ratio rounds to the nearest micro-unit. Arithmetic panics on
/// overflow in debug builds (like native integer math); use the `checked_*`
/// methods where overflow is a reachable condition.
///
/// ```
/// use spider_core::Amount;
/// let a = Amount::from_tokens(1.5);
/// let b = Amount::from_tokens(0.25);
/// assert_eq!((a + b).as_tokens(), 1.75);
/// assert_eq!(a.micros(), 1_500_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Amount(i64);

impl Amount {
    /// Zero tokens.
    pub const ZERO: Amount = Amount(0);
    /// The largest representable amount.
    pub const MAX: Amount = Amount(i64::MAX);
    /// The smallest (most negative) representable amount.
    pub const MIN: Amount = Amount(i64::MIN);
    /// One whole token.
    pub const ONE: Amount = Amount(MICROS_PER_TOKEN);

    /// Creates an amount from a raw count of micro-units.
    #[inline]
    pub const fn from_micros(micros: i64) -> Self {
        Amount(micros)
    }

    /// Creates an amount from a whole number of tokens.
    #[inline]
    pub const fn from_whole(tokens: i64) -> Self {
        Amount(tokens * MICROS_PER_TOKEN)
    }

    /// Creates an amount from a fractional token value, rounding to the
    /// nearest micro-unit.
    ///
    /// # Panics
    /// Panics if `tokens` is not finite or is out of the representable range.
    #[inline]
    pub fn from_tokens(tokens: f64) -> Self {
        assert!(
            tokens.is_finite(),
            "Amount::from_tokens({tokens}): not finite"
        );
        let micros = (tokens * MICROS_PER_TOKEN as f64).round();
        assert!(
            in_i64_range(micros),
            "Amount::from_tokens({tokens}): out of range"
        );
        Amount(micros as i64)
    }

    /// Checked variant of [`from_tokens`](Self::from_tokens): `None` when
    /// `tokens` is non-finite or the rounded micro-unit count does not fit
    /// in `i64`.
    #[inline]
    pub fn checked_from_tokens(tokens: f64) -> Option<Self> {
        if !tokens.is_finite() {
            return None;
        }
        let micros = (tokens * MICROS_PER_TOKEN as f64).round();
        in_i64_range(micros).then_some(Amount(micros as i64))
    }

    /// The raw micro-unit count.
    #[inline]
    pub const fn micros(self) -> i64 {
        self.0
    }

    /// The value in whole tokens as a float (lossy for huge amounts).
    #[inline]
    pub fn as_tokens(self) -> f64 {
        self.0 as f64 / MICROS_PER_TOKEN as f64
    }

    /// `true` if this amount is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `true` if this amount is strictly positive.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// `true` if this amount is strictly negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Absolute value.
    #[inline]
    pub const fn abs(self) -> Self {
        Amount(self.0.abs())
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Amount) -> Option<Amount> {
        self.0.checked_add(rhs.0).map(Amount)
    }

    /// Checked subtraction; `None` on overflow.
    #[inline]
    pub fn checked_sub(self, rhs: Amount) -> Option<Amount> {
        self.0.checked_sub(rhs.0).map(Amount)
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Amount) -> Amount {
        Amount(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Amount) -> Amount {
        Amount(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by a non-negative ratio, rounding to the nearest micro-unit.
    ///
    /// # Panics
    /// Panics if `ratio` is not finite or the result overflows.
    #[inline]
    pub fn scale(self, ratio: f64) -> Amount {
        assert!(ratio.is_finite(), "Amount::scale({ratio}): not finite");
        let scaled = (self.0 as f64 * ratio).round();
        assert!(in_i64_range(scaled), "Amount::scale: overflow");
        Amount(scaled as i64)
    }

    /// The smaller of two amounts.
    #[inline]
    pub fn min(self, other: Amount) -> Amount {
        Amount(self.0.min(other.0))
    }

    /// The larger of two amounts.
    #[inline]
    pub fn max(self, other: Amount) -> Amount {
        Amount(self.0.max(other.0))
    }

    /// Clamps to `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Amount, hi: Amount) -> Amount {
        Amount(self.0.clamp(lo.0, hi.0))
    }

    /// The ratio `self / other` as a float; `0.0` when `other` is zero.
    #[inline]
    pub fn ratio_of(self, other: Amount) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

/// `true` iff the (integral) float `v` fits in `i64` exactly.
///
/// The naive bound `v <= i64::MAX as f64` is itself lossy: `i64::MAX`
/// (2⁶³ − 1) is not representable in `f64` — the nearest values are
/// 2⁶³ − 1024 and 2⁶³ — so the comparison accepts 2⁶³, which an `as` cast
/// then silently saturates to `i64::MAX`. The valid range is exactly
/// `[-2⁶³, 2⁶³)`; both endpoints are representable, so the check is exact.
/// (NaN fails both comparisons and is rejected.)
#[inline]
fn in_i64_range(v: f64) -> bool {
    const TWO_63: f64 = 9_223_372_036_854_775_808.0; // 2^63, exactly representable
    (-TWO_63..TWO_63).contains(&v)
}

impl Add for Amount {
    type Output = Amount;
    #[inline]
    fn add(self, rhs: Amount) -> Amount {
        Amount(self.0 + rhs.0)
    }
}

impl AddAssign for Amount {
    #[inline]
    fn add_assign(&mut self, rhs: Amount) {
        self.0 += rhs.0;
    }
}

impl Sub for Amount {
    type Output = Amount;
    #[inline]
    fn sub(self, rhs: Amount) -> Amount {
        Amount(self.0 - rhs.0)
    }
}

impl SubAssign for Amount {
    #[inline]
    fn sub_assign(&mut self, rhs: Amount) {
        self.0 -= rhs.0;
    }
}

impl Neg for Amount {
    type Output = Amount;
    #[inline]
    fn neg(self) -> Amount {
        Amount(-self.0)
    }
}

impl Mul<i64> for Amount {
    type Output = Amount;
    #[inline]
    fn mul(self, rhs: i64) -> Amount {
        Amount(self.0 * rhs)
    }
}

impl Div<i64> for Amount {
    type Output = Amount;
    #[inline]
    fn div(self, rhs: i64) -> Amount {
        Amount(self.0 / rhs)
    }
}

impl Sum for Amount {
    fn sum<I: Iterator<Item = Amount>>(iter: I) -> Amount {
        iter.fold(Amount::ZERO, |acc, a| acc + a)
    }
}

impl<'a> Sum<&'a Amount> for Amount {
    fn sum<I: Iterator<Item = &'a Amount>>(iter: I) -> Amount {
        iter.fold(Amount::ZERO, |acc, a| acc + *a)
    }
}

impl fmt::Debug for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Amount({})", self)
    }
}

impl fmt::Display for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let whole = self.0 / MICROS_PER_TOKEN;
        let frac = (self.0 % MICROS_PER_TOKEN).abs();
        if frac == 0 {
            write!(f, "{whole}")
        } else {
            let sign = if self.0 < 0 && whole == 0 { "-" } else { "" };
            let mut s = format!("{:06}", frac);
            while s.ends_with('0') {
                s.pop();
            }
            write!(f, "{sign}{whole}.{s}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(Amount::from_whole(3).micros(), 3_000_000);
        assert_eq!(Amount::from_tokens(2.5).micros(), 2_500_000);
        assert_eq!(Amount::from_micros(42).micros(), 42);
        assert_eq!(Amount::from_tokens(-1.25).as_tokens(), -1.25);
    }

    #[test]
    fn basic_arithmetic() {
        let a = Amount::from_whole(5);
        let b = Amount::from_whole(2);
        assert_eq!(a + b, Amount::from_whole(7));
        assert_eq!(a - b, Amount::from_whole(3));
        assert_eq!(-a, Amount::from_whole(-5));
        assert_eq!(a * 3, Amount::from_whole(15));
        assert_eq!(a / 2, Amount::from_tokens(2.5));
    }

    #[test]
    fn predicates() {
        assert!(Amount::ZERO.is_zero());
        assert!(Amount::ONE.is_positive());
        assert!((-Amount::ONE).is_negative());
        assert!(!Amount::ZERO.is_positive());
        assert_eq!((-Amount::ONE).abs(), Amount::ONE);
    }

    #[test]
    fn min_max_clamp() {
        let a = Amount::from_whole(1);
        let b = Amount::from_whole(9);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Amount::from_whole(20).clamp(a, b), b);
        assert_eq!(Amount::from_whole(-3).clamp(a, b), a);
    }

    #[test]
    fn checked_and_saturating() {
        assert_eq!(Amount::MAX.checked_add(Amount::ONE), None);
        assert_eq!(Amount::MIN.checked_sub(Amount::ONE), None);
        assert_eq!(Amount::MAX.saturating_add(Amount::ONE), Amount::MAX);
        assert_eq!(
            Amount::from_whole(1).checked_add(Amount::from_whole(2)),
            Some(Amount::from_whole(3))
        );
    }

    #[test]
    fn scale_rounds_to_nearest() {
        let a = Amount::from_micros(10);
        assert_eq!(a.scale(0.25).micros(), 3); // 2.5 rounds to 3 (round half away from zero)
        assert_eq!(a.scale(0.5).micros(), 5);
        assert_eq!(Amount::from_whole(100).scale(0.1), Amount::from_whole(10));
    }

    #[test]
    fn ratio_of_handles_zero() {
        assert_eq!(Amount::ONE.ratio_of(Amount::ZERO), 0.0);
        assert_eq!(Amount::from_whole(1).ratio_of(Amount::from_whole(4)), 0.25);
    }

    #[test]
    fn sum_iterator() {
        let v = vec![
            Amount::from_whole(1),
            Amount::from_whole(2),
            Amount::from_whole(3),
        ];
        let s: Amount = v.iter().sum();
        assert_eq!(s, Amount::from_whole(6));
        let s2: Amount = v.into_iter().sum();
        assert_eq!(s2, Amount::from_whole(6));
    }

    #[test]
    fn display_formatting() {
        assert_eq!(Amount::from_whole(3).to_string(), "3");
        assert_eq!(Amount::from_tokens(2.5).to_string(), "2.5");
        assert_eq!(Amount::from_micros(1).to_string(), "0.000001");
        assert_eq!(Amount::from_tokens(-0.5).to_string(), "-0.5");
        assert_eq!(Amount::from_tokens(-1.5).to_string(), "-1.5");
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn from_tokens_rejects_nan() {
        let _ = Amount::from_tokens(f64::NAN);
    }

    #[test]
    fn micros_range_check_is_exact_at_i64_boundaries() {
        const TWO_63: f64 = 9_223_372_036_854_775_808.0;
        // 2^63 micros is representable in f64 but NOT in i64. The old bound
        // `micros <= i64::MAX as f64` compared against 2^63 and accepted it,
        // after which the `as` cast silently saturated to i64::MAX. This is
        // the bug the money-safety lint exists to prevent.
        assert!(!in_i64_range(TWO_63));
        // The largest f64 below 2^63 is 2^63 - 1024: valid, casts exactly.
        assert!(in_i64_range(TWO_63 - 1024.0));
        assert_eq!((TWO_63 - 1024.0) as i64, i64::MAX - 1023);
        // -2^63 == i64::MIN is representable and valid...
        assert!(in_i64_range(-TWO_63));
        assert_eq!((-TWO_63) as i64, i64::MIN);
        // ...but the next f64 below it (-(2^63 + 2048)) is not.
        assert!(!in_i64_range(-(TWO_63 + 2048.0)));
        assert!(!in_i64_range(f64::NAN));
        assert!(!in_i64_range(f64::INFINITY));
    }

    #[test]
    fn checked_from_tokens_round_trips_at_i64_edges() {
        // Largest token value whose micros stay strictly below 2^63. The
        // f64 product rounds to the nearest representable value (ULP is
        // 1024 micros at this magnitude); what matters is that it is
        // accepted and lands within one ULP, not saturated.
        let a = Amount::checked_from_tokens(9_223_372_036_854.0).expect("in range");
        assert!((a.micros() - 9_223_372_036_854_000_000).abs() <= 1024);
        // The negative edge: ~-2^63 / 10^6 tokens lands within two ULPs of
        // i64::MIN without being rejected or saturated past it.
        let lo = Amount::checked_from_tokens(-9_223_372_036_854.775).expect("in range");
        assert!(lo.micros() <= i64::MIN + 2048, "{}", lo.micros());
        // Clearly out of range / non-finite inputs are rejected, not
        // silently saturated.
        assert_eq!(Amount::checked_from_tokens(1e19), None);
        assert_eq!(Amount::checked_from_tokens(-1e19), None);
        assert_eq!(Amount::checked_from_tokens(f64::NAN), None);
        assert_eq!(Amount::checked_from_tokens(f64::NEG_INFINITY), None);
        assert_eq!(
            Amount::checked_from_tokens(1.5),
            Some(Amount::from_micros(1_500_000))
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_tokens_panics_instead_of_saturating() {
        // 9_223_372_036_855 tokens = 2^63 + ~2.2e5 micros: over the line.
        // Pre-fix this could silently saturate; now it must panic.
        let _ = Amount::from_tokens(9_223_372_036_855.0);
    }

    proptest! {
        #[test]
        fn prop_add_sub_inverse(a in -1_000_000_000_000i64..1_000_000_000_000i64,
                                b in -1_000_000_000_000i64..1_000_000_000_000i64) {
            let x = Amount::from_micros(a);
            let y = Amount::from_micros(b);
            prop_assert_eq!(x + y - y, x);
        }

        #[test]
        fn prop_tokens_round_trip(a in -1_000_000_000i64..1_000_000_000i64) {
            let x = Amount::from_micros(a);
            prop_assert_eq!(Amount::from_tokens(x.as_tokens()), x);
        }

        #[test]
        fn prop_ordering_consistent(a in any::<i32>(), b in any::<i32>()) {
            let x = Amount::from_micros(a as i64);
            let y = Amount::from_micros(b as i64);
            prop_assert_eq!(x < y, a < b);
        }

        #[test]
        fn prop_scale_identity(a in -1_000_000_000i64..1_000_000_000i64) {
            let x = Amount::from_micros(a);
            prop_assert_eq!(x.scale(1.0), x);
        }
    }
}
