//! Paths ("trails") through the payment channel network.
//!
//! The paper's path sets `P_ij` contain *trails*: walks that never repeat an
//! edge (repeating nodes is permitted). [`Path`] enforces this at
//! construction time against a concrete [`Network`].

use crate::dense::ChannelSet;
use crate::error::CoreError;
use crate::graph::Network;
use crate::ids::{ChannelId, Direction, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated trail through the network: a sequence of at least two nodes
/// where each consecutive pair shares a channel and no channel repeats.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    nodes: Vec<NodeId>,
    /// One `(channel, direction)` per hop; same length as `nodes.len() - 1`.
    hops: Vec<(ChannelId, Direction)>,
}

impl Path {
    /// Validates `nodes` as a trail in `network` and builds the hop list.
    pub fn new(network: &Network, nodes: Vec<NodeId>) -> Result<Path, CoreError> {
        if nodes.len() < 2 {
            return Err(CoreError::InvalidPath(format!(
                "a path needs at least 2 nodes, got {}",
                nodes.len()
            )));
        }
        let mut hops = Vec::with_capacity(nodes.len() - 1);
        let mut used = ChannelSet::new();
        for w in nodes.windows(2) {
            let (u, v) = (w[0], w[1]);
            let channel = network
                .channel_between(u, v)
                .ok_or(CoreError::NoChannelBetween(u, v))?;
            if !used.insert(channel.id) {
                return Err(CoreError::InvalidPath(format!(
                    "channel {} repeats (paths must be trails)",
                    channel.id
                )));
            }
            hops.push((channel.id, channel.try_direction_from(u)?));
        }
        Ok(Path { nodes, hops })
    }

    /// The node sequence.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The `(channel, direction)` sequence, one entry per hop.
    #[inline]
    pub fn hops(&self) -> &[(ChannelId, Direction)] {
        &self.hops
    }

    /// Source node.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Destination node.
    #[inline]
    pub fn dest(&self) -> NodeId {
        // A constructed Path always has >= 2 nodes.
        self.nodes[self.nodes.len() - 1]
    }

    /// Number of hops (edges).
    #[inline]
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Always `false`: a valid path has at least one hop.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` if the trail uses `channel` (in either direction).
    pub fn uses_channel(&self, channel: ChannelId) -> bool {
        self.hops.iter().any(|&(c, _)| c == channel)
    }

    /// The direction in which the trail crosses `channel`, if it does.
    pub fn direction_on(&self, channel: ChannelId) -> Option<Direction> {
        self.hops
            .iter()
            .find(|&&(c, _)| c == channel)
            .map(|&(_, d)| d)
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.nodes.iter().map(|n| n.to_string()).collect();
        write!(f, "Path[{}]", parts.join("->"))
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.nodes.iter().map(|n| n.to_string()).collect();
        write!(f, "{}", parts.join(" -> "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amount::Amount;

    /// 0 - 1 - 2 - 3 line plus a 1-3 chord.
    fn line_with_chord() -> Network {
        let mut g = Network::new(4);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (1, 3)] {
            g.add_channel(NodeId(a), NodeId(b), Amount::from_whole(10))
                .unwrap();
        }
        g
    }

    #[test]
    fn valid_path_builds_hops() {
        let g = line_with_chord();
        let p = Path::new(&g, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.dest(), NodeId(3));
        assert!(!p.is_empty());
        for (i, &(c, d)) in p.hops().iter().enumerate() {
            let ch = g.channel(c);
            assert_eq!(ch.sender(d), p.nodes()[i]);
        }
    }

    #[test]
    fn rejects_too_short() {
        let g = line_with_chord();
        assert!(matches!(
            Path::new(&g, vec![NodeId(0)]),
            Err(CoreError::InvalidPath(_))
        ));
        assert!(matches!(
            Path::new(&g, vec![]),
            Err(CoreError::InvalidPath(_))
        ));
    }

    #[test]
    fn rejects_missing_channel() {
        let g = line_with_chord();
        assert_eq!(
            Path::new(&g, vec![NodeId(0), NodeId(3)]),
            Err(CoreError::NoChannelBetween(NodeId(0), NodeId(3)))
        );
    }

    #[test]
    fn rejects_repeated_edge() {
        let g = line_with_chord();
        // 0 -> 1 -> 0 repeats channel (0,1).
        assert!(matches!(
            Path::new(&g, vec![NodeId(0), NodeId(1), NodeId(0)]),
            Err(CoreError::InvalidPath(_))
        ));
    }

    #[test]
    fn allows_repeated_node_with_distinct_edges() {
        let g = line_with_chord();
        // 0 -> 1 -> 2 -> 3 -> 1 revisits node 1 but uses distinct channels.
        let p = Path::new(
            &g,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(1)],
        );
        assert!(p.is_ok(), "trails may repeat nodes: {p:?}");
    }

    #[test]
    fn channel_membership_queries() {
        let g = line_with_chord();
        let p = Path::new(&g, vec![NodeId(0), NodeId(1), NodeId(3)]).unwrap();
        let c01 = g.channel_between(NodeId(0), NodeId(1)).unwrap().id;
        let c13 = g.channel_between(NodeId(1), NodeId(3)).unwrap().id;
        let c23 = g.channel_between(NodeId(2), NodeId(3)).unwrap().id;
        assert!(p.uses_channel(c01));
        assert!(p.uses_channel(c13));
        assert!(!p.uses_channel(c23));
        assert_eq!(p.direction_on(c01), Some(Direction::AtoB));
        assert_eq!(p.direction_on(c23), None);
    }

    #[test]
    fn display_is_readable() {
        let g = line_with_chord();
        let p = Path::new(&g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(p.to_string(), "n0 -> n1 -> n2");
        assert_eq!(format!("{p:?}"), "Path[n0->n1->n2]");
    }
}
