//! Dense, index-addressed containers for hot-path state.
//!
//! [`NodeId`] and [`ChannelId`] are dense indices (a channel's id *is* its
//! index in [`crate::Network::channels`]), so per-channel and per-pair state
//! does not need ordered maps: a `Vec` slot addressed by the id is both
//! faster (no pointer-chasing, no comparisons) and deterministic by
//! construction — iteration order is id order, always.
//!
//! Two containers cover the workspace's needs:
//!
//! - [`ChannelSet`] — an epoch-versioned membership bitmap over channels.
//!   `clear()` is O(1) (it bumps the epoch), so search loops can reuse one
//!   allocation across thousands of queries.
//! - [`PairTable`] — per-`(src, dst)` state, laid out as one row per source
//!   node with destinations kept sorted. Lookups are a `Vec` index plus a
//!   binary search over the source's (typically short) destination list;
//!   iteration is in `(src, dst)` order.

use crate::ids::{ChannelId, NodeId};

/// A set of channels, backed by an epoch-versioned dense bitmap.
///
/// A slot is a member when its mark equals the current epoch, so
/// [`clear`](ChannelSet::clear) never touches the backing storage. The set
/// grows on demand; querying beyond the backing storage is simply `false`.
#[derive(Clone, Debug, Default)]
pub struct ChannelSet {
    marks: Vec<u32>,
    epoch: u32,
    len: usize,
}

impl ChannelSet {
    /// An empty set with no preallocated backing storage.
    pub fn new() -> Self {
        ChannelSet {
            marks: Vec::new(),
            epoch: 1,
            len: 0,
        }
    }

    /// An empty set preallocated for channel ids `0..num_channels`.
    pub fn with_channels(num_channels: usize) -> Self {
        ChannelSet {
            marks: vec![0; num_channels],
            epoch: 1,
            len: 0,
        }
    }

    /// Inserts `channel`; returns `true` if it was not already a member.
    pub fn insert(&mut self, channel: ChannelId) -> bool {
        let i = channel.index();
        if i >= self.marks.len() {
            self.marks.resize(i + 1, 0);
        }
        if self.marks[i] == self.epoch {
            return false;
        }
        self.marks[i] = self.epoch;
        self.len += 1;
        true
    }

    /// `true` if `channel` is a member.
    #[inline]
    pub fn contains(&self, channel: ChannelId) -> bool {
        self.marks
            .get(channel.index())
            .is_some_and(|&m| m == self.epoch)
    }

    /// Empties the set in O(1) by advancing the epoch; the backing storage
    /// (and its capacity) is retained.
    pub fn clear(&mut self) {
        self.len = 0;
        if self.epoch == u32::MAX {
            // One reset every 2^32 - 1 clears keeps the marks sound.
            self.marks.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Per-`(source, destination)` state with dense source rows.
///
/// The outer `Vec` is indexed by the source node; each row keeps its
/// destinations sorted by id, so a lookup is one indexed load plus a binary
/// search over that source's destinations. Iteration visits entries in
/// `(src, dst)` order — deterministic by construction.
#[derive(Clone, Debug)]
pub struct PairTable<T> {
    rows: Vec<Vec<(NodeId, T)>>,
    len: usize,
}

impl<T> Default for PairTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PairTable<T> {
    /// An empty table; rows grow on demand.
    pub fn new() -> Self {
        PairTable {
            rows: Vec::new(),
            len: 0,
        }
    }

    /// An empty table preallocated for sources `0..num_nodes`.
    pub fn with_nodes(num_nodes: usize) -> Self {
        PairTable {
            rows: std::iter::repeat_with(Vec::new).take(num_nodes).collect(),
            len: 0,
        }
    }

    /// The entry for `(src, dst)`, if present.
    #[inline]
    pub fn get(&self, src: NodeId, dst: NodeId) -> Option<&T> {
        let row = self.rows.get(src.index())?;
        let i = row.binary_search_by_key(&dst, |e| e.0).ok()?;
        Some(&row[i].1)
    }

    /// Mutable access to the entry for `(src, dst)`, if present.
    #[inline]
    pub fn get_mut(&mut self, src: NodeId, dst: NodeId) -> Option<&mut T> {
        let row = self.rows.get_mut(src.index())?;
        let i = row.binary_search_by_key(&dst, |e| e.0).ok()?;
        Some(&mut row[i].1)
    }

    /// The entry for `(src, dst)`, inserting `init()` first when absent.
    pub fn entry_or_insert_with(
        &mut self,
        src: NodeId,
        dst: NodeId,
        init: impl FnOnce() -> T,
    ) -> &mut T {
        if src.index() >= self.rows.len() {
            self.rows.resize_with(src.index() + 1, Vec::new);
        }
        let row = &mut self.rows[src.index()];
        match row.binary_search_by_key(&dst, |e| e.0) {
            Ok(i) => &mut row[i].1,
            Err(i) => {
                row.insert(i, (dst, init()));
                self.len += 1;
                &mut row[i].1
            }
        }
    }

    /// Number of `(src, dst)` entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the table has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates entries in `(src, dst)` order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId, &T)> {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(s, row)| row.iter().map(move |(d, v)| (NodeId(s as u32), *d, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_set_insert_contains() {
        let mut s = ChannelSet::new();
        assert!(s.is_empty());
        assert!(!s.contains(ChannelId(3)));
        assert!(s.insert(ChannelId(3)));
        assert!(!s.insert(ChannelId(3)), "double insert reports false");
        assert!(s.contains(ChannelId(3)));
        assert!(!s.contains(ChannelId(2)));
        assert!(!s.contains(ChannelId(4_000)), "out of range is absent");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn channel_set_clear_is_cheap_and_complete() {
        let mut s = ChannelSet::with_channels(8);
        for i in 0..8 {
            s.insert(ChannelId(i));
        }
        assert_eq!(s.len(), 8);
        let cap = s.marks.len();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.marks.len(), cap, "storage retained");
        for i in 0..8 {
            assert!(!s.contains(ChannelId(i)));
        }
        assert!(s.insert(ChannelId(5)));
        assert!(s.contains(ChannelId(5)));
    }

    #[test]
    fn channel_set_epoch_wraparound_resets_marks() {
        let mut s = ChannelSet::with_channels(2);
        s.epoch = u32::MAX - 1;
        s.insert(ChannelId(0));
        s.clear(); // -> u32::MAX
        assert!(!s.contains(ChannelId(0)));
        s.insert(ChannelId(1));
        s.clear(); // wraps: marks reset, epoch back to 1
        assert_eq!(s.epoch, 1);
        assert!(!s.contains(ChannelId(0)));
        assert!(!s.contains(ChannelId(1)));
        s.insert(ChannelId(0));
        assert!(s.contains(ChannelId(0)));
    }

    #[test]
    fn pair_table_insert_get() {
        let mut t: PairTable<u64> = PairTable::new();
        assert!(t.get(NodeId(1), NodeId(2)).is_none());
        *t.entry_or_insert_with(NodeId(1), NodeId(2), || 0) += 7;
        *t.entry_or_insert_with(NodeId(1), NodeId(2), || 0) += 1;
        assert_eq!(t.get(NodeId(1), NodeId(2)), Some(&8));
        assert_eq!(t.len(), 1);
        *t.get_mut(NodeId(1), NodeId(2)).unwrap() = 5;
        assert_eq!(t.get(NodeId(1), NodeId(2)), Some(&5));
        assert!(t.get(NodeId(2), NodeId(1)).is_none(), "directional");
        assert!(t.get(NodeId(9), NodeId(9)).is_none(), "beyond rows");
    }

    #[test]
    fn pair_table_iterates_in_src_dst_order() {
        let mut t: PairTable<&str> = PairTable::with_nodes(4);
        t.entry_or_insert_with(NodeId(2), NodeId(1), || "c");
        t.entry_or_insert_with(NodeId(0), NodeId(3), || "b");
        t.entry_or_insert_with(NodeId(0), NodeId(1), || "a");
        t.entry_or_insert_with(NodeId(2), NodeId(3), || "d");
        let order: Vec<(u32, u32, &str)> = t.iter().map(|(s, d, v)| (s.0, d.0, *v)).collect();
        assert_eq!(
            order,
            vec![(0, 1, "a"), (0, 3, "b"), (2, 1, "c"), (2, 3, "d")]
        );
        assert_eq!(t.len(), 4);
    }
}
