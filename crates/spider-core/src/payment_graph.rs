//! The payment graph `H(V, E_H)` of §5.2.2: who wants to pay whom, at what
//! long-run rate.
//!
//! A [`DemandMatrix`] is independent of the channel topology — it captures
//! only the pattern of payments between participants. Its circulation
//! structure bounds balanced-routing throughput (Proposition 1); the
//! decomposition algorithms live in `spider-opt`.

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A sparse matrix of desired payment rates `d_{i,j}` (tokens per second).
///
/// Keys are ordered so iteration is deterministic.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DemandMatrix {
    rates: BTreeMap<(NodeId, NodeId), f64>,
}

impl DemandMatrix {
    /// An empty demand matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `d_{src,dst} = rate`. Zero or negative rates remove the entry.
    ///
    /// # Panics
    /// Panics if `src == dst` with a positive rate, or `rate` is not finite.
    pub fn set(&mut self, src: NodeId, dst: NodeId, rate: f64) {
        assert!(rate.is_finite(), "demand rate must be finite");
        if rate <= 0.0 {
            self.rates.remove(&(src, dst));
        } else {
            assert!(src != dst, "demand from a node to itself is meaningless");
            self.rates.insert((src, dst), rate);
        }
    }

    /// Adds `delta` to `d_{src,dst}` (creating the entry if needed).
    pub fn add(&mut self, src: NodeId, dst: NodeId, delta: f64) {
        let current = self.rate(src, dst);
        self.set(src, dst, current + delta);
    }

    /// The rate `d_{src,dst}`, or `0.0` if absent.
    pub fn rate(&self, src: NodeId, dst: NodeId) -> f64 {
        self.rates.get(&(src, dst)).copied().unwrap_or(0.0)
    }

    /// Iterator over `(src, dst, rate)` entries in deterministic order.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.rates.iter().map(|(&(s, d), &r)| (s, d, r))
    }

    /// Number of nonzero entries.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// `true` when there is no demand at all.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Sum of all demand rates (the "100% throughput" reference point).
    pub fn total(&self) -> f64 {
        self.rates.values().sum()
    }

    /// Net imbalance at `node`: outgoing demand minus incoming demand.
    ///
    /// A matrix is a circulation iff every node's imbalance is zero.
    pub fn node_imbalance(&self, node: NodeId) -> f64 {
        let mut out = 0.0;
        let mut inc = 0.0;
        for (&(s, d), &r) in &self.rates {
            if s == node {
                out += r;
            }
            if d == node {
                inc += r;
            }
        }
        out - inc
    }

    /// `true` if the demand is (numerically) a circulation: every node's
    /// in-rate equals its out-rate within `tol`.
    pub fn is_circulation(&self, tol: f64) -> bool {
        let mut imbalance: BTreeMap<NodeId, f64> = BTreeMap::new();
        for (&(s, d), &r) in &self.rates {
            *imbalance.entry(s).or_insert(0.0) += r;
            *imbalance.entry(d).or_insert(0.0) -= r;
        }
        imbalance.values().all(|v| v.abs() <= tol)
    }

    /// All nodes that appear as a source or destination, deduplicated,
    /// in ascending order.
    pub fn participants(&self) -> Vec<NodeId> {
        let mut set = std::collections::BTreeSet::new();
        for &(s, d) in self.rates.keys() {
            set.insert(s);
            set.insert(d);
        }
        set.into_iter().collect()
    }

    /// Returns a copy with every rate multiplied by `factor`.
    pub fn scaled(&self, factor: f64) -> DemandMatrix {
        assert!(factor.is_finite() && factor >= 0.0);
        let mut out = DemandMatrix::new();
        for (&(s, d), &r) in &self.rates {
            out.set(s, d, r * factor);
        }
        out
    }

    /// Element-wise subtraction `self - other`, clamped at zero.
    ///
    /// Used to compute the DAG remainder after peeling off a circulation.
    pub fn minus(&self, other: &DemandMatrix) -> DemandMatrix {
        let mut out = DemandMatrix::new();
        for (&(s, d), &r) in &self.rates {
            let rem = r - other.rate(s, d);
            if rem > 1e-12 {
                out.set(s, d, rem);
            }
        }
        out
    }

    /// Builds the demand matrix of the paper's Fig. 4/5 example (§5.1).
    ///
    /// The exact per-pair rates are reconstructed from the paper's reported
    /// aggregates (total demand 12, maximum circulation ν(C*) = 8,
    /// shortest-path balanced throughput 5 on the ring-plus-chord topology)
    /// and the flows named in the text (1→2 and 1→5 at rate 1, 2→4 at
    /// rate 2, the green 4→2→1 flow). Using 0-based node ids:
    /// 0→1: 1, 0→4: 1, 1→3: 2, 2→1: 1, 3→2: 1, 3→0: 2, 4→2: 3, 4→0: 1.
    pub fn fig4_example() -> DemandMatrix {
        let mut d = DemandMatrix::new();
        let entries: [(u32, u32, f64); 8] = [
            (0, 1, 1.0), // 1 -> 2
            (0, 4, 1.0), // 1 -> 5
            (1, 3, 2.0), // 2 -> 4
            (2, 1, 1.0), // 3 -> 2
            (3, 2, 1.0), // 4 -> 3
            (3, 0, 2.0), // 4 -> 1
            (4, 2, 3.0), // 5 -> 3
            (4, 0, 1.0), // 5 -> 1
        ];
        for (s, t, r) in entries {
            d.set(NodeId(s), NodeId(t), r);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut d = DemandMatrix::new();
        d.set(NodeId(0), NodeId(1), 2.5);
        assert_eq!(d.rate(NodeId(0), NodeId(1)), 2.5);
        assert_eq!(d.rate(NodeId(1), NodeId(0)), 0.0);
        d.set(NodeId(0), NodeId(1), 0.0);
        assert!(d.is_empty());
    }

    #[test]
    fn add_accumulates() {
        let mut d = DemandMatrix::new();
        d.add(NodeId(0), NodeId(1), 1.0);
        d.add(NodeId(0), NodeId(1), 2.0);
        assert_eq!(d.rate(NodeId(0), NodeId(1)), 3.0);
        assert_eq!(d.len(), 1);
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn rejects_self_demand() {
        let mut d = DemandMatrix::new();
        d.set(NodeId(3), NodeId(3), 1.0);
    }

    #[test]
    fn total_and_participants() {
        let d = DemandMatrix::fig4_example();
        assert_eq!(d.total(), 12.0);
        assert_eq!(d.participants().len(), 5);
        assert_eq!(d.len(), 8);
    }

    #[test]
    fn fig4_example_is_not_a_circulation() {
        let d = DemandMatrix::fig4_example();
        assert!(!d.is_circulation(1e-9));
        // Node 2 (paper node 3) receives 1+3=4 and sends 1.
        assert_eq!(d.node_imbalance(NodeId(2)), -3.0);
        // Node 1 (paper node 2) receives 1+1=2 and sends 2.
        assert_eq!(d.node_imbalance(NodeId(1)), 0.0);
        // Node 4 (paper node 5) sends 3+1=4 and receives 1.
        assert_eq!(d.node_imbalance(NodeId(4)), 3.0);
    }

    #[test]
    fn pure_cycle_is_circulation() {
        let mut d = DemandMatrix::new();
        d.set(NodeId(0), NodeId(1), 2.0);
        d.set(NodeId(1), NodeId(2), 2.0);
        d.set(NodeId(2), NodeId(0), 2.0);
        assert!(d.is_circulation(1e-12));
        assert_eq!(d.node_imbalance(NodeId(0)), 0.0);
    }

    #[test]
    fn scaled_multiplies_rates() {
        let d = DemandMatrix::fig4_example().scaled(2.0);
        assert_eq!(d.total(), 24.0);
        assert_eq!(d.rate(NodeId(1), NodeId(3)), 4.0);
    }

    #[test]
    fn minus_clamps_at_zero() {
        let mut a = DemandMatrix::new();
        a.set(NodeId(0), NodeId(1), 3.0);
        a.set(NodeId(1), NodeId(2), 1.0);
        let mut b = DemandMatrix::new();
        b.set(NodeId(0), NodeId(1), 1.0);
        b.set(NodeId(1), NodeId(2), 5.0);
        let r = a.minus(&b);
        assert_eq!(r.rate(NodeId(0), NodeId(1)), 2.0);
        assert_eq!(r.rate(NodeId(1), NodeId(2)), 0.0);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn entries_iterate_deterministically() {
        let d = DemandMatrix::fig4_example();
        let first: Vec<_> = d.entries().collect();
        let second: Vec<_> = d.entries().collect();
        assert_eq!(first, second);
        assert_eq!(first[0].0, NodeId(0));
    }
}
