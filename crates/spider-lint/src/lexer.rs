//! A small comment/string/attribute-aware Rust lexer.
//!
//! The workspace builds offline against stub dependencies, so `syn` is not
//! available; the lint rules instead run over this token stream. It is not a
//! full Rust lexer — it only has to be exact about the things that create
//! lint false positives: string/char/byte/raw-string literals, line and
//! block comments (captured, because `spider-lint: allow(...)` directives
//! live in them), lifetimes vs. char literals, and raw identifiers.

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// What the token is.
    pub kind: TokKind,
}

/// Token payload. Literal contents are deliberately dropped: rules must
/// never match inside string/char/number literals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `unsafe`, `as`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `:`, `#`, `{`, ...).
    Punct(char),
    /// A string/char/byte/number literal (contents dropped).
    Literal,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// A comment, captured so allow-directives can be parsed from it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Raw comment text, including the `//` / `/*` markers.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub toks: Vec<Tok>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// The identifier at token index `i`, if any.
    pub fn ident(&self, i: usize) -> Option<&str> {
        match self.toks.get(i)?.kind {
            TokKind::Ident(ref s) => Some(s),
            _ => None,
        }
    }

    /// The punctuation character at token index `i`, if any.
    pub fn punct(&self, i: usize) -> Option<char> {
        match self.toks.get(i)?.kind {
            TokKind::Punct(c) => Some(c),
            _ => None,
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens and comments.
pub fn lex(source: &str) -> Lexed {
    // Work over a char vector: the lexer needs two characters of lookahead
    // (`'a` vs `'a'`, `r#"` vs `r#ident`), which `Peekable` cannot give.
    let chars: Vec<char> = source.chars().collect();
    let mut lx = VecLexer {
        chars,
        pos: 0,
        line: 1,
        out: Lexed::default(),
    };
    lx.run();
    lx.out
}

struct VecLexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl VecLexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push_tok(&mut self, line: u32, kind: TokKind) {
        self.out.toks.push(Tok { line, kind });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line);
            } else if c == '"' {
                self.bump();
                self.string_body();
                self.push_tok(line, TokKind::Literal);
            } else if c == '\'' {
                self.quote(line);
            } else if is_ident_start(c) {
                self.ident_or_prefixed_literal(line);
            } else if c.is_ascii_digit() {
                self.number();
                self.push_tok(line, TokKind::Literal);
            } else {
                self.bump();
                if !c.is_whitespace() {
                    self.push_tok(line, TokKind::Punct(c));
                }
            }
        }
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0u32;
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '/' && self.peek(0) == Some('*') {
                depth += 1;
                text.push('*');
                self.bump();
            } else if c == '*' && self.peek(0) == Some('/') {
                text.push('/');
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    /// Consumes a (non-raw) string body after the opening `"`.
    fn string_body(&mut self) {
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == '"' {
                break;
            }
        }
    }

    /// Consumes a raw string after its prefix ident, given `#`s or `"` next.
    /// Returns `false` if this was actually a raw identifier (`r#name`).
    fn raw_string_or_raw_ident(&mut self, line: u32) -> bool {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(hashes) {
            Some('"') => {
                for _ in 0..=hashes {
                    self.bump();
                }
                // Scan for `"` followed by `hashes` hashes.
                'outer: while let Some(c) = self.bump() {
                    if c == '"' {
                        for k in 0..hashes {
                            if self.peek(k) != Some('#') {
                                continue 'outer;
                            }
                        }
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                }
                self.push_tok(line, TokKind::Literal);
                true
            }
            Some(c) if hashes == 1 && is_ident_start(c) => {
                // Raw identifier `r#type`.
                self.bump(); // '#'
                let id = self.ident_text();
                self.push_tok(line, TokKind::Ident(id));
                true
            }
            _ => false,
        }
    }

    fn ident_text(&mut self) -> String {
        let mut id = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                id.push(c);
                self.bump();
            } else {
                break;
            }
        }
        id
    }

    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let id = self.ident_text();
        let next = self.peek(0);
        match (id.as_str(), next) {
            ("r" | "br" | "cr", Some('"' | '#')) => {
                if !self.raw_string_or_raw_ident(line) {
                    self.push_tok(line, TokKind::Ident(id));
                }
            }
            ("b" | "c", Some('"')) => {
                self.bump();
                self.string_body();
                self.push_tok(line, TokKind::Literal);
            }
            ("b", Some('\'')) => {
                self.bump();
                self.char_body();
                self.push_tok(line, TokKind::Literal);
            }
            _ => self.push_tok(line, TokKind::Ident(id)),
        }
    }

    /// Consumes a char-literal body after the opening `'`.
    fn char_body(&mut self) {
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == '\'' {
                break;
            }
        }
    }

    /// `'` — either a lifetime (`'a`) or a char literal (`'a'`, `'\n'`).
    fn quote(&mut self, line: u32) {
        self.bump(); // the quote
        match self.peek(0) {
            Some(c) if is_ident_start(c) && self.peek(1) != Some('\'') => {
                // Lifetime: consume the ident, no closing quote.
                self.ident_text();
                self.push_tok(line, TokKind::Lifetime);
            }
            Some(_) => {
                self.char_body();
                self.push_tok(line, TokKind::Literal);
            }
            None => {}
        }
    }

    /// Consumes a numeric literal (decimal, hex, float, exponent, suffix).
    fn number(&mut self) {
        let mut prev_exp = false;
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                prev_exp = c == 'e' || c == 'E';
                self.bump();
            } else if c == '.' {
                // `1.5` continues the number; `1..n` and `x.0.1` do not
                // (a second `.` right after means a range).
                match self.peek(1) {
                    Some(d) if d.is_ascii_digit() => {
                        self.bump();
                    }
                    _ => break,
                }
            } else if (c == '+' || c == '-') && prev_exp {
                prev_exp = false;
                self.bump();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let lx = lex("let x = a.unwrap();");
        assert_eq!(idents("let x = a.unwrap();"), ["let", "x", "a", "unwrap"]);
        assert!(lx.toks.iter().any(|t| t.kind == TokKind::Punct('.')));
    }

    #[test]
    fn strings_are_opaque() {
        assert_eq!(idents(r#"let s = "HashMap.unwrap()";"#), ["let", "s"]);
        assert_eq!(idents(r##"let s = r#"unsafe { }"#;"##), ["let", "s"]);
        assert_eq!(idents(r#"let s = b"unwrap";"#), ["let", "s"]);
        // Escaped quote does not end the string early.
        assert_eq!(idents(r#"let s = "a\"unsafe\"b";"#), ["let", "s"]);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let lx = lex("// HashMap here\nlet x = 1; /* unsafe\nblock */\n");
        assert_eq!(idents("// HashMap here\nlet x = 1;"), ["let", "x"]);
        assert_eq!(lx.comments.len(), 2);
        assert_eq!(lx.comments[0].line, 1);
        assert!(lx.comments[0].text.contains("HashMap"));
        assert_eq!(lx.comments[1].line, 2);
        assert!(lx.comments[1].text.contains("block"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(idents("fn f<'a>(x: &'a str) {}"), ["fn", "f", "x", "str"]);
        // Char literals (with content 'u') must not produce an ident.
        assert_eq!(
            idents("let c = 'u'; let d = '\\n';"),
            ["let", "c", "let", "d"]
        );
        assert_eq!(idents("let e = '_';"), ["let", "e"]);
        assert_eq!(idents("let l: &'static str = x;"), ["let", "l", "str", "x"]);
    }

    #[test]
    fn raw_identifiers_are_idents() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn numbers_including_ranges_and_hex() {
        assert_eq!(
            idents("for i in 0..=5 { x[i] = 0x9e37_79b9; }"),
            ["for", "i", "in", "x", "i"]
        );
        assert_eq!(idents("let f = 1.5e-3f64;"), ["let", "f"]);
        // `x.0` tuple access: the 0 is a literal, the dot a punct.
        assert_eq!(idents("let y = x.0;"), ["let", "y", "x"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lx = lex("a\nb\n  c");
        let lines: Vec<u32> = lx.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 3]);
        // Multi-line string literals advance the line counter.
        let lx = lex("let s = \"x\ny\";\nz");
        let z = lx.toks.last().expect("token");
        assert_eq!(z.line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let lx = lex("/* a /* b */ c */ let x = 1;");
        assert_eq!(idents("/* a /* b */ c */ let x = 1;"), ["let", "x"]);
        assert_eq!(lx.comments.len(), 1);
    }
}
