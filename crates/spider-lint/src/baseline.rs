//! The ratchet: a checked-in baseline of known violations, keyed by
//! `(file, rule)` with a count.
//!
//! `check` fails when any `(file, rule)` count *exceeds* its baseline (a
//! fresh violation) **or** falls *below* it (a stale entry: debt shrank and
//! the baseline must be re-blessed so it can never grow back). Debt can
//! therefore only move monotonically toward zero.

use crate::rules::Violation;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One baselined `(file, rule)` debt entry.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BaselineEntry {
    /// Workspace-relative file path.
    pub file: String,
    /// Rule name.
    pub rule: String,
    /// Number of baselined violations of `rule` in `file`.
    pub count: usize,
}

/// The checked-in ratchet baseline (`lint-baseline.json`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Baseline {
    /// Entries sorted by `(file, rule)`.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Builds a baseline from a scan, sorted by `(file, rule)`.
    pub fn from_violations(violations: &[Violation]) -> Baseline {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for v in violations {
            *counts.entry((v.file.clone(), v.rule.clone())).or_insert(0) += 1;
        }
        Baseline {
            entries: counts
                .into_iter()
                .map(|((file, rule), count)| BaselineEntry { file, rule, count })
                .collect(),
        }
    }

    /// Total baselined violations.
    pub fn total(&self) -> usize {
        self.entries.iter().map(|e| e.count).sum()
    }

    /// Total baselined violations of one rule.
    pub fn rule_total(&self, rule: &str) -> usize {
        self.entries
            .iter()
            .filter(|e| e.rule == rule)
            .map(|e| e.count)
            .sum()
    }

    /// A new baseline that takes `rule`'s entries from `scan` and keeps
    /// every other rule's entries from `self` untouched — so paying down
    /// one rule's debt (`bless --rule NAME`) cannot silently re-bless
    /// regressions or absorb stale entries of unrelated rules.
    pub fn merge_rule(&self, scan: &Baseline, rule: &str) -> Baseline {
        let mut entries: Vec<BaselineEntry> = self
            .entries
            .iter()
            .filter(|e| e.rule != rule)
            .cloned()
            .chain(scan.entries.iter().filter(|e| e.rule == rule).cloned())
            .collect();
        entries.sort();
        Baseline { entries }
    }
}

/// A `(file, rule)` group that now has more violations than the baseline
/// allows.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Regression {
    /// Workspace-relative file path.
    pub file: String,
    /// Rule name.
    pub rule: String,
    /// Baselined count (0 when the group is new).
    pub baseline: usize,
    /// Count found by this scan.
    pub actual: usize,
    /// Every current violation in the group (line numbers locate the new
    /// ones; the ratchet is count-based, so lines are advisory).
    pub violations: Vec<Violation>,
}

/// A baseline entry whose debt shrank (or whose file/rule vanished): the
/// baseline is stale and must be re-blessed so the ratchet tightens.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StaleEntry {
    /// Workspace-relative file path.
    pub file: String,
    /// Rule name.
    pub rule: String,
    /// Baselined count.
    pub baseline: usize,
    /// Count found by this scan (strictly less than `baseline`).
    pub actual: usize,
}

/// Result of comparing a scan against the baseline.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckOutcome {
    /// Groups over their baselined count.
    pub regressions: Vec<Regression>,
    /// Entries under their baselined count.
    pub stale: Vec<StaleEntry>,
}

impl CheckOutcome {
    /// `true` when the scan matches the baseline exactly.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty() && self.stale.is_empty()
    }
}

/// Compares current violations against the baseline.
pub fn check(current: &[Violation], baseline: &Baseline) -> CheckOutcome {
    let mut groups: BTreeMap<(String, String), Vec<Violation>> = BTreeMap::new();
    for v in current {
        groups
            .entry((v.file.clone(), v.rule.clone()))
            .or_default()
            .push(v.clone());
    }
    let allowed: BTreeMap<(&str, &str), usize> = baseline
        .entries
        .iter()
        .map(|e| ((e.file.as_str(), e.rule.as_str()), e.count))
        .collect();

    let mut outcome = CheckOutcome::default();
    for ((file, rule), violations) in &groups {
        let permitted = allowed
            .get(&(file.as_str(), rule.as_str()))
            .copied()
            .unwrap_or(0);
        if violations.len() > permitted {
            outcome.regressions.push(Regression {
                file: file.clone(),
                rule: rule.clone(),
                baseline: permitted,
                actual: violations.len(),
                violations: violations.clone(),
            });
        }
    }
    for e in &baseline.entries {
        let actual = groups
            .get(&(e.file.clone(), e.rule.clone()))
            .map_or(0, Vec::len);
        if actual < e.count {
            outcome.stale.push(StaleEntry {
                file: e.file.clone(),
                rule: e.rule.clone(),
                baseline: e.count,
                actual,
            });
        }
    }
    outcome.regressions.sort();
    outcome.stale.sort();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(file: &str, line: u32, rule: &str) -> Violation {
        Violation {
            file: file.into(),
            line,
            rule: rule.into(),
            message: "m".into(),
        }
    }

    #[test]
    fn exact_match_is_ok() {
        let cur = vec![v("a.rs", 1, "panic-hygiene"), v("a.rs", 9, "panic-hygiene")];
        let base = Baseline::from_violations(&cur);
        assert_eq!(base.total(), 2);
        assert!(check(&cur, &base).ok());
    }

    #[test]
    fn extra_violation_regresses() {
        let cur = vec![v("a.rs", 1, "panic-hygiene")];
        let base = Baseline::from_violations(&cur);
        let more = vec![v("a.rs", 1, "panic-hygiene"), v("a.rs", 2, "panic-hygiene")];
        let out = check(&more, &base);
        assert!(!out.ok());
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].baseline, 1);
        assert_eq!(out.regressions[0].actual, 2);
        assert!(out.stale.is_empty());
    }

    #[test]
    fn new_group_regresses_from_zero() {
        let base = Baseline::default();
        let out = check(&[v("b.rs", 3, "unsafe-audit")], &base);
        assert_eq!(out.regressions[0].baseline, 0);
    }

    #[test]
    fn shrunk_debt_is_stale() {
        let base = Baseline::from_violations(&[
            v("a.rs", 1, "money-safety"),
            v("a.rs", 2, "money-safety"),
        ]);
        let out = check(&[v("a.rs", 1, "money-safety")], &base);
        assert!(!out.ok());
        assert_eq!(out.stale.len(), 1);
        assert_eq!(out.stale[0].actual, 1);
        // Fully fixed file is stale too.
        let out = check(&[], &base);
        assert_eq!(out.stale[0].actual, 0);
    }

    #[test]
    fn baseline_round_trips_json() {
        let base = Baseline::from_violations(&[v("a.rs", 1, "determinism")]);
        let json = serde_json::to_string_pretty(&base).unwrap_or_default();
        let back: Baseline = match serde_json::from_str(&json) {
            Ok(b) => b,
            Err(e) => panic!("round trip failed: {e}"),
        };
        assert_eq!(back, base);
    }
}
