//! # spider-lint — workspace invariant linter with ratcheted baselines
//!
//! A self-contained static-analysis pass over all first-party workspace
//! sources (vendored crates excluded) enforcing the invariants the rest of
//! the reproduction depends on:
//!
//! - **determinism** — no unordered `HashMap`/`HashSet`, wall-clock time, or
//!   OS randomness on deterministic simulation/routing paths,
//! - **money-safety** — no f64 <-> [`Amount`] conversions or lossy casts on
//!   micro-units outside the declared `spider-opt` boundary,
//! - **panic-hygiene** — no `.unwrap()`/`.expect()` in library non-test
//!   code,
//! - **unsafe-audit** — no `unsafe` anywhere first-party,
//! - **serde-compat** — new fields on fixture-frozen report structs must
//!   carry `#[serde(default)]`/`skip_serializing_if`.
//!
//! Existing debt is checked into `lint-baseline.json`; the ratchet fails on
//! any *new* violation and on any *stale* entry, so debt can only shrink.
//! Violations can be suppressed inline with
//! `// spider-lint: allow(<rule>) — <reason>`.
//!
//! See `LINTS.md` at the workspace root for the full rule catalogue.
//!
//! [`Amount`]: https://docs.rs/spider-core

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod rules;

pub use baseline::{check, Baseline, BaselineEntry, CheckOutcome, Regression, StaleEntry};
pub use rules::{lint_source, Violation, RULES};

use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// The workspace root, resolved from this crate's manifest directory at
/// compile time (`crates/spider-lint` -> two levels up).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .components()
        .collect()
}

/// Default baseline path for a workspace root.
pub fn baseline_path(root: &Path) -> PathBuf {
    root.join("lint-baseline.json")
}

/// Collects every first-party `.rs` file under `root`, sorted by relative
/// path so scans are deterministic. Walks `src/`, `crates/`, `tests/`, and
/// `examples/`; skips `vendor/`, `target/`, and hidden directories.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["src", "crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort_by_key(|p| rel_path(root, p));
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "vendor" || name == "target" {
            continue;
        }
        if path.is_dir() {
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators.
pub fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

/// Scans every first-party file under `root`, returning all violations
/// sorted by `(file, line, rule, message)`.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut all = Vec::new();
    for file in collect_files(root)? {
        let rel = rel_path(root, &file);
        let source = std::fs::read_to_string(&file)?;
        all.extend(rules::lint_source(&rel, &source));
    }
    all.sort();
    Ok(all)
}

/// Loads the baseline at `path`. A missing file is an empty baseline (so a
/// never-blessed tree treats every violation as new).
pub fn load_baseline(path: &Path) -> io::Result<Baseline> {
    if !path.exists() {
        return Ok(Baseline::default());
    }
    let text = std::fs::read_to_string(path)?;
    serde_json::from_str(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

/// Serializes a baseline deterministically (pretty JSON + trailing newline).
pub fn render_baseline(baseline: &Baseline) -> String {
    match serde_json::to_string_pretty(baseline) {
        Ok(mut s) => {
            s.push('\n');
            s
        }
        Err(_) => String::new(),
    }
}

/// Per-rule violation count.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleTotal {
    /// Rule name.
    pub rule: String,
    /// Current violations of the rule (baselined + new).
    pub count: usize,
}

/// Machine-readable `check --json` report. Field order and the sortedness
/// of every list are fixed, so serializing this is byte-identical across
/// runs over the same tree.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckReport {
    /// Report schema version.
    pub schema: u32,
    /// `true` when the scan matches the baseline exactly.
    pub ok: bool,
    /// Total current violations (baselined + new).
    pub total_violations: usize,
    /// Per-rule totals, sorted by rule name (all five rules always listed).
    pub rule_totals: Vec<RuleTotal>,
    /// `(file, rule)` groups over their baselined count.
    pub regressions: Vec<Regression>,
    /// Baseline entries whose debt shrank; re-bless to tighten the ratchet.
    pub stale: Vec<StaleEntry>,
}

/// Builds the full check report for a scan against a baseline.
pub fn check_report(current: &[Violation], base: &Baseline) -> CheckReport {
    let outcome = check(current, base);
    let rule_totals = RULES
        .iter()
        .map(|&rule| RuleTotal {
            rule: rule.to_string(),
            count: current.iter().filter(|v| v.rule == rule).count(),
        })
        .collect();
    CheckReport {
        schema: 1,
        ok: outcome.ok(),
        total_violations: current.len(),
        rule_totals,
        regressions: outcome.regressions,
        stale: outcome.stale,
    }
}

/// Renders a check report as deterministic pretty JSON (trailing newline).
pub fn render_json(report: &CheckReport) -> String {
    match serde_json::to_string_pretty(report) {
        Ok(mut s) => {
            s.push('\n');
            s
        }
        Err(_) => String::new(),
    }
}

/// Renders a check report as human-readable text.
pub fn render_text(report: &CheckReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    if report.ok {
        let _ = write!(
            s,
            "spider-lint: OK — 0 new violations, {} baselined (",
            report.total_violations
        );
        for (i, rt) in report.rule_totals.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(s, "{sep}{} {}", rt.count, rt.rule);
        }
        s.push_str(")\n");
        return s;
    }
    for r in &report.regressions {
        let _ = writeln!(
            s,
            "NEW: {} [{}] — {} found, {} baselined",
            r.file, r.rule, r.actual, r.baseline
        );
        for v in &r.violations {
            let _ = writeln!(s, "  {}:{}: {}", v.file, v.line, v.message);
        }
    }
    for e in &report.stale {
        let _ = writeln!(
            s,
            "STALE: {} [{}] — baseline {}, found {} (debt shrank; run `cargo run -p spider-lint -- bless`)",
            e.file, e.rule, e.baseline, e.actual
        );
    }
    let _ = writeln!(
        s,
        "spider-lint: FAILED — {} regressing group(s), {} stale baseline entr(ies)",
        report.regressions.len(),
        report.stale.len()
    );
    s
}
