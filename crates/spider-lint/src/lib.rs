//! # spider-lint — workspace invariant linter with ratcheted baselines
//!
//! A self-contained static-analysis pass over all first-party workspace
//! sources (vendored crates excluded) enforcing the invariants the rest of
//! the reproduction depends on:
//!
//! - **determinism** — no unordered `HashMap`/`HashSet`, wall-clock time, or
//!   OS randomness on deterministic simulation/routing paths,
//! - **money-safety** — no f64 <-> [`Amount`] conversions or lossy casts on
//!   micro-units outside the declared `spider-opt` boundary,
//! - **panic-hygiene** — no `.unwrap()`/`.expect()` in library non-test
//!   code,
//! - **panic-reachability** — no panic site reachable through the
//!   cross-crate call graph from the engine entry points `run`,
//!   `run_queued`, `run_sharded`,
//! - **wallclock-reachability** — no `Instant::now`/`SystemTime::now`
//!   reachable from those deterministic entry points,
//! - **overflow-safety** — no raw `+`/`-`/`*` arithmetic on `Amount`/micros
//!   values outside `amount.rs`,
//! - **shard-ownership** — in the sharded engine, ledger-slot mutation only
//!   behind the `self.own(...)` owner guard,
//! - **unsafe-audit** — no `unsafe` anywhere first-party,
//! - **serde-compat** — new fields on fixture-frozen report structs must
//!   carry `#[serde(default)]`/`skip_serializing_if`.
//!
//! Existing debt is checked into `lint-baseline.json`; the ratchet fails on
//! any *new* violation and on any *stale* entry, so debt can only shrink.
//! Violations can be suppressed inline with
//! `// spider-lint: allow(<rule>) — <reason>`.
//!
//! See `LINTS.md` at the workspace root for the full rule catalogue and
//! `DESIGN.md` for the call graph's approximate name-resolution model.
//!
//! [`Amount`]: https://docs.rs/spider-core

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod rules;

pub use baseline::{check, Baseline, BaselineEntry, CheckOutcome, Regression, StaleEntry};
pub use callgraph::{render_graph_json, CallGraph, ENTRY_POINTS};
pub use rules::{lint_source, Violation, RULES};

use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// The workspace root, resolved from this crate's manifest directory at
/// compile time (`crates/spider-lint` -> two levels up).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .components()
        .collect()
}

/// Default baseline path for a workspace root.
pub fn baseline_path(root: &Path) -> PathBuf {
    root.join("lint-baseline.json")
}

/// Collects every first-party `.rs` file under `root`, sorted by relative
/// path so scans are deterministic. Walks `src/`, `crates/`, `tests/`, and
/// `examples/`; skips `vendor/`, `target/`, and hidden directories.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["src", "crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort_by_key(|p| rel_path(root, p));
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "vendor" || name == "target" {
            continue;
        }
        if path.is_dir() {
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators.
pub fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

/// Scans every first-party file under `root` — the per-file rules plus the
/// workspace-level call-graph reachability rules — returning all violations
/// sorted by `(file, line, rule, message)`.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    Ok(scan_workspace_full(root)?.0)
}

/// Like [`scan_workspace`], but also returns the call graph (for the
/// `graph` subcommand, so one scan serves both outputs).
pub fn scan_workspace_full(root: &Path) -> io::Result<(Vec<Violation>, CallGraph)> {
    let mut all = Vec::new();
    let mut parsed: Vec<(String, rules::FileAnalysis)> = Vec::new();
    for file in collect_files(root)? {
        let rel = rel_path(root, &file);
        let source = std::fs::read_to_string(&file)?;
        let fa = rules::analyze_source(&rel, &source);
        all.extend(fa.violations.iter().cloned());
        parsed.push((rel, fa));
    }
    let graph_input: Vec<(String, parser::ParsedFile)> = parsed
        .iter()
        .map(|(rel, fa)| (rel.clone(), fa.parsed.clone()))
        .collect();
    let graph = CallGraph::build(&graph_input);
    let allows: std::collections::BTreeMap<&str, _> = parsed
        .iter()
        .map(|(rel, fa)| (rel.as_str(), &fa.allows))
        .collect();
    for v in graph.reachability_violations() {
        let suppressed = allows
            .get(v.file.as_str())
            .is_some_and(|a| rules::is_allowed(a, &v));
        if !suppressed {
            all.push(v);
        }
    }
    all.sort();
    Ok((all, graph))
}

/// Builds just the workspace call graph (no rule evaluation).
pub fn build_graph(root: &Path) -> io::Result<CallGraph> {
    Ok(scan_workspace_full(root)?.1)
}

/// Loads the baseline at `path`. A missing file is an empty baseline (so a
/// never-blessed tree treats every violation as new).
pub fn load_baseline(path: &Path) -> io::Result<Baseline> {
    if !path.exists() {
        return Ok(Baseline::default());
    }
    let text = std::fs::read_to_string(path)?;
    serde_json::from_str(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

/// Serializes a baseline deterministically (pretty JSON + trailing newline).
pub fn render_baseline(baseline: &Baseline) -> String {
    match serde_json::to_string_pretty(baseline) {
        Ok(mut s) => {
            s.push('\n');
            s
        }
        Err(_) => String::new(),
    }
}

/// Per-rule violation count.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleTotal {
    /// Rule name.
    pub rule: String,
    /// Current violations of the rule (baselined + new).
    pub count: usize,
}

/// Machine-readable `check --json` report. Field order and the sortedness
/// of every list are fixed, so serializing this is byte-identical across
/// runs over the same tree.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckReport {
    /// Report schema version.
    pub schema: u32,
    /// `true` when the scan matches the baseline exactly.
    pub ok: bool,
    /// Total current violations (baselined + new).
    pub total_violations: usize,
    /// Per-rule totals, sorted by rule name (every rule always listed).
    pub rule_totals: Vec<RuleTotal>,
    /// `(file, rule)` groups over their baselined count.
    pub regressions: Vec<Regression>,
    /// Baseline entries whose debt shrank; re-bless to tighten the ratchet.
    pub stale: Vec<StaleEntry>,
}

/// Builds the full check report for a scan against a baseline.
pub fn check_report(current: &[Violation], base: &Baseline) -> CheckReport {
    let outcome = check(current, base);
    let rule_totals = RULES
        .iter()
        .map(|&rule| RuleTotal {
            rule: rule.to_string(),
            count: current.iter().filter(|v| v.rule == rule).count(),
        })
        .collect();
    CheckReport {
        schema: 1,
        ok: outcome.ok(),
        total_violations: current.len(),
        rule_totals,
        regressions: outcome.regressions,
        stale: outcome.stale,
    }
}

/// Renders a check report as deterministic pretty JSON (trailing newline).
pub fn render_json(report: &CheckReport) -> String {
    match serde_json::to_string_pretty(report) {
        Ok(mut s) => {
            s.push('\n');
            s
        }
        Err(_) => String::new(),
    }
}

/// Renders a check report as human-readable text.
pub fn render_text(report: &CheckReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    if report.ok {
        let _ = write!(
            s,
            "spider-lint: OK — 0 new violations, {} baselined (",
            report.total_violations
        );
        for (i, rt) in report.rule_totals.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(s, "{sep}{} {}", rt.count, rt.rule);
        }
        s.push_str(")\n");
        return s;
    }
    for r in &report.regressions {
        let _ = writeln!(
            s,
            "NEW: {} [{}] — {} found, {} baselined",
            r.file, r.rule, r.actual, r.baseline
        );
        for v in &r.violations {
            let _ = writeln!(s, "  {}:{}: {}", v.file, v.line, v.message);
        }
    }
    for e in &report.stale {
        let _ = writeln!(
            s,
            "STALE: {} [{}] — baseline {}, found {} (debt shrank; run `cargo run -p spider-lint -- bless`)",
            e.file, e.rule, e.baseline, e.actual
        );
    }
    let _ = writeln!(
        s,
        "spider-lint: FAILED — {} regressing group(s), {} stale baseline entr(ies)",
        report.regressions.len(),
        report.stale.len()
    );
    s
}
