//! The per-file lint rules and the scoping logic that decides where each
//! runs.
//!
//! Paths are workspace-relative with `/` separators. Three scope tiers:
//!
//! - *first-party*: everything scanned (`src/`, `crates/`, `tests/`,
//!   `examples/`; never `vendor/` or `target/`),
//! - *library code*: crate `src/` trees minus bin targets — where
//!   panic-hygiene, money-safety, and overflow-safety apply,
//! - *deterministic paths*: `spider-sim`, `spider-routing`, and the grid
//!   runner — where the determinism rule applies.
//!
//! The two cross-file rules (panic-reachability, wallclock-reachability)
//! need the whole workspace's call graph and live in
//! [`callgraph`](crate::callgraph); [`analyze_source`] hands the per-file
//! parse results and allow directives up to that pass.

use crate::lexer::{lex, Comment, Lexed, TokKind};
use crate::parser::{self, FnDef, ParsedFile};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Names of every rule, sorted. Keep in sync with `LINTS.md`.
pub const RULES: [&str; 9] = [
    "determinism",
    "money-safety",
    "overflow-safety",
    "panic-hygiene",
    "panic-reachability",
    "serde-compat",
    "shard-ownership",
    "unsafe-audit",
    "wallclock-reachability",
];

/// Serialized report structs whose JSON shape is pinned by checked-in
/// fixtures (`tests/fixtures/`, grid/CI byte-identity checks). New fields
/// on these must carry `#[serde(default)]` or `skip_serializing_if` so
/// legacy JSON keeps parsing and old fixtures keep comparing byte-equal.
pub const FROZEN_STRUCTS: [&str; 8] = [
    "CellResult",
    "FaultStats",
    "GridCell",
    "GridResult",
    "GridSummary",
    "MetricSummary",
    "SimReport",
    "TelemetrySummary",
];

/// One lint violation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Violation {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule name (one of [`RULES`]).
    pub rule: String,
    /// Human-readable description of the violation.
    pub message: String,
}

/// `true` for paths the scanner should lint at all.
pub fn is_first_party(rel: &str) -> bool {
    let scanned = rel.starts_with("src/")
        || rel.starts_with("crates/")
        || rel.starts_with("tests/")
        || rel.starts_with("examples/");
    scanned && !rel.contains("vendor/") && !rel.contains("target/")
}

/// `true` for library (non-bin, non-integration-test) sources: the scope of
/// panic-hygiene and money-safety.
pub fn is_lib_path(rel: &str) -> bool {
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some(slash) = rest.find('/') {
            let sub = &rest[slash + 1..];
            return sub.starts_with("src/") && !sub.contains("/bin/") && sub != "src/main.rs";
        }
        return false;
    }
    rel.starts_with("src/") && rel != "src/main.rs"
}

/// `true` on deterministic simulation/routing paths, where iteration order
/// and time/randomness sources must be reproducible. The
/// `spider-experiments` CLI (`crates/bench/src/bin/`) is deliberately
/// outside this scope: wall-clock progress timing there is fine.
pub fn is_deterministic_path(rel: &str) -> bool {
    rel.starts_with("crates/spider-sim/src/")
        || rel.starts_with("crates/spider-routing/src/")
        || rel == "crates/bench/src/runner.rs"
}

/// `true` for the declared f64 <-> Amount conversion boundary: the LP/fluid
/// optimization crate and the `Amount` implementation itself.
pub fn is_money_boundary(rel: &str) -> bool {
    rel.starts_with("crates/spider-opt/src/") || rel == "crates/spider-core/src/amount.rs"
}

/// The file the shard-ownership rule is scoped to.
pub const SHARDED_ENGINE_PATH: &str = "crates/spider-sim/src/engine_sharded.rs";

/// Per-file analysis artifacts: the allow-filtered per-file rule violations
/// plus the parse results and allow directives the workspace-level
/// reachability rules need.
#[derive(Clone, Debug, Default)]
pub struct FileAnalysis {
    /// Per-file rule violations, allow-filtered and sorted.
    pub violations: Vec<Violation>,
    /// `spider-lint: allow(...)` directives by line.
    pub allows: BTreeMap<u32, BTreeSet<String>>,
    /// Parsed items (empty for out-of-scope files).
    pub parsed: ParsedFile,
}

/// Lints one file's source text. `rel` must be the workspace-relative path
/// with `/` separators; it selects which rules run.
pub fn lint_source(rel: &str, source: &str) -> Vec<Violation> {
    analyze_source(rel, source).violations
}

/// Runs every per-file rule over one file and returns the violations
/// together with the parse results needed by the cross-file rules.
pub fn analyze_source(rel: &str, source: &str) -> FileAnalysis {
    if !is_first_party(rel) || !rel.ends_with(".rs") {
        return FileAnalysis::default();
    }
    let lx = lex(source);
    let allows = collect_allows(&lx.comments);
    let test_lines = test_line_ranges(&lx);
    let in_test = |line: u32| test_lines.iter().any(|&(a, b)| line >= a && line <= b);
    let whole_file_test = rel.starts_with("tests/") || rel.contains("/tests/");
    let parsed = parser::parse(&lx, &test_lines, whole_file_test);

    let mut out = Vec::new();
    if is_deterministic_path(rel) {
        determinism(rel, &lx, &in_test, &mut out);
    }
    if is_lib_path(rel) && !is_money_boundary(rel) {
        money_safety(rel, &lx, &in_test, &mut out);
    }
    if is_lib_path(rel) {
        panic_hygiene(rel, &lx, &in_test, &mut out);
    }
    if is_lib_path(rel) && rel != "crates/spider-core/src/amount.rs" {
        overflow_safety(rel, &lx, &parsed, &mut out);
    }
    if rel == SHARDED_ENGINE_PATH {
        shard_ownership(rel, &lx, &parsed, &mut out);
    }
    // unsafe-audit runs everywhere first-party, test code included.
    unsafe_audit(rel, &lx, &mut out);
    if !whole_file_test {
        serde_compat(rel, &lx, &mut out);
    }

    out.retain(|v| !is_allowed(&allows, v));
    out.sort();
    FileAnalysis {
        violations: out,
        allows,
        parsed,
    }
}

/// Lines carrying a `spider-lint: allow(rule, ...)` directive. A directive
/// suppresses matching violations on its own line and the line below it.
pub fn collect_allows(comments: &[Comment]) -> BTreeMap<u32, BTreeSet<String>> {
    let mut map: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for c in comments {
        let Some(at) = c.text.find("spider-lint:") else {
            continue;
        };
        let rest = &c.text[at + "spider-lint:".len()..];
        let rest = rest.trim_start();
        let Some(list) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = list.find(')') else {
            continue;
        };
        for rule in list[..close].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                map.entry(c.line).or_default().insert(rule.to_string());
            }
        }
    }
    map
}

/// `true` when a violation is suppressed by an allow directive on its own
/// line or the line above.
pub fn is_allowed(allows: &BTreeMap<u32, BTreeSet<String>>, v: &Violation) -> bool {
    let hit = |line: u32| allows.get(&line).is_some_and(|set| set.contains(&v.rule));
    hit(v.line) || (v.line > 1 && hit(v.line - 1))
}

/// Line ranges covered by `#[cfg(test)]` / `#[test]` items (inline test
/// modules, test fns). Violations inside them are exempt from the
/// panic-hygiene / money-safety / determinism rules.
pub fn test_line_ranges(lx: &Lexed) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let toks = &lx.toks;
    let mut i = 0;
    while i < toks.len() {
        if lx.punct(i) == Some('#') && lx.punct(i + 1) == Some('[') {
            let Some(attr_end) = matching(lx, i + 1, '[', ']') else {
                break;
            };
            if attr_is_test(lx, i + 1, attr_end) {
                // Skip any further attributes on the same item.
                let mut j = attr_end + 1;
                while lx.punct(j) == Some('#') && lx.punct(j + 1) == Some('[') {
                    match matching(lx, j + 1, '[', ']') {
                        Some(e) => j = e + 1,
                        None => return ranges,
                    }
                }
                // The item extends to the first `;` at depth 0, or to the
                // matching `}` of its first `{`.
                let mut k = j;
                let mut end = None;
                while k < toks.len() {
                    match lx.punct(k) {
                        Some(';') => {
                            end = Some(k);
                            break;
                        }
                        Some('{') => {
                            end = matching(lx, k, '{', '}');
                            break;
                        }
                        _ => k += 1,
                    }
                }
                if let Some(e) = end {
                    ranges.push((toks[i].line, toks[e].line));
                    i = e + 1;
                    continue;
                }
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    ranges
}

/// `true` if the attribute tokens in `(open, close)` are `#[test]` or a
/// `#[cfg(...)]` that positively selects `test`.
fn attr_is_test(lx: &Lexed, open: usize, close: usize) -> bool {
    let idents: Vec<&str> = (open + 1..close).filter_map(|k| lx.ident(k)).collect();
    match idents.split_first() {
        Some((&"test", rest)) => rest.is_empty(),
        Some((&"cfg", rest)) => rest.contains(&"test") && !rest.contains(&"not"),
        _ => false,
    }
}

/// Index of the token matching the `open_ch` at token index `open`.
fn matching(lx: &Lexed, open: usize, open_ch: char, close_ch: char) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = open;
    while k < lx.toks.len() {
        match lx.punct(k) {
            Some(c) if c == open_ch => depth += 1,
            Some(c) if c == close_ch => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
        k += 1;
    }
    None
}

fn push(out: &mut Vec<Violation>, rel: &str, line: u32, rule: &str, message: String) {
    out.push(Violation {
        file: rel.to_string(),
        line,
        rule: rule.to_string(),
        message,
    });
}

// ---------------------------------------------------------------- rules --

fn determinism(rel: &str, lx: &Lexed, in_test: &dyn Fn(u32) -> bool, out: &mut Vec<Violation>) {
    const RULE: &str = "determinism";
    for (i, t) in lx.toks.iter().enumerate() {
        if in_test(t.line) {
            continue;
        }
        let TokKind::Ident(ref id) = t.kind else {
            continue;
        };
        match id.as_str() {
            "HashMap" | "HashSet" => push(
                out,
                rel,
                t.line,
                RULE,
                format!(
                    "unordered `{id}` on a deterministic path — iteration order varies per \
                     process; use BTreeMap/BTreeSet/Vec, or allow with a no-iteration \
                     justification"
                ),
            ),
            "RandomState" | "DefaultHasher" => push(
                out,
                rel,
                t.line,
                RULE,
                format!("`{id}` is randomly keyed per process on a deterministic path"),
            ),
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => push(
                out,
                rel,
                t.line,
                RULE,
                format!("OS randomness (`{id}`) on a deterministic path — derive seeds from the cell seed instead"),
            ),
            "Instant" | "SystemTime"
                if lx.punct(i + 1) == Some(':')
                    && lx.punct(i + 2) == Some(':')
                    && lx.ident(i + 3) == Some("now") =>
            {
                push(
                    out,
                    rel,
                    t.line,
                    RULE,
                    format!("wall-clock `{id}::now` on a deterministic path — use simulated time"),
                )
            }
            _ => {}
        }
    }
}

fn money_safety(rel: &str, lx: &Lexed, in_test: &dyn Fn(u32) -> bool, out: &mut Vec<Violation>) {
    const RULE: &str = "money-safety";
    for (i, t) in lx.toks.iter().enumerate() {
        if in_test(t.line) {
            continue;
        }
        let TokKind::Ident(ref id) = t.kind else {
            continue;
        };
        match id.as_str() {
            "from_tokens" | "checked_from_tokens" => push(
                out,
                rel,
                t.line,
                RULE,
                format!("f64 -> Amount conversion (`{id}`) outside the spider-opt boundary — construct amounts in integer micros"),
            ),
            "as_tokens" => push(
                out,
                rel,
                t.line,
                RULE,
                "Amount -> f64 conversion (`as_tokens`) outside the spider-opt boundary".to_string(),
            ),
            "micros"
                if lx.punct(i + 1) == Some('(')
                    && lx.punct(i + 2) == Some(')')
                    && lx.ident(i + 3) == Some("as") =>
            {
                push(
                    out,
                    rel,
                    t.line,
                    RULE,
                    "lossy `as` cast on raw micro-units — stay in i64 or use checked conversions".to_string(),
                )
            }
            _ => {}
        }
    }
}

fn panic_hygiene(rel: &str, lx: &Lexed, in_test: &dyn Fn(u32) -> bool, out: &mut Vec<Violation>) {
    const RULE: &str = "panic-hygiene";
    for (i, t) in lx.toks.iter().enumerate() {
        if in_test(t.line) {
            continue;
        }
        let TokKind::Ident(ref id) = t.kind else {
            continue;
        };
        if (id == "unwrap" || id == "expect") && i > 0 && lx.punct(i - 1) == Some('.') {
            push(
                out,
                rel,
                t.line,
                RULE,
                format!("`.{id}()` in library code — return a typed CoreError/Result instead"),
            );
        }
    }
}

fn unsafe_audit(rel: &str, lx: &Lexed, out: &mut Vec<Violation>) {
    const RULE: &str = "unsafe-audit";
    for t in &lx.toks {
        if t.kind == TokKind::Ident("unsafe".to_string()) {
            push(
                out,
                rel,
                t.line,
                RULE,
                "`unsafe` in first-party code — the workspace forbids unsafe_code".to_string(),
            );
        }
    }
}

/// Ledger methods that mutate per-channel slot state. In the sharded
/// engine, calling any of these on `self.ledger` is only legal after the
/// owner guard (`self.own(...)`) has run in the same function body — the
/// static counterpart of the release-mode `ForeignSlotMutation` audit.
const LEDGER_MUTATORS: &[&str] = &[
    "copy_channel_state_from",
    "deposit",
    "lock_hop",
    "lock_path",
    "lock_path_amounts",
    "refund_hop",
    "refund_path",
    "refund_path_amounts",
    "restore_channel",
    "settle_hop",
    "settle_path",
    "settle_path_amounts",
    "withdraw",
];

/// Token index ranges of fn bodies nested inside `def`'s body (they are
/// scanned as their own [`FnDef`]s and must not be double-counted).
fn nested_bodies(parsed: &ParsedFile, def: &FnDef) -> Vec<(usize, usize)> {
    parsed
        .fns
        .iter()
        .filter(|o| o.body.0 > def.body.0 && o.body.1 < def.body.1)
        .map(|o| o.body)
        .collect()
}

/// **shard-ownership** — inside `engine_sharded.rs`, a direct
/// `self.ledger.<mutator>(...)` call must be preceded (in the same fn body)
/// by the `self.own(...)` owner-guard check.
fn shard_ownership(rel: &str, lx: &Lexed, parsed: &ParsedFile, out: &mut Vec<Violation>) {
    const RULE: &str = "shard-ownership";
    for def in &parsed.fns {
        if def.is_test {
            continue;
        }
        let nested = nested_bodies(parsed, def);
        let (open, close) = def.body;
        let mut guarded = false;
        let mut i = open + 1;
        while i < close {
            if let Some(&(_, nc)) = nested.iter().find(|&&(no, _)| no == i) {
                i = nc + 1;
                continue;
            }
            if lx.ident(i) == Some("self") && lx.punct(i + 1) == Some('.') {
                if lx.ident(i + 2) == Some("own") && lx.punct(i + 3) == Some('(') {
                    guarded = true;
                    i += 4;
                    continue;
                }
                if lx.ident(i + 2) == Some("ledger") && lx.punct(i + 3) == Some('.') {
                    if let Some(m) = lx.ident(i + 4) {
                        if lx.punct(i + 5) == Some('(') && LEDGER_MUTATORS.contains(&m) && !guarded
                        {
                            push(
                                out,
                                rel,
                                lx.toks[i + 4].line,
                                RULE,
                                format!(
                                    "ledger slot mutation `self.ledger.{m}(...)` in \
                                     `{}` without a preceding `self.own(...)` owner-guard \
                                     check — route it through the guarded helpers",
                                    def.qual_name()
                                ),
                            );
                        }
                    }
                    i += 5;
                    continue;
                }
            }
            i += 1;
        }
    }
}

/// **overflow-safety** — raw `+`/`-`/`*`/`+=`/`-=`/`*=` where an operand is
/// an `Amount` or raw `micros()` value. Outside `amount.rs`, money
/// arithmetic must use `checked_*`/`saturating_*` (or carry a justified
/// allow where overflow is provably impossible).
fn overflow_safety(rel: &str, lx: &Lexed, parsed: &ParsedFile, out: &mut Vec<Violation>) {
    const RULE: &str = "overflow-safety";
    for def in &parsed.fns {
        if def.is_test {
            continue;
        }
        let nested = nested_bodies(parsed, def);
        let money_name =
            |id: &str| def.money_idents.contains(id) || parsed.amount_fields.contains(id);
        let (open, close) = def.body;
        let mut i = open + 1;
        while i < close {
            if let Some(&(_, nc)) = nested.iter().find(|&&(no, _)| no == i) {
                i = nc + 1;
                continue;
            }
            let Some(op) = lx.punct(i) else {
                i += 1;
                continue;
            };
            if !matches!(op, '+' | '-' | '*') {
                i += 1;
                continue;
            }
            // `->` is an arrow, not a subtraction.
            if op == '-' && lx.punct(i + 1) == Some('>') {
                i += 2;
                continue;
            }
            let compound = lx.punct(i + 1) == Some('=');
            // Binary only: the token before must end an operand. Anything
            // else is unary minus, a deref, `&*`, a generic bound, etc.
            let left_ends_operand =
                i.checked_sub(1)
                    .and_then(|p| lx.toks.get(p))
                    .is_some_and(|t| {
                        matches!(
                            t.kind,
                            TokKind::Ident(_)
                                | TokKind::Literal
                                | TokKind::Punct(')')
                                | TokKind::Punct(']')
                        )
                    });
            if !left_ends_operand {
                i += 1;
                continue;
            }
            let rhs = if compound { i + 2 } else { i + 1 };
            if money_operand_left(lx, i - 1, &money_name)
                || money_operand_right(lx, rhs, close, &money_name)
            {
                let shown = if compound {
                    format!("{op}=")
                } else {
                    op.to_string()
                };
                push(
                    out,
                    rel,
                    lx.toks[i].line,
                    RULE,
                    format!(
                        "raw `{shown}` on an Amount/micros value in `{}` — overflow \
                         wraps silently in release; use checked_*/saturating_* or add a \
                         justified allow",
                        def.qual_name()
                    ),
                );
            }
            i += if compound { 2 } else { 1 };
        }
    }
}

/// Index of the token matching the `close_ch` at token index `close`,
/// scanning backward.
fn matching_back(lx: &Lexed, close: usize, open_ch: char, close_ch: char) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = close;
    loop {
        match lx.punct(k) {
            Some(c) if c == close_ch => depth += 1,
            Some(c) if c == open_ch => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
        k = k.checked_sub(1)?;
    }
}

/// `true` when the operand *ending* at token `last` is money-typed: a known
/// Amount ident/field, an indexed Amount field (`available[side]`), or a
/// `.micros()` call result.
fn money_operand_left(lx: &Lexed, last: usize, money_name: &dyn Fn(&str) -> bool) -> bool {
    if let Some(id) = lx.ident(last) {
        return money_name(id);
    }
    match lx.punct(last) {
        Some(')') => {
            // `expr.micros() + ...`: the call before the parens.
            let Some(open) = matching_back(lx, last, '(', ')') else {
                return false;
            };
            open >= 2
                && lx.ident(open - 1) == Some("micros")
                && lx.punct(open.saturating_sub(2)) == Some('.')
        }
        Some(']') => {
            let Some(open) = matching_back(lx, last, '[', ']') else {
                return false;
            };
            open >= 1 && lx.ident(open - 1).is_some_and(money_name)
        }
        _ => false,
    }
}

/// `true` when the operand *starting* at token `first` is money-typed. The
/// scan walks one primary expression — ident chains (`self.base`,
/// `fee.micros()`, `Amount::from_micros(x)`), parenthesized groups, index
/// expressions — and stops at the next operator or separator.
fn money_operand_right(
    lx: &Lexed,
    first: usize,
    limit: usize,
    money_name: &dyn Fn(&str) -> bool,
) -> bool {
    let mut k = first;
    // A parenthesized right operand: any money ident or `.micros()` inside.
    if lx.punct(k) == Some('(') {
        if let Some(close) = matching(lx, k, '(', ')') {
            for j in k + 1..close.min(limit) {
                if let Some(id) = lx.ident(j) {
                    if money_name(id)
                        || id == "Amount"
                        || (id == "micros" && lx.punct(j.wrapping_sub(1)) == Some('.'))
                    {
                        return true;
                    }
                }
            }
        }
        return false;
    }
    while k < limit {
        if let Some(id) = lx.ident(k) {
            if money_name(id) || id == "Amount" {
                return true;
            }
            if id == "micros" && k >= 1 && lx.punct(k - 1) == Some('.') {
                return true;
            }
            k += 1;
            continue;
        }
        match lx.punct(k) {
            // Path / field chains continue the operand.
            Some('.') | Some(':') => k += 1,
            // Call arguments / index expressions: skip the group whole.
            Some('(') => match matching(lx, k, '(', ')') {
                Some(e) => k = e + 1,
                None => return false,
            },
            Some('[') => match matching(lx, k, '[', ']') {
                Some(e) => k = e + 1,
                None => return false,
            },
            // Anything else (operators, separators, braces) ends the operand.
            _ => return false,
        }
    }
    false
}

fn serde_compat(rel: &str, lx: &Lexed, out: &mut Vec<Violation>) {
    let toks = &lx.toks;
    let mut i = 0;
    while i < toks.len() {
        if lx.ident(i) != Some("struct") {
            i += 1;
            continue;
        }
        let Some(name) = lx.ident(i + 1) else {
            i += 1;
            continue;
        };
        if !FROZEN_STRUCTS.contains(&name) {
            i += 1;
            continue;
        }
        let name = name.to_string();
        // Find the field-block `{`; bail on tuple/unit structs.
        let mut j = i + 2;
        let mut body = None;
        while j < toks.len() {
            match lx.punct(j) {
                Some('{') => {
                    body = Some(j);
                    break;
                }
                Some(';') | Some('(') => break,
                _ => j += 1,
            }
        }
        let Some(body) = body else {
            i = j + 1;
            continue;
        };
        let Some(end) = matching(lx, body, '{', '}') else {
            break;
        };
        scan_frozen_fields(rel, lx, &name, body, end, out);
        i = end + 1;
    }
}

/// Walks the fields of a frozen struct's body (`body`..`end` are the brace
/// token indices), flagging fields without a serde default/skip attribute.
fn scan_frozen_fields(
    rel: &str,
    lx: &Lexed,
    struct_name: &str,
    body: usize,
    end: usize,
    out: &mut Vec<Violation>,
) {
    let mut j = body + 1;
    while j < end {
        // Attributes.
        let mut compat = false;
        while lx.punct(j) == Some('#') && lx.punct(j + 1) == Some('[') {
            let Some(attr_end) = matching(lx, j + 1, '[', ']') else {
                return;
            };
            let idents: Vec<&str> = (j + 2..attr_end).filter_map(|k| lx.ident(k)).collect();
            if idents.first() == Some(&"serde")
                && idents
                    .iter()
                    .any(|&w| w == "default" || w == "skip_serializing_if")
            {
                compat = true;
            }
            j = attr_end + 1;
        }
        // Visibility.
        if lx.ident(j) == Some("pub") {
            j += 1;
            if lx.punct(j) == Some('(') {
                match matching(lx, j, '(', ')') {
                    Some(e) => j = e + 1,
                    None => return,
                }
            }
        }
        let Some(fname) = lx.ident(j) else { return };
        if lx.punct(j + 1) != Some(':') {
            return;
        }
        if !compat {
            push(
                out,
                rel,
                lx.toks[j].line,
                "serde-compat",
                format!(
                    "field `{fname}` of fixture-frozen struct `{struct_name}` lacks \
                     #[serde(default)] / skip_serializing_if — new fields must keep legacy \
                     JSON parsing and fixtures byte-identical"
                ),
            );
        }
        // Skip the type, to the `,` at depth 0 or the closing `}`.
        j += 2;
        let mut depth = 0i32;
        let mut angle = 0i32;
        while j < end {
            match lx.toks[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => angle = (angle - 1).max(0),
                TokKind::Punct(',') if depth == 0 && angle == 0 => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
}
