//! Deterministic cross-crate call graph over all first-party code, and the
//! two reachability rules that run on it.
//!
//! Nodes are the non-test [`FnDef`]s from every parsed workspace file.
//! Edges come from the per-body call sites, resolved *by name*. Callees
//! are restricted to library-path fns (bin targets and integration tests
//! call *into* libraries, never the reverse):
//!
//! - `Type::name(...)` resolves to the fns of that name in first-party
//!   `impl Type` blocks when any exist (`Self` resolves through the
//!   caller's own impl block); any other capitalized qualifier is a
//!   std/vendored type and resolves to nothing,
//! - `module::name(...)` with a lowercase qualifier resolves by base name
//!   unless the qualifier is a known std module (`std`, `cmp`, `mem`, ...),
//! - `.name(...)` and bare `name(...)` resolve to *every* first-party fn
//!   with that base name, except names on a std-method skip list (`get`,
//!   `push`, `insert`, ...) which overwhelmingly mean the std method.
//!
//! This is a deliberate over-approximation (a name collision adds edges
//! that rustc would not) with a documented false-negative surface (calls
//! through fn pointers/closures, macro-generated bodies, and skipped std
//! names are invisible). See `DESIGN.md` — the point is a deterministic,
//! dependency-free blast-radius report, not precise name resolution.
//!
//! Reachability starts at the three engine entry points ([`ENTRY_POINTS`]):
//! `run` (sequential), `run_queued`, and `run_sharded`. Every panic site in
//! a reachable fn is a **panic-reachability** violation; every
//! `Instant::now`/`SystemTime::now` is a **wallclock-reachability**
//! violation (all three entry loops are deterministic replay surfaces).

use crate::parser::{FnDef, ParsedFile};
use crate::rules::Violation;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The engine event-loop entry points reachability starts from, as
/// `(file, fn name)` pairs. All three are deterministic surfaces.
pub const ENTRY_POINTS: [(&str, &str); 3] = [
    ("crates/spider-sim/src/engine.rs", "run"),
    ("crates/spider-sim/src/engine_queued.rs", "run_queued"),
    ("crates/spider-sim/src/engine_sharded.rs", "run_sharded"),
];

/// Lowercase path-call qualifiers that name std modules or primitive
/// types: `q::f(...)` with one of these never resolves to first-party
/// code. (Capitalized qualifiers resolve only through first-party `impl`
/// blocks, so std *types* need no list.) Sorted.
const STD_MODULES: &[&str] = &[
    "alloc",
    "char",
    "cmp",
    "collections",
    "core",
    "env",
    "f32",
    "f64",
    "fmt",
    "fs",
    "i128",
    "i16",
    "i32",
    "i64",
    "i8",
    "io",
    "isize",
    "iter",
    "mem",
    "process",
    "ptr",
    "slice",
    "std",
    "str",
    "thread",
    "time",
    "u128",
    "u16",
    "u32",
    "u64",
    "u8",
    "usize",
];

/// Method/bare-call names that overwhelmingly mean a std method; unqualified
/// calls to these are not resolved to first-party fns of the same name.
/// Part of the documented false-negative surface. Sorted.
const STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "chain",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "default",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "extend",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "map",
    "map_err",
    "map_or",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_else",
    "or_insert",
    "or_insert_with",
    "partial_cmp",
    "pop",
    "position",
    "push",
    "push_str",
    "range",
    "remove",
    "replace",
    "retain",
    "rev",
    "reverse",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "split_first",
    "split_last",
    "starts_with",
    "step_by",
    "sum",
    "swap",
    "take",
    "then",
    "then_with",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "with_capacity",
    "write",
    "zip",
];

/// One call-graph node: a non-test first-party fn.
#[derive(Clone, Debug)]
pub struct GraphFn {
    /// Workspace-relative file path.
    pub file: String,
    /// The parsed definition.
    pub def: FnDef,
}

/// The resolved workspace call graph.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// Nodes sorted by `(file, line, qualified name)`.
    pub fns: Vec<GraphFn>,
    /// `edges[i]` = sorted, deduplicated callee node indices of `fns[i]`.
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph from parsed files (as `(rel path, parse)` pairs).
    pub fn build(files: &[(String, ParsedFile)]) -> CallGraph {
        let mut fns: Vec<GraphFn> = Vec::new();
        for (rel, pf) in files {
            for def in &pf.fns {
                if def.is_test {
                    continue;
                }
                fns.push(GraphFn {
                    file: rel.clone(),
                    def: def.clone(),
                });
            }
        }
        fns.sort_by(|a, b| {
            (a.file.as_str(), a.def.line, a.def.qual_name()).cmp(&(
                b.file.as_str(),
                b.def.line,
                b.def.qual_name(),
            ))
        });

        // Callee indexes cover library-path fns only: bin targets and
        // integration tests call into libraries, never the reverse, so a
        // name collision there must not create a fake callee.
        let mut name_index: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut qual_index: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            if !crate::rules::is_lib_path(&f.file) {
                continue;
            }
            name_index.entry(f.def.name.as_str()).or_default().push(i);
            if let Some(owner) = &f.def.owner {
                qual_index
                    .entry((owner.as_str(), f.def.name.as_str()))
                    .or_default()
                    .push(i);
            }
        }

        let mut edges = Vec::with_capacity(fns.len());
        for f in &fns {
            let mut out: BTreeSet<usize> = BTreeSet::new();
            for call in &f.def.calls {
                let name = call.name.as_str();
                match call.qualifier.as_deref() {
                    Some(q) => {
                        let q = if q == "Self" {
                            f.def.owner.as_deref().unwrap_or(q)
                        } else {
                            q
                        };
                        if let Some(targets) = qual_index.get(&(q, name)) {
                            out.extend(targets.iter().copied());
                        } else if q.starts_with(|c: char| c.is_uppercase())
                            || STD_MODULES.binary_search(&q).is_ok()
                        {
                            // A type with no matching first-party impl fn
                            // (std/vendored), or a std module path: nothing
                            // first-party to resolve to.
                        } else if let Some(targets) = name_index.get(name) {
                            // Module-path call (`paths::shortest_path(...)`).
                            out.extend(targets.iter().copied());
                        }
                    }
                    None => {
                        if STD_METHODS.binary_search(&name).is_ok() {
                            continue;
                        }
                        if let Some(targets) = name_index.get(name) {
                            out.extend(targets.iter().copied());
                        }
                    }
                }
            }
            edges.push(out.into_iter().collect());
        }
        CallGraph { fns, edges }
    }

    /// Node indices of one entry point's fns (usually a single fn).
    pub fn entry_indices(&self, file: &str, name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && f.def.name == name)
            .map(|(i, _)| i)
            .collect()
    }

    /// All node indices reachable from `starts` (inclusive), BFS order
    /// collapsed into a sorted set.
    pub fn reachable(&self, starts: &[usize]) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = starts.iter().copied().collect();
        let mut queue: VecDeque<usize> = starts.iter().copied().collect();
        while let Some(i) = queue.pop_front() {
            for &j in &self.edges[i] {
                if seen.insert(j) {
                    queue.push_back(j);
                }
            }
        }
        seen
    }

    /// Per-node set of entry-point names that reach it.
    fn reachers(&self) -> BTreeMap<usize, BTreeSet<&'static str>> {
        let mut map: BTreeMap<usize, BTreeSet<&'static str>> = BTreeMap::new();
        for (file, name) in ENTRY_POINTS {
            let starts = self.entry_indices(file, name);
            for idx in self.reachable(&starts) {
                map.entry(idx).or_default().insert(name);
            }
        }
        map
    }

    /// The panic-reachability and wallclock-reachability violations for
    /// this graph (unfiltered — the caller applies per-file allows).
    pub fn reachability_violations(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for (idx, entries) in self.reachers() {
            let f = &self.fns[idx];
            let from = entries.iter().copied().collect::<Vec<_>>().join(", ");
            let plural = if entries.len() == 1 { "" } else { "s" };
            for site in &f.def.panics {
                out.push(Violation {
                    file: f.file.clone(),
                    line: site.line,
                    rule: "panic-reachability".to_string(),
                    message: format!(
                        "`{}` in `{}` is reachable from engine entry point{plural} \
                         {from} — a panic here aborts the event loop mid-simulation; \
                         return a typed CoreError or add a justified allow",
                        site.kind.name(),
                        f.def.qual_name()
                    ),
                });
            }
            for site in &f.def.wallclocks {
                out.push(Violation {
                    file: f.file.clone(),
                    line: site.line,
                    rule: "wallclock-reachability".to_string(),
                    message: format!(
                        "wall-clock `{}::now` in `{}` is reachable from deterministic \
                         entry point{plural} {from} — use simulated time or add a \
                         justified allow",
                        site.what,
                        f.def.qual_name()
                    ),
                });
            }
        }
        out.sort();
        out
    }
}

// --------------------------------------------------------- JSON rendering --

fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders the call graph as deterministic pretty JSON (trailing newline):
/// the three entry points with their reachable-fn counts and per-entry
/// panic/wall-clock site lists (sorted by file/line — the debt-burndown
/// priority order), then every node with its resolved callees.
pub fn render_graph_json(graph: &CallGraph) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    s.push_str("{\n  \"schema\": 1,\n  \"entry_points\": [\n");
    for (ei, (file, name)) in ENTRY_POINTS.iter().enumerate() {
        let starts = graph.entry_indices(file, name);
        let reach = graph.reachable(&starts);
        let _ = write!(
            s,
            "    {{\n      \"name\": \"{name}\",\n      \"file\": \"{file}\",\n      \
             \"reachable_fns\": {},\n      \"panic_sites\": [\n",
            reach.len()
        );
        let mut sites: Vec<(String, u32, &'static str, String)> = Vec::new();
        let mut clocks: Vec<(String, u32, String, String)> = Vec::new();
        for &idx in &reach {
            let f = &graph.fns[idx];
            for p in &f.def.panics {
                sites.push((f.file.clone(), p.line, p.kind.name(), f.def.qual_name()));
            }
            for w in &f.def.wallclocks {
                clocks.push((f.file.clone(), w.line, w.what.clone(), f.def.qual_name()));
            }
        }
        sites.sort();
        clocks.sort();
        for (i, (file, line, kind, in_fn)) in sites.iter().enumerate() {
            let comma = if i + 1 == sites.len() { "" } else { "," };
            let mut ef = String::new();
            esc(file, &mut ef);
            let mut eq = String::new();
            esc(in_fn, &mut eq);
            let _ = writeln!(
                s,
                "        {{\"file\": \"{ef}\", \"line\": {line}, \"kind\": \"{kind}\", \
                 \"fn\": \"{eq}\"}}{comma}"
            );
        }
        s.push_str("      ],\n      \"wallclock_sites\": [\n");
        for (i, (file, line, what, in_fn)) in clocks.iter().enumerate() {
            let comma = if i + 1 == clocks.len() { "" } else { "," };
            let mut ef = String::new();
            esc(file, &mut ef);
            let mut eq = String::new();
            esc(in_fn, &mut eq);
            let _ = writeln!(
                s,
                "        {{\"file\": \"{ef}\", \"line\": {line}, \"what\": \"{what}\", \
                 \"fn\": \"{eq}\"}}{comma}"
            );
        }
        let comma = if ei + 1 == ENTRY_POINTS.len() {
            ""
        } else {
            ","
        };
        let _ = write!(s, "      ]\n    }}{comma}\n");
    }
    s.push_str("  ],\n  \"functions\": [\n");
    for (i, f) in graph.fns.iter().enumerate() {
        let mut ef = String::new();
        esc(&f.file, &mut ef);
        let mut eq = String::new();
        esc(&f.def.qual_name(), &mut eq);
        let _ = write!(
            s,
            "    {{\"file\": \"{ef}\", \"line\": {}, \"fn\": \"{eq}\", \"calls\": [",
            f.def.line
        );
        for (j, &callee) in graph.edges[i].iter().enumerate() {
            let c = &graph.fns[callee];
            let mut ec = String::new();
            esc(
                &format!("{}:{}:{}", c.file, c.def.line, c.def.qual_name()),
                &mut ec,
            );
            let comma = if j + 1 == graph.edges[i].len() {
                ""
            } else {
                ", "
            };
            let _ = write!(s, "\"{ec}\"{comma}");
        }
        let comma = if i + 1 == graph.fns.len() { "" } else { "," };
        let _ = writeln!(s, "]}}{comma}");
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::rules::test_line_ranges;

    fn files(srcs: &[(&str, &str)]) -> Vec<(String, ParsedFile)> {
        srcs.iter()
            .map(|(rel, src)| {
                let lx = lex(src);
                let ranges = test_line_ranges(&lx);
                (rel.to_string(), parse(&lx, &ranges, false))
            })
            .collect()
    }

    #[test]
    fn skip_lists_are_sorted_for_binary_search() {
        let mut q = STD_MODULES.to_vec();
        q.sort_unstable();
        assert_eq!(q, STD_MODULES);
        let mut m = STD_METHODS.to_vec();
        m.sort_unstable();
        assert_eq!(m, STD_METHODS);
    }

    #[test]
    fn transitive_panic_reachability() {
        let g = CallGraph::build(&files(&[
            (
                "crates/spider-sim/src/engine.rs",
                "impl Engine { fn run(&mut self) { self.step(); } \
                 fn step(&mut self) { helper(1); } }",
            ),
            (
                "crates/spider-sim/src/util.rs",
                "fn helper(x: u32) { inner(x); } \
                 fn inner(x: u32) -> u32 { Some(x).unwrap() } \
                 fn unrelated() { panic!(\"not reachable\") }",
            ),
        ]));
        let v = g.reachability_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "panic-reachability");
        assert_eq!(v[0].file, "crates/spider-sim/src/util.rs");
        assert!(v[0].message.contains("`unwrap` in `inner`"));
        assert!(v[0].message.contains("run"));
    }

    #[test]
    fn wallclock_reachability_reports_entry_points() {
        let g = CallGraph::build(&files(&[
            (
                "crates/spider-sim/src/engine.rs",
                "impl Engine { fn run(&mut self) { stamp(); } }",
            ),
            (
                "crates/spider-sim/src/engine_queued.rs",
                "impl QueuedEngine { fn run_queued(&mut self) { stamp(); } }",
            ),
            (
                "crates/spider-telemetry/src/spans.rs",
                "fn stamp() { let t = Instant::now(); }",
            ),
        ]));
        let v = g.reachability_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "wallclock-reachability");
        assert!(v[0].message.contains("run, run_queued"), "{}", v[0].message);
    }

    #[test]
    fn std_method_names_do_not_create_edges() {
        let g = CallGraph::build(&files(&[
            (
                "crates/spider-sim/src/engine.rs",
                "impl Engine { fn run(&mut self) { self.queue.push(1); v.get(0); } }",
            ),
            (
                "crates/spider-core/src/other.rs",
                "impl Stack { fn push(&mut self, x: u32) { self.v.last().unwrap(); } \
                 fn get(&self, i: usize) -> u32 { self.v[i].checked_add(1).unwrap() } }",
            ),
        ]));
        assert!(g.reachability_violations().is_empty());
    }

    #[test]
    fn qualified_calls_resolve_through_first_party_impls_only() {
        let g = CallGraph::build(&files(&[
            (
                "crates/spider-sim/src/engine.rs",
                "impl Engine { fn run(&mut self) { let v = Vec::new(); \
                 let a = Amount::from_micros(1); } }",
            ),
            (
                "crates/spider-core/src/amount.rs",
                "impl Amount { fn from_micros(m: i64) -> Amount { check(m).expect(\"range\") } }",
            ),
        ]));
        let v = g.reachability_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Amount::from_micros"));
    }

    #[test]
    fn self_calls_resolve_to_the_callers_impl() {
        let g = CallGraph::build(&files(&[(
            "crates/spider-sim/src/engine.rs",
            "impl Engine { fn run(&mut self) { Self::helper(); } \
             fn helper() { panic!(\"x\") } }",
        )]));
        let v = g.reachability_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Engine::helper"));
    }

    #[test]
    fn graph_json_is_deterministic() {
        let fs = files(&[(
            "crates/spider-sim/src/engine.rs",
            "impl Engine { fn run(&mut self) { helper(); } } fn helper() { panic!(\"x\") }",
        )]);
        let a = render_graph_json(&CallGraph::build(&fs));
        let b = render_graph_json(&CallGraph::build(&fs));
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
        assert!(a.contains("\"reachable_fns\": 2"));
        assert!(a.contains("\"kind\": \"panic!\""));
    }
}
