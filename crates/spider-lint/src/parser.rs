//! A lightweight syntactic analyzer over the token stream: items, `fn`
//! definitions, call sites, panic/wall-clock sites, and money-typed names.
//!
//! This is deliberately *not* a Rust parser. It recovers exactly the
//! structure the reachability and overflow rules need, from the same
//! [`Lexed`](crate::lexer::Lexed) stream the token-level rules use:
//!
//! - `fn` definitions with their body token ranges, qualified by the
//!   enclosing `impl`/`trait` type when there is one,
//! - call sites inside each body — method calls (`.name(...)`), path calls
//!   (`Qual::name(...)`, with the qualifier captured), and bare calls
//!   (`name(...)`) — plus macro invocations (`name!(...)`),
//! - panic sites (`.unwrap()`, `.expect(...)`, `panic!`, `unreachable!`,
//!   `todo!`, `unimplemented!`) and wall-clock sites (`Instant::now`,
//!   `SystemTime::now`),
//! - names known to hold money: parameters and `let` bindings ascribed
//!   `Amount`, and (file-wide) struct fields whose type mentions `Amount`.
//!
//! Name resolution is intentionally approximate: callees are later matched
//! by name (see [`callgraph`](crate::callgraph)), so the extraction here
//! only has to be deterministic and panic-free on arbitrary input, never
//! "correct" in the rustc sense. The false-negative surface (macro-generated
//! code, function pointers, closures called through variables) is documented
//! in `DESIGN.md`.

use crate::lexer::Lexed;
use std::collections::BTreeSet;

/// One call site inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Callee base name (`settle_hop`, `now`, ...).
    pub name: String,
    /// For path calls `Qual::name(...)`: the qualifying segment directly
    /// before the final `::` (`Ledger`, `Self`, `std`, ...).
    pub qualifier: Option<String>,
    /// `true` for method calls (`.name(...)`).
    pub method: bool,
    /// 1-based source line.
    pub line: u32,
}

/// What kind of panic a [`PanicSite`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PanicKind {
    /// `.unwrap()`
    Unwrap,
    /// `.expect(...)`
    Expect,
    /// `panic!(...)`
    PanicMacro,
    /// `unreachable!(...)`
    UnreachableMacro,
    /// `todo!(...)`
    TodoMacro,
    /// `unimplemented!(...)`
    UnimplementedMacro,
}

impl PanicKind {
    /// Stable name used in JSON output and messages.
    pub fn name(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "unwrap",
            PanicKind::Expect => "expect",
            PanicKind::PanicMacro => "panic!",
            PanicKind::UnreachableMacro => "unreachable!",
            PanicKind::TodoMacro => "todo!",
            PanicKind::UnimplementedMacro => "unimplemented!",
        }
    }
}

/// A potential panic inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PanicSite {
    /// Which construct panics.
    pub kind: PanicKind,
    /// 1-based source line.
    pub line: u32,
}

/// A wall-clock read (`Instant::now()` / `SystemTime::now()`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WallclockSite {
    /// `Instant` or `SystemTime`.
    pub what: String,
    /// 1-based source line.
    pub line: u32,
}

/// One parsed `fn` definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnDef {
    /// Base name (`run`, `settle_hop`, ...).
    pub name: String,
    /// Enclosing `impl`/`trait` type name, when any (`Ledger`, `ShardCtx`).
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `true` when the definition sits inside a `#[cfg(test)]` region /
    /// `#[test]` item or a whole-file test.
    pub is_test: bool,
    /// Token index range `[open_brace, close_brace]` of the body.
    pub body: (usize, usize),
    /// Call sites in source order (nested `fn` bodies excluded).
    pub calls: Vec<CallSite>,
    /// Panic sites in source order (nested `fn` bodies excluded).
    pub panics: Vec<PanicSite>,
    /// Wall-clock sites in source order (nested `fn` bodies excluded).
    pub wallclocks: Vec<WallclockSite>,
    /// Parameter / `let` names ascribed type `Amount` in this fn.
    pub money_idents: BTreeSet<String>,
}

impl FnDef {
    /// `Owner::name` when the fn sits in an impl/trait block, else `name`.
    pub fn qual_name(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The result of parsing one file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParsedFile {
    /// Every `fn` with a body, in source order.
    pub fns: Vec<FnDef>,
    /// Struct field names whose declared type mentions `Amount`, file-wide.
    pub amount_fields: BTreeSet<String>,
    /// All `impl`/`trait` type names seen in this file.
    pub impl_types: BTreeSet<String>,
}

/// Keywords that must not be mistaken for bare call names.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "static", "struct", "super", "trait", "type", "union", "unsafe",
    "use", "where", "while", "yield",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Parses a lexed file. `test_ranges` are the line ranges of
/// `#[cfg(test)]`/`#[test]` items (see
/// [`test_line_ranges`](crate::rules::test_line_ranges)); `whole_file_test`
/// marks integration-test files where every fn is test code.
pub fn parse(lx: &Lexed, test_ranges: &[(u32, u32)], whole_file_test: bool) -> ParsedFile {
    let mut out = ParsedFile::default();
    let in_test =
        |line: u32| whole_file_test || test_ranges.iter().any(|&(a, b)| line >= a && line <= b);

    collect_amount_fields(lx, &mut out.amount_fields);

    // First pass: locate every fn body (so nested fns can be excluded from
    // their parent's site scan) and every impl/trait block.
    let fn_spans = locate_fns(lx);
    let impl_spans = locate_impl_blocks(lx);
    for ty in impl_spans.iter().map(|s| s.ty.clone()) {
        out.impl_types.insert(ty);
    }

    for span in &fn_spans {
        let owner = impl_spans
            .iter()
            .filter(|b| b.open < span.open && span.close <= b.close)
            .max_by_key(|b| b.open)
            .map(|b| b.ty.clone());
        let line = lx.toks[span.kw].line;
        let mut def = FnDef {
            name: span.name.clone(),
            owner,
            line,
            is_test: in_test(line),
            body: (span.open, span.close),
            calls: Vec::new(),
            panics: Vec::new(),
            wallclocks: Vec::new(),
            money_idents: BTreeSet::new(),
        };
        collect_params(lx, span.kw, span.open, &mut def.money_idents);
        // Token ranges of fns nested strictly inside this body.
        let nested: Vec<(usize, usize)> = fn_spans
            .iter()
            .filter(|s| s.open > span.open && s.close < span.close)
            .map(|s| (s.open, s.close))
            .collect();
        scan_body(lx, span.open, span.close, &nested, &mut def);
        out.fns.push(def);
    }
    out
}

/// One located `fn` with a body.
struct FnSpan {
    /// Token index of the `fn` keyword.
    kw: usize,
    name: String,
    /// Token indices of the body braces.
    open: usize,
    close: usize,
}

/// One located `impl`/`trait` block.
struct ImplSpan {
    /// The self-type (for `impl Trait for Type`, the `Type`).
    ty: String,
    open: usize,
    close: usize,
}

fn matching(lx: &Lexed, open: usize, open_ch: char, close_ch: char) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = open;
    while k < lx.toks.len() {
        match lx.punct(k) {
            Some(c) if c == open_ch => depth += 1,
            Some(c) if c == close_ch => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Finds every `fn name ... { body }`. Trait method *declarations*
/// (`fn f(...);`) have no body and are skipped.
fn locate_fns(lx: &Lexed) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let toks = &lx.toks;
    let mut i = 0;
    while i < toks.len() {
        if lx.ident(i) != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name) = lx.ident(i + 1) else {
            i += 1;
            continue;
        };
        if is_keyword(name) {
            i += 2;
            continue;
        }
        // Walk the signature to the body `{` or a terminating `;`. The
        // signature may contain parens, angle brackets, and a where-clause;
        // `{` at bracket depth 0 opens the body.
        let name = name.to_string();
        let mut j = i + 2;
        let mut depth = 0i32;
        let mut found = None;
        while j < toks.len() {
            match lx.punct(j) {
                Some('(') | Some('[') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some('{') if depth == 0 => {
                    found = Some(j);
                    break;
                }
                Some(';') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if let Some(open) = found {
            if let Some(close) = matching(lx, open, '{', '}') {
                spans.push(FnSpan {
                    kw: i,
                    name,
                    open,
                    close,
                });
                // Continue *inside* the body so nested fns are found too.
                i += 2;
                continue;
            }
        }
        i = j + 1;
    }
    spans
}

/// Finds every `impl ... {` / `trait Name {` block and its self-type.
fn locate_impl_blocks(lx: &Lexed) -> Vec<ImplSpan> {
    let mut spans = Vec::new();
    let toks = &lx.toks;
    let mut i = 0;
    while i < toks.len() {
        let kw = lx.ident(i);
        if kw != Some("impl") && kw != Some("trait") {
            i += 1;
            continue;
        }
        let is_trait = kw == Some("trait");
        // Collect header tokens up to the opening `{` at paren depth 0,
        // tracking angle-bracket depth so `for` inside generics is ignored.
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut paren = 0i32;
        let mut header: Vec<(usize, i32)> = Vec::new(); // (token idx, angle depth)
        let mut open = None;
        while j < toks.len() {
            match lx.punct(j) {
                Some('<') => angle += 1,
                Some('>') => angle = (angle - 1).max(0),
                Some('(') | Some('[') => paren += 1,
                Some(')') | Some(']') => paren -= 1,
                Some('{') if paren == 0 => {
                    open = Some(j);
                    break;
                }
                Some(';') if paren == 0 => break, // `impl Trait for Type;` etc.
                _ => {}
            }
            header.push((j, angle));
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let Some(close) = matching(lx, open, '{', '}') else {
            break;
        };
        // Self-type: the last path segment before `{` / `<`, taken from the
        // segment after a depth-0 `for` when present (impl Trait for Type).
        let mut start = 0usize;
        if !is_trait {
            for (pos, &(tk, ad)) in header.iter().enumerate() {
                if ad == 0 && lx.ident(tk) == Some("for") {
                    start = pos + 1;
                }
            }
        }
        let mut ty = None;
        for &(tk, ad) in &header[start.min(header.len())..] {
            if ad > 0 {
                continue;
            }
            if let Some(id) = lx.ident(tk) {
                if !is_keyword(id) {
                    ty = Some(id.to_string());
                    // Keep going: `a::b::Type` — last segment wins, but stop
                    // once generics open (`Type<...>` already filtered by
                    // angle depth).
                }
            }
        }
        if let Some(ty) = ty {
            spans.push(ImplSpan { ty, open, close });
        }
        // Scan inside the block too (nested impls are rare but legal).
        i = open + 1;
    }
    spans
}

/// Collects struct/enum-struct fields whose declared type mentions `Amount`.
fn collect_amount_fields(lx: &Lexed, out: &mut BTreeSet<String>) {
    let toks = &lx.toks;
    let mut i = 0;
    while i < toks.len() {
        if lx.ident(i) != Some("struct") {
            i += 1;
            continue;
        }
        // Find the field block.
        let mut j = i + 1;
        let mut body = None;
        while j < toks.len() {
            match lx.punct(j) {
                Some('{') => {
                    body = Some(j);
                    break;
                }
                Some(';') | Some('(') => break,
                _ => j += 1,
            }
        }
        let Some(body) = body else {
            i = j + 1;
            continue;
        };
        let Some(end) = matching(lx, body, '{', '}') else {
            break;
        };
        // Walk `name : Type` pairs at depth 1.
        let mut k = body + 1;
        let mut depth = 0i32;
        while k < end {
            match lx.punct(k) {
                Some('{') | Some('(') | Some('[') | Some('<') => depth += 1,
                Some('}') | Some(')') | Some(']') | Some('>') => depth -= 1,
                _ => {}
            }
            if depth == 0 {
                if let (Some(fname), Some(':')) = (lx.ident(k), lx.punct(k + 1)) {
                    if lx.punct(k + 2) != Some(':') {
                        // Type tokens run to the `,` at depth 0 or `}`.
                        let mut t = k + 2;
                        let mut d2 = 0i32;
                        let mut has_amount = false;
                        while t < end {
                            match lx.punct(t) {
                                Some('(') | Some('[') | Some('{') | Some('<') => d2 += 1,
                                Some(')') | Some(']') | Some('}') | Some('>') => d2 -= 1,
                                Some(',') if d2 <= 0 => break,
                                _ => {}
                            }
                            if lx.ident(t) == Some("Amount") {
                                has_amount = true;
                            }
                            t += 1;
                        }
                        if has_amount {
                            out.insert(fname.to_string());
                        }
                        k = t;
                        continue;
                    }
                }
            }
            k += 1;
        }
        i = end + 1;
    }
}

/// Records parameter names ascribed `Amount` between the fn keyword and the
/// body brace.
fn collect_params(lx: &Lexed, kw: usize, open: usize, out: &mut BTreeSet<String>) {
    // Parameter list: the first `( ... )` after the fn name.
    let mut p = kw + 2;
    while p < open && lx.punct(p) != Some('(') {
        p += 1;
    }
    if p >= open {
        return;
    }
    let Some(close) = matching(lx, p, '(', ')') else {
        return;
    };
    let close = close.min(open);
    let mut k = p + 1;
    while k < close {
        if let (Some(pname), Some(':')) = (lx.ident(k), lx.punct(k + 1)) {
            if lx.punct(k + 2) != Some(':') && !is_keyword(pname) {
                // Type runs to the `,` at depth 0.
                let mut t = k + 2;
                let mut d = 0i32;
                let mut has_amount = false;
                while t < close {
                    match lx.punct(t) {
                        Some('(') | Some('[') | Some('<') => d += 1,
                        Some(')') | Some(']') | Some('>') => d -= 1,
                        Some(',') if d <= 0 => break,
                        _ => {}
                    }
                    if lx.ident(t) == Some("Amount") {
                        has_amount = true;
                    }
                    t += 1;
                }
                if has_amount {
                    out.insert(pname.to_string());
                }
                k = t;
                continue;
            }
        }
        k += 1;
    }
}

/// Scans a fn body for call, panic, and wall-clock sites plus `let`
/// ascriptions, skipping nested fn bodies.
fn scan_body(lx: &Lexed, open: usize, close: usize, nested: &[(usize, usize)], def: &mut FnDef) {
    let toks = &lx.toks;
    let mut i = open + 1;
    while i < close {
        if let Some(&(_, nc)) = nested.iter().find(|&&(no, _)| no == i) {
            i = nc + 1;
            continue;
        }
        let Some(id) = lx.ident(i) else {
            i += 1;
            continue;
        };
        let line = toks[i].line;

        // `let name : Type` ascriptions.
        if id == "let" {
            let mut n = i + 1;
            if lx.ident(n) == Some("mut") {
                n += 1;
            }
            if let Some(lname) = lx.ident(n) {
                if lx.punct(n + 1) == Some(':') && lx.punct(n + 2) != Some(':') {
                    // Type runs to `=` or `;` at depth 0.
                    let mut t = n + 2;
                    let mut d = 0i32;
                    let mut has_amount = false;
                    while t < close {
                        match lx.punct(t) {
                            Some('(') | Some('[') | Some('{') | Some('<') => d += 1,
                            Some(')') | Some(']') | Some('}') | Some('>') => d -= 1,
                            Some('=') | Some(';') if d <= 0 => break,
                            _ => {}
                        }
                        if lx.ident(t) == Some("Amount") {
                            has_amount = true;
                        }
                        t += 1;
                    }
                    if has_amount {
                        def.money_idents.insert(lname.to_string());
                    }
                }
            }
            i += 1;
            continue;
        }

        // Macro invocation `name ! (`.
        if lx.punct(i + 1) == Some('!') {
            let kind = match id {
                "panic" => Some(PanicKind::PanicMacro),
                "unreachable" => Some(PanicKind::UnreachableMacro),
                "todo" => Some(PanicKind::TodoMacro),
                "unimplemented" => Some(PanicKind::UnimplementedMacro),
                _ => None,
            };
            if let Some(kind) = kind {
                def.panics.push(PanicSite { kind, line });
            }
            i += 2;
            continue;
        }

        // Wall-clock read `Instant :: now (` / `SystemTime :: now (`.
        if (id == "Instant" || id == "SystemTime")
            && lx.punct(i + 1) == Some(':')
            && lx.punct(i + 2) == Some(':')
            && lx.ident(i + 3) == Some("now")
        {
            def.wallclocks.push(WallclockSite {
                what: id.to_string(),
                line,
            });
            i += 4;
            continue;
        }

        // Call site: ident followed by `(`, or by a turbofish then `(`.
        let mut after = i + 1;
        if lx.punct(after) == Some(':')
            && lx.punct(after + 1) == Some(':')
            && lx.punct(after + 2) == Some('<')
        {
            match matching(lx, after + 2, '<', '>') {
                Some(e) => after = e + 1,
                None => {
                    i += 1;
                    continue;
                }
            }
        }
        if lx.punct(after) == Some('(') && !is_keyword(id) {
            let prev = i.checked_sub(1).and_then(|p| lx.punct(p));
            let method = prev == Some('.');
            let qualifier =
                if !method && prev == Some(':') && i >= 2 && lx.punct(i - 2) == Some(':') {
                    i.checked_sub(3).and_then(|q| lx.ident(q)).map(String::from)
                } else {
                    None
                };
            if method && (id == "unwrap" || id == "expect") {
                let kind = if id == "unwrap" {
                    PanicKind::Unwrap
                } else {
                    PanicKind::Expect
                };
                def.panics.push(PanicSite { kind, line });
            }
            def.calls.push(CallSite {
                name: id.to_string(),
                qualifier,
                method,
                line,
            });
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_line_ranges;

    fn parse_src(src: &str) -> ParsedFile {
        let lx = lex(src);
        let ranges = test_line_ranges(&lx);
        parse(&lx, &ranges, false)
    }

    #[test]
    fn extracts_fns_with_impl_owner() {
        let p = parse_src(
            "impl Ledger { fn side(&self) -> usize { 0 } }\n\
             fn free() {}\n\
             impl BalanceView for LedgerView<'_> { fn available(&self) -> Amount { Amount::ZERO } }\n\
             trait Scheme { fn route(&self) { self.help(); } }\n",
        );
        let quals: Vec<String> = p.fns.iter().map(|f| f.qual_name()).collect();
        assert_eq!(
            quals,
            [
                "Ledger::side",
                "free",
                "LedgerView::available",
                "Scheme::route"
            ]
        );
        assert!(p.impl_types.contains("Ledger"));
        assert!(p.impl_types.contains("LedgerView"));
        assert!(p.impl_types.contains("Scheme"));
    }

    #[test]
    fn trait_declarations_without_body_are_skipped() {
        let p = parse_src("trait T { fn decl(&self); fn with_default(&self) { x() } }\n");
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["with_default"]);
    }

    #[test]
    fn call_sites_classified_by_shape() {
        let p = parse_src(
            "fn f() { g(); obj.method(); Ledger::side(n); a::b::helper(); v.collect::<Vec<_>>(); }\n",
        );
        let f = &p.fns[0];
        let shapes: Vec<(String, Option<String>, bool)> = f
            .calls
            .iter()
            .map(|c| (c.name.clone(), c.qualifier.clone(), c.method))
            .collect();
        assert_eq!(
            shapes,
            [
                ("g".to_string(), None, false),
                ("method".to_string(), None, true),
                ("side".to_string(), Some("Ledger".to_string()), false),
                ("helper".to_string(), Some("b".to_string()), false),
                ("collect".to_string(), None, true),
            ]
        );
    }

    #[test]
    fn panic_and_wallclock_sites() {
        let p = parse_src(
            "fn f(x: Option<u32>) {\n\
                 x.unwrap();\n\
                 x.expect(\"m\");\n\
                 panic!(\"boom\");\n\
                 unreachable!();\n\
                 let t = Instant::now();\n\
                 let s = std::time::SystemTime::now();\n\
             }\n",
        );
        let f = &p.fns[0];
        let kinds: Vec<PanicKind> = f.panics.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            [
                PanicKind::Unwrap,
                PanicKind::Expect,
                PanicKind::PanicMacro,
                PanicKind::UnreachableMacro
            ]
        );
        assert_eq!(f.wallclocks.len(), 2);
        assert_eq!(f.wallclocks[0].what, "Instant");
        // unwrap_or_else is not a panic site.
        let p = parse_src("fn f(x: Option<u32>) { x.unwrap_or_else(|| 0); }\n");
        assert!(p.fns[0].panics.is_empty());
    }

    #[test]
    fn nested_fn_sites_belong_to_the_nested_fn_only() {
        let p = parse_src("fn outer() { fn inner(x: Option<u32>) { x.unwrap(); } inner(None); }\n");
        let outer = p.fns.iter().find(|f| f.name == "outer").expect("outer");
        let inner = p.fns.iter().find(|f| f.name == "inner").expect("inner");
        assert!(outer.panics.is_empty(), "{:?}", outer.panics);
        assert_eq!(inner.panics.len(), 1);
        assert!(outer.calls.iter().any(|c| c.name == "inner"));
    }

    #[test]
    fn money_idents_from_params_lets_and_fields() {
        let p = parse_src(
            "struct S { cap: Amount, pair: [Amount; 2], other: u32 }\n\
             fn f(amount: Amount, n: usize) { let fee: Amount = g(); let k: i64 = 0; }\n",
        );
        assert!(p.amount_fields.contains("cap"));
        assert!(p.amount_fields.contains("pair"));
        assert!(!p.amount_fields.contains("other"));
        let f = &p.fns[0];
        assert!(f.money_idents.contains("amount"));
        assert!(f.money_idents.contains("fee"));
        assert!(!f.money_idents.contains("n"));
        assert!(!f.money_idents.contains("k"));
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "fn lib_fn() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n";
        let lx = lex(src);
        let ranges = test_line_ranges(&lx);
        let p = parse(&lx, &ranges, false);
        let lib = p.fns.iter().find(|f| f.name == "lib_fn").expect("lib_fn");
        let t = p.fns.iter().find(|f| f.name == "t").expect("t");
        assert!(!lib.is_test);
        assert!(t.is_test);
    }

    #[test]
    fn parse_is_deterministic() {
        let src = "impl A { fn f(&self) { self.g(); } } fn g() { panic!(\"x\") }";
        assert_eq!(parse_src(src), parse_src(src));
    }
}
