//! CLI for the workspace invariant linter.
//!
//! ```text
//! cargo run -p spider-lint -- check [--json] [--root DIR]   # verify tree against lint-baseline.json
//! cargo run -p spider-lint -- bless [--root DIR]            # regenerate the baseline
//! ```
//!
//! `check` exits 0 only when the tree matches the baseline exactly: any new
//! violation of any rule fails, and any stale entry (debt that shrank but
//! was not re-blessed) fails too, so the checked-in baseline can only move
//! toward zero.

use spider_lint::{
    baseline_path, check_report, load_baseline, render_baseline, render_json, render_text,
    scan_workspace, workspace_root, Baseline,
};
use std::path::PathBuf;

const USAGE: &str = "usage: spider-lint <check [--json] | bless> [--root DIR] [--baseline FILE]";

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut json = false;
    let mut root = workspace_root();
    let mut baseline_file: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "check" | "bless" if command.is_none() => command = Some(arg.clone()),
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--baseline" => match it.next() {
                Some(f) => baseline_file = Some(PathBuf::from(f)),
                None => return usage("--baseline needs a file"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let Some(command) = command else {
        return usage("missing command");
    };
    let baseline_file = baseline_file.unwrap_or_else(|| baseline_path(&root));

    let current = match scan_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("spider-lint: scan failed under {}: {e}", root.display());
            return 2;
        }
    };

    match command.as_str() {
        "bless" => {
            let base = Baseline::from_violations(&current);
            if let Err(e) = std::fs::write(&baseline_file, render_baseline(&base)) {
                eprintln!("spider-lint: cannot write {}: {e}", baseline_file.display());
                return 2;
            }
            println!(
                "spider-lint: blessed {} violation(s) in {} (file, rule) group(s) to {}",
                base.total(),
                base.entries.len(),
                baseline_file.display()
            );
            for rule in spider_lint::RULES {
                println!("  {rule}: {}", base.rule_total(rule));
            }
            0
        }
        _ => {
            let base = match load_baseline(&baseline_file) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("spider-lint: cannot load baseline: {e}");
                    return 2;
                }
            };
            let report = check_report(&current, &base);
            if json {
                print!("{}", render_json(&report));
            } else {
                print!("{}", render_text(&report));
            }
            if report.ok {
                0
            } else {
                1
            }
        }
    }
}

fn usage(problem: &str) -> i32 {
    eprintln!("spider-lint: {problem}\n{USAGE}");
    2
}
