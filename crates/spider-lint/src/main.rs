//! CLI for the workspace invariant linter.
//!
//! ```text
//! cargo run -p spider-lint -- check [--json] [--root DIR]   # verify tree against lint-baseline.json
//! cargo run -p spider-lint -- bless [--rule NAME] [--root DIR]  # regenerate the baseline
//! cargo run -p spider-lint -- graph [--root DIR]            # emit the call graph as JSON
//! ```
//!
//! `check` exits 0 only when the tree matches the baseline exactly: any new
//! violation of any rule fails, and any stale entry (debt that shrank but
//! was not re-blessed) fails too, so the checked-in baseline can only move
//! toward zero. `bless --rule NAME` rewrites only that rule's entries,
//! keeping every other rule's ratchet where it was. `graph` prints the
//! deterministic cross-crate call graph with per-entry-point reachable
//! panic/wall-clock site lists (the debt-burndown priority order).

use spider_lint::{
    baseline_path, check_report, load_baseline, render_baseline, render_graph_json, render_json,
    render_text, scan_workspace_full, workspace_root, Baseline, RULES,
};
use std::path::PathBuf;

const USAGE: &str =
    "usage: spider-lint <check [--json] | bless [--rule NAME] | graph> [--root DIR] [--baseline FILE]";

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut json = false;
    let mut rule: Option<String> = None;
    let mut root = workspace_root();
    let mut baseline_file: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "check" | "bless" | "graph" if command.is_none() => command = Some(arg.clone()),
            "--json" => json = true,
            "--rule" => match it.next() {
                Some(r) => rule = Some(r.clone()),
                None => return usage("--rule needs a rule name"),
            },
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--baseline" => match it.next() {
                Some(f) => baseline_file = Some(PathBuf::from(f)),
                None => return usage("--baseline needs a file"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let Some(command) = command else {
        return usage("missing command");
    };
    if let Some(r) = &rule {
        if command != "bless" {
            return usage("--rule only applies to bless");
        }
        if !RULES.contains(&r.as_str()) {
            return usage(&format!("unknown rule `{r}` (rules: {})", RULES.join(", ")));
        }
    }
    let baseline_file = baseline_file.unwrap_or_else(|| baseline_path(&root));

    let (current, graph) = match scan_workspace_full(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("spider-lint: scan failed under {}: {e}", root.display());
            return 2;
        }
    };

    match command.as_str() {
        "graph" => {
            print!("{}", render_graph_json(&graph));
            0
        }
        "bless" => {
            let scanned = Baseline::from_violations(&current);
            let base = match &rule {
                Some(r) => {
                    let old = match load_baseline(&baseline_file) {
                        Ok(b) => b,
                        Err(e) => {
                            eprintln!("spider-lint: cannot load baseline: {e}");
                            return 2;
                        }
                    };
                    old.merge_rule(&scanned, r)
                }
                None => scanned,
            };
            if let Err(e) = std::fs::write(&baseline_file, render_baseline(&base)) {
                eprintln!("spider-lint: cannot write {}: {e}", baseline_file.display());
                return 2;
            }
            let scope = rule.as_deref().unwrap_or("all rules");
            println!(
                "spider-lint: blessed {} violation(s) in {} (file, rule) group(s) to {} ({scope})",
                base.total(),
                base.entries.len(),
                baseline_file.display()
            );
            for rule in RULES {
                println!("  {rule}: {}", base.rule_total(rule));
            }
            0
        }
        _ => {
            let base = match load_baseline(&baseline_file) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("spider-lint: cannot load baseline: {e}");
                    return 2;
                }
            };
            let report = check_report(&current, &base);
            if json {
                print!("{}", render_json(&report));
            } else {
                print!("{}", render_text(&report));
            }
            if report.ok {
                0
            } else {
                1
            }
        }
    }
}

fn usage(problem: &str) -> i32 {
    eprintln!("spider-lint: {problem}\n{USAGE}");
    2
}
