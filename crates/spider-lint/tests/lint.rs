//! Integration tests for the workspace linter: per-rule fixtures, allow
//! directives, false-positive resistance (strings/comments/test code),
//! scan determinism, ratchet behavior, and the committed baseline itself.

use spider_lint::{
    check, check_report, lint_source, load_baseline, render_json, scan_workspace, workspace_root,
    Baseline, BaselineEntry, Violation,
};

/// Lints `source` as if it lived at `rel`, returning `(rule, line)` pairs.
fn hits(rel: &str, source: &str) -> Vec<(String, u32)> {
    lint_source(rel, source)
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

fn rules_of(rel: &str, source: &str) -> Vec<String> {
    let mut rules: Vec<String> = lint_source(rel, source)
        .into_iter()
        .map(|v| v.rule)
        .collect();
    rules.dedup();
    rules
}

const SIM_PATH: &str = "crates/spider-sim/src/fixture.rs";
const LIB_PATH: &str = "crates/spider-topology/src/fixture.rs";
const BIN_PATH: &str = "crates/bench/src/bin/fixture.rs";
const TEST_PATH: &str = "tests/fixture.rs";

// ---------------------------------------------------------- determinism --

#[test]
fn determinism_flags_unordered_collections_on_sim_paths() {
    let src =
        "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
    let got = hits(SIM_PATH, src);
    assert_eq!(got.len(), 3, "{got:?}");
    assert!(got.iter().all(|(r, _)| r == "determinism"));
    assert_eq!(got[0].1, 1);
    assert_eq!(got[1].1, 2);
}

#[test]
fn determinism_flags_wall_clock_and_os_randomness() {
    let src = "fn f() { let t = std::time::Instant::now(); }\n";
    assert_eq!(rules_of(SIM_PATH, src), ["determinism"]);
    let src = "fn f() { let t = SystemTime::now(); }\n";
    assert_eq!(rules_of(SIM_PATH, src), ["determinism"]);
    let src = "fn f() { let mut rng = thread_rng(); }\n";
    assert_eq!(rules_of(SIM_PATH, src), ["determinism"]);
    // `Instant` without `::now` is fine (e.g. a type in a signature).
    let src = "fn f(t: std::time::Instant) {}\n";
    assert!(hits(SIM_PATH, src).is_empty());
}

#[test]
fn determinism_ignores_ordered_collections_and_other_crates() {
    let src = "use std::collections::BTreeMap;\nfn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }\n";
    assert!(hits(SIM_PATH, src).is_empty());
    // Same code in a non-deterministic crate is out of scope.
    let src = "use std::collections::HashMap;\nfn f() -> HashMap<u32, u32> { HashMap::new() }\n";
    assert!(hits(LIB_PATH, src).is_empty());
    // The experiments CLI is deliberately allowlisted.
    let src = "fn f() { let t = std::time::Instant::now(); }\n";
    assert!(hits("crates/bench/src/bin/spider_experiments.rs", src).is_empty());
}

#[test]
fn determinism_skips_test_modules_and_mentions_in_strings_or_comments() {
    let src = "\
// A HashMap would be wrong here; Instant::now() too.
fn f() { let s = \"HashMap and SystemTime::now()\"; }
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let _ = HashMap::<u32, u32>::new(); }
}
";
    assert!(hits(SIM_PATH, src).is_empty(), "{:?}", hits(SIM_PATH, src));
}

#[test]
fn determinism_respects_allow_directive() {
    let src = "\
// spider-lint: allow(determinism) — membership-only set, never iterated
fn f() { let s: std::collections::HashSet<u32> = Default::default(); }
";
    assert!(hits(SIM_PATH, src).is_empty());
    // The directive covers its own line and the next one only.
    let src = "\
// spider-lint: allow(determinism)
fn f() {}
fn g() { let s: std::collections::HashSet<u32> = Default::default(); }
";
    assert_eq!(rules_of(SIM_PATH, src), ["determinism"]);
    // Allowing one rule does not allow another.
    let src = "\
// spider-lint: allow(panic-hygiene)
fn f() { let s: std::collections::HashSet<u32> = Default::default(); }
";
    assert_eq!(rules_of(SIM_PATH, src), ["determinism"]);
}

// ---------------------------------------------------------- money-safety --

#[test]
fn money_safety_flags_float_conversions_outside_boundary() {
    let src = "fn f() { let a = Amount::from_tokens(1.5); let b = a.as_tokens(); }\n";
    let got = hits(SIM_PATH, src);
    assert_eq!(got.len(), 2, "{got:?}");
    assert!(got.iter().all(|(r, _)| r == "money-safety"));
    let src = "fn f(a: Amount) -> f64 { a.micros() as f64 }\n";
    assert_eq!(rules_of(SIM_PATH, src), ["money-safety"]);
}

#[test]
fn money_safety_permits_the_declared_boundary_and_tests() {
    let src = "fn f() { let a = Amount::from_tokens(1.5); }\n";
    assert!(hits("crates/spider-opt/src/fluid.rs", src).is_empty());
    assert!(hits("crates/spider-core/src/amount.rs", src).is_empty());
    assert!(hits(TEST_PATH, src).is_empty());
    // `micros()` without a cast is fine.
    let src = "fn f(a: Amount) -> i64 { a.micros() }\n";
    assert!(hits(SIM_PATH, src).is_empty());
}

// --------------------------------------------------------- panic-hygiene --

#[test]
fn panic_hygiene_flags_unwrap_and_expect_in_library_code() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_eq!(rules_of(LIB_PATH, src), ["panic-hygiene"]);
    let src = "fn f(x: Option<u32>) -> u32 { x.expect(\"present\") }\n";
    assert_eq!(rules_of(LIB_PATH, src), ["panic-hygiene"]);
}

#[test]
fn panic_hygiene_skips_tests_bins_and_lookalikes() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(hits(BIN_PATH, src).is_empty());
    assert!(hits(TEST_PATH, src).is_empty());
    let src = "#[test]\nfn t() { Some(1).unwrap(); }\n";
    assert!(hits(LIB_PATH, src).is_empty());
    // unwrap_or / unwrap_or_else / into_inner are different idents.
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0).max(x.unwrap_or(1)) }\n";
    assert!(hits(LIB_PATH, src).is_empty());
    // A doc string mentioning `.unwrap()` is not a call.
    let src = "fn f() { let s = \"call .unwrap() here\"; } // .expect(\"no\")\n";
    assert!(hits(LIB_PATH, src).is_empty());
}

// ---------------------------------------------------------- unsafe-audit --

#[test]
fn unsafe_audit_flags_unsafe_everywhere_first_party() {
    let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
    assert_eq!(rules_of(LIB_PATH, src), ["unsafe-audit"]);
    // Even in test code and bins.
    let src = "#[test]\nfn t() { unsafe {} }\n";
    assert_eq!(rules_of(TEST_PATH, src), ["unsafe-audit"]);
    assert_eq!(rules_of(BIN_PATH, src), ["unsafe-audit"]);
    // ...but not inside strings or comments.
    let src = "// unsafe\nfn f() { let s = \"unsafe\"; }\n";
    assert!(hits(LIB_PATH, src).is_empty());
}

// ---------------------------------------------------------- serde-compat --

#[test]
fn serde_compat_requires_default_on_frozen_struct_fields() {
    let src = "\
#[derive(Serialize, Deserialize)]
pub struct SimReport {
    pub completed: usize,
    #[serde(default)]
    pub extra: Option<u32>,
    #[serde(default, skip_serializing_if = \"Option::is_none\")]
    pub faults: Option<u8>,
}
";
    let got = lint_source(LIB_PATH, src);
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!(got[0].rule, "serde-compat");
    assert_eq!(got[0].line, 3);
    assert!(got[0].message.contains("completed"));
}

#[test]
fn serde_compat_ignores_unfrozen_structs_and_generic_fields() {
    let src = "pub struct Other { pub a: Vec<(u32, u32)>, pub b: std::collections::BTreeMap<String, u32> }\n";
    assert!(hits(LIB_PATH, src).is_empty());
    // Generic types with commas inside angle brackets must not confuse the
    // field walker: only `plain` lacks the attribute.
    let src = "\
pub struct GridSummary {
    #[serde(default)]
    pub m: std::collections::BTreeMap<(String, u32), Vec<u8>>,
    pub plain: u32,
}
";
    let got = lint_source(LIB_PATH, src);
    assert_eq!(got.len(), 1, "{got:?}");
    assert!(got[0].message.contains("plain"));
}

// ------------------------------------------------------------ the ratchet --

fn v(file: &str, line: u32, rule: &str) -> Violation {
    Violation {
        file: file.to_string(),
        line,
        rule: rule.to_string(),
        message: format!("synthetic {rule}"),
    }
}

#[test]
fn ratchet_fails_on_new_violations_and_stale_entries() {
    let baselined = [v("a.rs", 3, "panic-hygiene"), v("a.rs", 9, "panic-hygiene")];
    let base = Baseline::from_violations(&baselined);

    // Exactly at baseline: ok (line numbers may shift, counts matter).
    let moved = [
        v("a.rs", 7, "panic-hygiene"),
        v("a.rs", 30, "panic-hygiene"),
    ];
    assert!(check(&moved, &base).ok());

    // One new violation: regression.
    let more = [
        v("a.rs", 3, "panic-hygiene"),
        v("a.rs", 9, "panic-hygiene"),
        v("a.rs", 11, "panic-hygiene"),
    ];
    let outcome = check(&more, &base);
    assert!(!outcome.ok());
    assert_eq!(outcome.regressions.len(), 1);
    assert_eq!(outcome.regressions[0].baseline, 2);
    assert_eq!(outcome.regressions[0].actual, 3);

    // Debt shrank without re-blessing: stale, also a failure.
    let fewer = [v("a.rs", 3, "panic-hygiene")];
    let outcome = check(&fewer, &base);
    assert!(!outcome.ok());
    assert_eq!(outcome.stale.len(), 1);

    // A violation in a file with no baseline entry is a regression from 0.
    let elsewhere = [v("b.rs", 1, "unsafe-audit")];
    let base_b = Baseline {
        entries: Vec::new(),
    };
    let outcome = check(&elsewhere, &base_b);
    assert_eq!(outcome.regressions.len(), 1);
    assert_eq!(outcome.regressions[0].baseline, 0);
}

#[test]
fn ratchet_keys_are_per_file_and_per_rule() {
    let base = Baseline {
        entries: vec![BaselineEntry {
            file: "a.rs".to_string(),
            rule: "panic-hygiene".to_string(),
            count: 1,
        }],
    };
    // Same count under a different rule does not satisfy the entry.
    let current = [v("a.rs", 1, "unsafe-audit")];
    let outcome = check(&current, &base);
    assert_eq!(outcome.regressions.len(), 1, "{outcome:?}");
    assert_eq!(outcome.stale.len(), 1);
}

// ---------------------------------------------- the workspace, as committed --

#[test]
fn workspace_scan_is_byte_identical_across_runs() {
    let root = workspace_root();
    let a = scan_workspace(&root).expect("scan");
    let b = scan_workspace(&root).expect("scan");
    let base = load_baseline(&spider_lint::baseline_path(&root)).expect("baseline");
    let ja = render_json(&check_report(&a, &base));
    let jb = render_json(&check_report(&b, &base));
    assert_eq!(ja, jb, "check --json must be byte-identical across runs");
    assert!(ja.ends_with('\n'));
}

#[test]
fn committed_tree_matches_committed_baseline() {
    let root = workspace_root();
    let current = scan_workspace(&root).expect("scan");
    let base = load_baseline(&spider_lint::baseline_path(&root)).expect("baseline");
    let report = check_report(&current, &base);
    assert!(
        report.ok,
        "tree deviates from lint-baseline.json:\n{}",
        spider_lint::render_text(&report)
    );
    // The ratchet's headline numbers for this tree.
    let total_of = |rule: &str| {
        report
            .rule_totals
            .iter()
            .find(|rt| rt.rule == rule)
            .map_or(0, |rt| rt.count)
    };
    assert_eq!(
        total_of("determinism"),
        0,
        "determinism debt must stay zero"
    );
    assert_eq!(total_of("unsafe-audit"), 0, "unsafe debt must stay zero");
}

#[test]
fn synthetic_regression_against_committed_baseline_fails() {
    let root = workspace_root();
    let mut current = scan_workspace(&root).expect("scan");
    let base = load_baseline(&spider_lint::baseline_path(&root)).expect("baseline");
    current.push(v("crates/spider-sim/src/engine.rs", 1, "determinism"));
    current.sort();
    let report = check_report(&current, &base);
    assert!(!report.ok);
    assert!(report
        .regressions
        .iter()
        .any(|r| r.rule == "determinism" && r.file == "crates/spider-sim/src/engine.rs"));
}
