//! Integration tests for the workspace linter: per-rule fixtures, allow
//! directives, false-positive resistance (strings/comments/test code),
//! scan determinism, ratchet behavior, and the committed baseline itself.

use spider_lint::{
    check, check_report, lint_source, load_baseline, render_json, scan_workspace, workspace_root,
    Baseline, BaselineEntry, Violation,
};

/// Lints `source` as if it lived at `rel`, returning `(rule, line)` pairs.
fn hits(rel: &str, source: &str) -> Vec<(String, u32)> {
    lint_source(rel, source)
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

fn rules_of(rel: &str, source: &str) -> Vec<String> {
    let mut rules: Vec<String> = lint_source(rel, source)
        .into_iter()
        .map(|v| v.rule)
        .collect();
    rules.dedup();
    rules
}

const SIM_PATH: &str = "crates/spider-sim/src/fixture.rs";
const LIB_PATH: &str = "crates/spider-topology/src/fixture.rs";
const BIN_PATH: &str = "crates/bench/src/bin/fixture.rs";
const TEST_PATH: &str = "tests/fixture.rs";

// ---------------------------------------------------------- determinism --

#[test]
fn determinism_flags_unordered_collections_on_sim_paths() {
    let src =
        "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
    let got = hits(SIM_PATH, src);
    assert_eq!(got.len(), 3, "{got:?}");
    assert!(got.iter().all(|(r, _)| r == "determinism"));
    assert_eq!(got[0].1, 1);
    assert_eq!(got[1].1, 2);
}

#[test]
fn determinism_flags_wall_clock_and_os_randomness() {
    let src = "fn f() { let t = std::time::Instant::now(); }\n";
    assert_eq!(rules_of(SIM_PATH, src), ["determinism"]);
    let src = "fn f() { let t = SystemTime::now(); }\n";
    assert_eq!(rules_of(SIM_PATH, src), ["determinism"]);
    let src = "fn f() { let mut rng = thread_rng(); }\n";
    assert_eq!(rules_of(SIM_PATH, src), ["determinism"]);
    // `Instant` without `::now` is fine (e.g. a type in a signature).
    let src = "fn f(t: std::time::Instant) {}\n";
    assert!(hits(SIM_PATH, src).is_empty());
}

#[test]
fn determinism_ignores_ordered_collections_and_other_crates() {
    let src = "use std::collections::BTreeMap;\nfn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }\n";
    assert!(hits(SIM_PATH, src).is_empty());
    // Same code in a non-deterministic crate is out of scope.
    let src = "use std::collections::HashMap;\nfn f() -> HashMap<u32, u32> { HashMap::new() }\n";
    assert!(hits(LIB_PATH, src).is_empty());
    // The experiments CLI is deliberately allowlisted.
    let src = "fn f() { let t = std::time::Instant::now(); }\n";
    assert!(hits("crates/bench/src/bin/spider_experiments.rs", src).is_empty());
}

#[test]
fn determinism_skips_test_modules_and_mentions_in_strings_or_comments() {
    let src = "\
// A HashMap would be wrong here; Instant::now() too.
fn f() { let s = \"HashMap and SystemTime::now()\"; }
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let _ = HashMap::<u32, u32>::new(); }
}
";
    assert!(hits(SIM_PATH, src).is_empty(), "{:?}", hits(SIM_PATH, src));
}

#[test]
fn determinism_respects_allow_directive() {
    let src = "\
// spider-lint: allow(determinism) — membership-only set, never iterated
fn f() { let s: std::collections::HashSet<u32> = Default::default(); }
";
    assert!(hits(SIM_PATH, src).is_empty());
    // The directive covers its own line and the next one only.
    let src = "\
// spider-lint: allow(determinism)
fn f() {}
fn g() { let s: std::collections::HashSet<u32> = Default::default(); }
";
    assert_eq!(rules_of(SIM_PATH, src), ["determinism"]);
    // Allowing one rule does not allow another.
    let src = "\
// spider-lint: allow(panic-hygiene)
fn f() { let s: std::collections::HashSet<u32> = Default::default(); }
";
    assert_eq!(rules_of(SIM_PATH, src), ["determinism"]);
}

// ---------------------------------------------------------- money-safety --

#[test]
fn money_safety_flags_float_conversions_outside_boundary() {
    let src = "fn f() { let a = Amount::from_tokens(1.5); let b = a.as_tokens(); }\n";
    let got = hits(SIM_PATH, src);
    assert_eq!(got.len(), 2, "{got:?}");
    assert!(got.iter().all(|(r, _)| r == "money-safety"));
    let src = "fn f(a: Amount) -> f64 { a.micros() as f64 }\n";
    assert_eq!(rules_of(SIM_PATH, src), ["money-safety"]);
}

#[test]
fn money_safety_permits_the_declared_boundary_and_tests() {
    let src = "fn f() { let a = Amount::from_tokens(1.5); }\n";
    assert!(hits("crates/spider-opt/src/fluid.rs", src).is_empty());
    assert!(hits("crates/spider-core/src/amount.rs", src).is_empty());
    assert!(hits(TEST_PATH, src).is_empty());
    // `micros()` without a cast is fine.
    let src = "fn f(a: Amount) -> i64 { a.micros() }\n";
    assert!(hits(SIM_PATH, src).is_empty());
}

// --------------------------------------------------------- panic-hygiene --

#[test]
fn panic_hygiene_flags_unwrap_and_expect_in_library_code() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_eq!(rules_of(LIB_PATH, src), ["panic-hygiene"]);
    let src = "fn f(x: Option<u32>) -> u32 { x.expect(\"present\") }\n";
    assert_eq!(rules_of(LIB_PATH, src), ["panic-hygiene"]);
}

#[test]
fn panic_hygiene_skips_tests_bins_and_lookalikes() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(hits(BIN_PATH, src).is_empty());
    assert!(hits(TEST_PATH, src).is_empty());
    let src = "#[test]\nfn t() { Some(1).unwrap(); }\n";
    assert!(hits(LIB_PATH, src).is_empty());
    // unwrap_or / unwrap_or_else / into_inner are different idents.
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0).max(x.unwrap_or(1)) }\n";
    assert!(hits(LIB_PATH, src).is_empty());
    // A doc string mentioning `.unwrap()` is not a call.
    let src = "fn f() { let s = \"call .unwrap() here\"; } // .expect(\"no\")\n";
    assert!(hits(LIB_PATH, src).is_empty());
}

// ---------------------------------------------------------- unsafe-audit --

#[test]
fn unsafe_audit_flags_unsafe_everywhere_first_party() {
    let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
    assert_eq!(rules_of(LIB_PATH, src), ["unsafe-audit"]);
    // Even in test code and bins.
    let src = "#[test]\nfn t() { unsafe {} }\n";
    assert_eq!(rules_of(TEST_PATH, src), ["unsafe-audit"]);
    assert_eq!(rules_of(BIN_PATH, src), ["unsafe-audit"]);
    // ...but not inside strings or comments.
    let src = "// unsafe\nfn f() { let s = \"unsafe\"; }\n";
    assert!(hits(LIB_PATH, src).is_empty());
}

// ---------------------------------------------------------- serde-compat --

#[test]
fn serde_compat_requires_default_on_frozen_struct_fields() {
    let src = "\
#[derive(Serialize, Deserialize)]
pub struct SimReport {
    pub completed: usize,
    #[serde(default)]
    pub extra: Option<u32>,
    #[serde(default, skip_serializing_if = \"Option::is_none\")]
    pub faults: Option<u8>,
}
";
    let got = lint_source(LIB_PATH, src);
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!(got[0].rule, "serde-compat");
    assert_eq!(got[0].line, 3);
    assert!(got[0].message.contains("completed"));
}

#[test]
fn serde_compat_ignores_unfrozen_structs_and_generic_fields() {
    let src = "pub struct Other { pub a: Vec<(u32, u32)>, pub b: std::collections::BTreeMap<String, u32> }\n";
    assert!(hits(LIB_PATH, src).is_empty());
    // Generic types with commas inside angle brackets must not confuse the
    // field walker: only `plain` lacks the attribute.
    let src = "\
pub struct GridSummary {
    #[serde(default)]
    pub m: std::collections::BTreeMap<(String, u32), Vec<u8>>,
    pub plain: u32,
}
";
    let got = lint_source(LIB_PATH, src);
    assert_eq!(got.len(), 1, "{got:?}");
    assert!(got[0].message.contains("plain"));
}

// ------------------------------------------------------------ the ratchet --

fn v(file: &str, line: u32, rule: &str) -> Violation {
    Violation {
        file: file.to_string(),
        line,
        rule: rule.to_string(),
        message: format!("synthetic {rule}"),
    }
}

#[test]
fn ratchet_fails_on_new_violations_and_stale_entries() {
    let baselined = [v("a.rs", 3, "panic-hygiene"), v("a.rs", 9, "panic-hygiene")];
    let base = Baseline::from_violations(&baselined);

    // Exactly at baseline: ok (line numbers may shift, counts matter).
    let moved = [
        v("a.rs", 7, "panic-hygiene"),
        v("a.rs", 30, "panic-hygiene"),
    ];
    assert!(check(&moved, &base).ok());

    // One new violation: regression.
    let more = [
        v("a.rs", 3, "panic-hygiene"),
        v("a.rs", 9, "panic-hygiene"),
        v("a.rs", 11, "panic-hygiene"),
    ];
    let outcome = check(&more, &base);
    assert!(!outcome.ok());
    assert_eq!(outcome.regressions.len(), 1);
    assert_eq!(outcome.regressions[0].baseline, 2);
    assert_eq!(outcome.regressions[0].actual, 3);

    // Debt shrank without re-blessing: stale, also a failure.
    let fewer = [v("a.rs", 3, "panic-hygiene")];
    let outcome = check(&fewer, &base);
    assert!(!outcome.ok());
    assert_eq!(outcome.stale.len(), 1);

    // A violation in a file with no baseline entry is a regression from 0.
    let elsewhere = [v("b.rs", 1, "unsafe-audit")];
    let base_b = Baseline {
        entries: Vec::new(),
    };
    let outcome = check(&elsewhere, &base_b);
    assert_eq!(outcome.regressions.len(), 1);
    assert_eq!(outcome.regressions[0].baseline, 0);
}

#[test]
fn ratchet_keys_are_per_file_and_per_rule() {
    let base = Baseline {
        entries: vec![BaselineEntry {
            file: "a.rs".to_string(),
            rule: "panic-hygiene".to_string(),
            count: 1,
        }],
    };
    // Same count under a different rule does not satisfy the entry.
    let current = [v("a.rs", 1, "unsafe-audit")];
    let outcome = check(&current, &base);
    assert_eq!(outcome.regressions.len(), 1, "{outcome:?}");
    assert_eq!(outcome.stale.len(), 1);
}

// ---------------------------------------------- the workspace, as committed --

#[test]
fn workspace_scan_is_byte_identical_across_runs() {
    let root = workspace_root();
    let a = scan_workspace(&root).expect("scan");
    let b = scan_workspace(&root).expect("scan");
    let base = load_baseline(&spider_lint::baseline_path(&root)).expect("baseline");
    let ja = render_json(&check_report(&a, &base));
    let jb = render_json(&check_report(&b, &base));
    assert_eq!(ja, jb, "check --json must be byte-identical across runs");
    assert!(ja.ends_with('\n'));
}

#[test]
fn committed_tree_matches_committed_baseline() {
    let root = workspace_root();
    let current = scan_workspace(&root).expect("scan");
    let base = load_baseline(&spider_lint::baseline_path(&root)).expect("baseline");
    let report = check_report(&current, &base);
    assert!(
        report.ok,
        "tree deviates from lint-baseline.json:\n{}",
        spider_lint::render_text(&report)
    );
    // The ratchet's headline numbers for this tree.
    let total_of = |rule: &str| {
        report
            .rule_totals
            .iter()
            .find(|rt| rt.rule == rule)
            .map_or(0, |rt| rt.count)
    };
    assert_eq!(
        total_of("determinism"),
        0,
        "determinism debt must stay zero"
    );
    assert_eq!(total_of("unsafe-audit"), 0, "unsafe debt must stay zero");
}

#[test]
fn synthetic_regression_against_committed_baseline_fails() {
    let root = workspace_root();
    let mut current = scan_workspace(&root).expect("scan");
    let base = load_baseline(&spider_lint::baseline_path(&root)).expect("baseline");
    current.push(v("crates/spider-sim/src/engine.rs", 1, "determinism"));
    current.sort();
    let report = check_report(&current, &base);
    assert!(!report.ok);
    assert!(report
        .regressions
        .iter()
        .any(|r| r.rule == "determinism" && r.file == "crates/spider-sim/src/engine.rs"));
}

// ------------------------------------------------------- overflow-safety --

#[test]
fn overflow_safety_flags_raw_arithmetic_on_amounts() {
    let src = "fn f(a: Amount, b: Amount) -> Amount { a + b }\n";
    assert_eq!(rules_of(LIB_PATH, src), ["overflow-safety"]);
    let src = "fn f(total: Amount, v: Amount) { let x = total - v; }\n";
    assert_eq!(rules_of(LIB_PATH, src), ["overflow-safety"]);
    // Compound assignment on a let-ascribed Amount.
    let src = "fn f(v: Amount) { let mut acc: Amount = Amount::ZERO; acc += v; }\n";
    assert_eq!(rules_of(LIB_PATH, src), ["overflow-safety"]);
    // A struct field whose type mentions Amount is money too.
    let src = "\
struct S { total: Amount }
impl S {
    fn bump(&mut self, v: Amount) { self.total = self.total + v; }
}
";
    assert_eq!(rules_of(LIB_PATH, src), ["overflow-safety"]);
}

#[test]
fn overflow_safety_permits_checked_ops_and_non_money_arithmetic() {
    let src = "fn f(a: Amount, b: Amount) -> Option<Amount> { a.checked_add(b) }\n";
    assert!(hits(LIB_PATH, src).is_empty());
    let src = "fn f(a: Amount, b: Amount) -> Amount { a.saturating_sub(b) }\n";
    assert!(hits(LIB_PATH, src).is_empty());
    // Plain integer arithmetic is out of scope.
    let src = "fn f(i: usize) -> usize { i + 1 }\n";
    assert!(hits(LIB_PATH, src).is_empty());
    // `->` is an arrow, not a subtraction; unary minus is not binary.
    let src = "fn f(a: Amount) -> Amount { -a }\n";
    assert!(hits(LIB_PATH, src).is_empty());
}

#[test]
fn overflow_safety_skips_amount_rs_tests_and_allows() {
    let src = "fn f(a: Amount, b: Amount) -> Amount { a + b }\n";
    assert!(hits("crates/spider-core/src/amount.rs", src).is_empty());
    assert!(hits(TEST_PATH, src).is_empty());
    let src = "#[test]\nfn t(a: Amount, b: Amount) { let _ = a + b; }\n";
    assert!(hits(LIB_PATH, src).is_empty());
    let src = "\
fn f(a: Amount, b: Amount) -> Amount {
    // spider-lint: allow(overflow-safety) — bounded by construction
    a + b
}
";
    assert!(hits(LIB_PATH, src).is_empty());
}

// ------------------------------------------------------- shard-ownership --

#[test]
fn shard_ownership_requires_owner_guard_before_ledger_mutation() {
    let src = "\
impl Shard {
    fn apply(&mut self, c: ChannelId) {
        self.ledger.deposit(&self.network, c, n, amount);
    }
}
";
    let got = hits(spider_lint::rules::SHARDED_ENGINE_PATH, src);
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!(got[0].0, "shard-ownership");
    assert_eq!(got[0].1, 3);
}

#[test]
fn shard_ownership_accepts_guarded_mutations_and_reads() {
    let src = "\
impl Shard {
    fn apply(&mut self, c: ChannelId) {
        if self.own(c) {
            self.ledger.deposit(&self.network, c, n, amount);
        }
    }
}
";
    assert!(hits(spider_lint::rules::SHARDED_ENGINE_PATH, src).is_empty());
    // Non-mutating reads need no guard.
    let src = "\
impl Shard {
    fn peek(&self, c: ChannelId) -> (Amount, Amount) {
        self.ledger.balances(c)
    }
}
";
    assert!(hits(spider_lint::rules::SHARDED_ENGINE_PATH, src).is_empty());
}

#[test]
fn shard_ownership_only_applies_to_the_sharded_engine() {
    let src = "\
impl Engine {
    fn apply(&mut self, c: ChannelId) {
        self.ledger.deposit(&self.network, c, n, amount);
    }
}
";
    assert!(!hits(SIM_PATH, src)
        .iter()
        .any(|(r, _)| r == "shard-ownership"));
}

// ------------------------------------------- call-graph reachability rules --

use spider_lint::rules::analyze_source;
use spider_lint::CallGraph;

/// Builds a call graph from `(path, source)` fixture files.
fn graph_of(files: &[(&str, &str)]) -> CallGraph {
    let parsed: Vec<(String, spider_lint::parser::ParsedFile)> = files
        .iter()
        .map(|(rel, src)| (rel.to_string(), analyze_source(rel, src).parsed))
        .collect();
    CallGraph::build(&parsed)
}

const ENGINE_PATH: &str = "crates/spider-sim/src/engine.rs";

#[test]
fn panic_reachability_flags_panics_transitively_reachable_from_entry() {
    let g = graph_of(&[
        (ENGINE_PATH, "pub fn run() { step(); }\nfn step() { helper(3); }\n"),
        (
            "crates/spider-core/src/util.rs",
            "pub fn helper(x: u32) -> u32 { inner(x) }\nfn inner(x: u32) -> u32 { Some(x).unwrap() }\n",
        ),
    ]);
    let vs = g.reachability_violations();
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].rule, "panic-reachability");
    assert_eq!(vs[0].file, "crates/spider-core/src/util.rs");
    assert_eq!(vs[0].line, 2);
    assert!(vs[0].message.contains("run"), "{}", vs[0].message);
}

#[test]
fn reachability_ignores_panics_not_reachable_from_any_entry() {
    let g = graph_of(&[
        (ENGINE_PATH, "pub fn run() { step(); }\nfn step() {}\n"),
        (
            "crates/spider-core/src/util.rs",
            "pub fn orphan(x: Option<u32>) -> u32 { x.unwrap() }\n",
        ),
    ]);
    assert!(g.reachability_violations().is_empty());
}

#[test]
fn wallclock_reachability_flags_reachable_wall_time_reads() {
    let g = graph_of(&[
        (ENGINE_PATH, "pub fn run() { tick(); }\n"),
        (
            "crates/spider-telemetry/src/clock.rs",
            "pub fn tick() { let _ = std::time::Instant::now(); }\n",
        ),
    ]);
    let vs = g.reachability_violations();
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].rule, "wallclock-reachability");
    assert!(vs[0].message.contains("Instant::now"), "{}", vs[0].message);
}

#[test]
fn reachability_does_not_cross_into_bin_or_test_callees() {
    // A name collision with a bin-crate fn must not create an edge: callee
    // resolution is restricted to library paths.
    let g = graph_of(&[
        (ENGINE_PATH, "pub fn run() { record(); }\n"),
        (
            "crates/bench/src/bin/tool.rs",
            "pub fn record() { panic!(\"bin only\"); }\n",
        ),
    ]);
    assert!(g.reachability_violations().is_empty());
}

// -------------------------------------------------------- bless --rule --

#[test]
fn merge_rule_replaces_one_rule_and_preserves_the_rest() {
    let old = Baseline::from_violations(&[
        v("a.rs", 1, "panic-hygiene"),
        v("a.rs", 2, "panic-hygiene"),
        v("b.rs", 1, "overflow-safety"),
    ]);
    // The new scan burned one panic-hygiene hit and grew overflow debt.
    let scan = Baseline::from_violations(&[
        v("a.rs", 1, "panic-hygiene"),
        v("b.rs", 1, "overflow-safety"),
        v("b.rs", 2, "overflow-safety"),
        v("c.rs", 9, "overflow-safety"),
    ]);

    let merged = old.merge_rule(&scan, "panic-hygiene");
    // panic-hygiene taken from the scan...
    let ph: Vec<_> = merged
        .entries
        .iter()
        .filter(|e| e.rule == "panic-hygiene")
        .collect();
    assert_eq!(ph.len(), 1);
    assert_eq!(ph[0].count, 1);
    // ...while the other rule's entries are untouched (no c.rs, count 1).
    let of: Vec<_> = merged
        .entries
        .iter()
        .filter(|e| e.rule == "overflow-safety")
        .collect();
    assert_eq!(of.len(), 1);
    assert_eq!(of[0].file, "b.rs");
    assert_eq!(of[0].count, 1);
    // Selective blessing therefore still fails the untouched rule's check.
    let current = [
        v("a.rs", 1, "panic-hygiene"),
        v("b.rs", 1, "overflow-safety"),
        v("b.rs", 2, "overflow-safety"),
        v("c.rs", 9, "overflow-safety"),
    ];
    let outcome = check(&current, &merged);
    assert!(!outcome.ok());
    assert!(outcome
        .regressions
        .iter()
        .all(|r| r.rule == "overflow-safety"));
}

// ------------------------------------------------ parser robustness (prop) --

use proptest::prelude::*;

/// Maps a byte stream onto Rust-ish source text: a mix of raw characters
/// and high-signal token fragments so the generator actually exercises fn
/// parsing, call scanning, and panic detection.
fn source_from_bytes(bytes: &[u8]) -> String {
    const VOCAB: [&str; 24] = [
        "fn ",
        "f",
        "(",
        ")",
        "{",
        "}",
        "self",
        ".",
        "unwrap",
        "expect",
        "panic!",
        "::",
        "<",
        ">",
        "Amount",
        "a + b",
        "impl T for U ",
        "\"str\"",
        "// c\n",
        "let x: Amount = y;",
        "#[test]",
        "Instant::now()",
        "'a",
        "\n",
    ];
    let mut out = String::new();
    for &b in bytes {
        if b < 128 {
            out.push(b as char);
        } else {
            out.push_str(VOCAB[(b - 128) as usize % VOCAB.len()]);
        }
    }
    out
}

proptest! {
    /// The lexer + parser + every per-file rule never panic and are
    /// deterministic on arbitrary byte soup.
    #[test]
    fn prop_analyze_never_panics_and_is_deterministic(
        bytes in proptest::collection::vec(0u8..=255, 0..300),
    ) {
        let src = source_from_bytes(&bytes);
        let a = analyze_source(LIB_PATH, &src);
        let b = analyze_source(LIB_PATH, &src);
        prop_assert_eq!(a.violations, b.violations);
        prop_assert_eq!(
            format!("{:?}", a.parsed.fns),
            format!("{:?}", b.parsed.fns)
        );
    }

    /// Call-graph construction and JSON rendering never panic and are
    /// byte-identical on arbitrary generated files.
    #[test]
    fn prop_callgraph_is_deterministic(
        bytes in proptest::collection::vec(0u8..=255, 0..200),
    ) {
        let src = source_from_bytes(&bytes);
        let files = [
            ("crates/spider-sim/src/engine.rs", src.as_str()),
            ("crates/spider-core/src/util.rs", "pub fn helper() {}\n"),
        ];
        let parsed: Vec<(String, spider_lint::parser::ParsedFile)> = files
            .iter()
            .map(|(rel, s)| (rel.to_string(), analyze_source(rel, s).parsed))
            .collect();
        let g1 = CallGraph::build(&parsed);
        let g2 = CallGraph::build(&parsed);
        prop_assert_eq!(
            spider_lint::render_graph_json(&g1),
            spider_lint::render_graph_json(&g2)
        );
    }
}

// --------------------------------------- the committed tree, call-graph --

#[test]
fn committed_tree_parses_and_callgraph_is_byte_identical() {
    let root = workspace_root();
    let files = spider_lint::collect_files(&root).expect("collect");
    assert!(files.len() >= 30, "workspace should have many .rs files");
    for file in &files {
        let rel = spider_lint::rel_path(&root, file);
        let source = std::fs::read_to_string(file).expect("read");
        // Parsing is total: it must produce a ParsedFile for every
        // committed source file without panicking, and find at least one
        // fn in any file that textually contains one outside tests.
        let fa = analyze_source(&rel, &source);
        if rel == "crates/spider-sim/src/engine.rs" {
            assert!(
                fa.parsed.fns.iter().any(|f| f.name == "run"),
                "engine.rs must expose `run` to the analyzer"
            );
        }
    }
    let g1 = spider_lint::build_graph(&root).expect("graph");
    let g2 = spider_lint::build_graph(&root).expect("graph");
    let j1 = spider_lint::render_graph_json(&g1);
    let j2 = spider_lint::render_graph_json(&g2);
    assert_eq!(j1, j2, "call-graph JSON must be byte-identical across runs");
    assert!(j1.ends_with('\n'));
    // Every configured entry point resolves to a real function.
    for (file, name) in spider_lint::ENTRY_POINTS {
        assert!(
            !g1.entry_indices(file, name).is_empty(),
            "entry point {file}:{name} not found"
        );
    }
}
