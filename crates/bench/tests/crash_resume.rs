//! Crash-injection lockdown for the checkpoint/resume CLI.
//!
//! Drives the real `spider-experiments` binary: an uninterrupted reference
//! run, a checkpointing run that is `SIGKILL`ed as soon as its first
//! snapshot lands, and a `resume` from the latest valid snapshot. The
//! resumed run's report JSON and trace file must be byte-identical to the
//! reference. Corrupt, truncated, and missing snapshots must make the CLI
//! exit with status 1 and a structured error — never a panic.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_spider-experiments");
const SCHEME: &str = "spider-waterfilling";
const TOPOLOGY: &str = "isp";
const TRACE_STEM: &str = "fig6-isp-spider-waterfilling";

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_nanos();
        let pid = std::process::id();
        let dir = std::env::temp_dir().join(format!("spider-crash-{tag}-{pid}-{nanos:x}"));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The shared scenario flags: reference, crashed, and resumed runs must
/// describe the identical workload or the snapshot fingerprint rejects it.
fn scenario_flags(json: &Path, traces: &Path) -> Vec<String> {
    vec![
        "--scheme".into(),
        SCHEME.into(),
        "--topology".into(),
        TOPOLOGY.into(),
        "--telemetry".into(),
        "--json".into(),
        json.display().to_string(),
        "--trace-out".into(),
        traces.display().to_string(),
    ]
}

fn snapshot_files(dir: &Path) -> Vec<PathBuf> {
    let mut snaps: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "spsn"))
            .collect(),
        Err(_) => Vec::new(),
    };
    snaps.sort();
    snaps
}

fn read(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

#[test]
fn sigkilled_checkpointing_run_resumes_byte_identically() {
    let tmp = TempDir::new("kill");
    let ref_json = tmp.path().join("ref.json");
    let ref_traces = tmp.path().join("ref-traces");
    let res_json = tmp.path().join("res.json");
    let res_traces = tmp.path().join("res-traces");
    let snaps = tmp.path().join("snaps");

    // Uninterrupted reference run.
    let status = Command::new(BIN)
        .arg("fig6")
        .args(scenario_flags(&ref_json, &ref_traces))
        .stdout(Stdio::null())
        .status()
        .expect("spawn reference run");
    assert!(status.success(), "reference run failed: {status}");

    // Checkpointing run, SIGKILLed as soon as the first snapshot lands.
    let mut child = Command::new(BIN)
        .arg("fig6")
        .args(scenario_flags(
            &tmp.path().join("crash.json"),
            &tmp.path().join("crash-traces"),
        ))
        .args(["--checkpoint-dir"])
        .arg(&snaps)
        .args(["--checkpoint-every", "400"])
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn checkpointing run");
    let deadline = Instant::now() + Duration::from_secs(120);
    let interrupted = loop {
        if !snapshot_files(&snaps).is_empty() {
            child.kill().expect("kill checkpointing child");
            break true;
        }
        if let Some(status) = child.try_wait().expect("poll child") {
            // The machine outran the poll loop and the run completed; the
            // resume-equivalence check below still stands.
            assert!(status.success(), "checkpointing run failed: {status}");
            break false;
        }
        assert!(
            Instant::now() < deadline,
            "no snapshot appeared within 120s"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    let status = child.wait().expect("reap child");
    if interrupted {
        assert!(!status.success(), "killed child reported success");
    }
    assert!(
        !snapshot_files(&snaps).is_empty(),
        "no snapshot survived the crash"
    );

    // Resume from the latest valid snapshot in the checkpoint directory and
    // require byte-identical outputs.
    let status = Command::new(BIN)
        .arg("resume")
        .arg(&snaps)
        .args(scenario_flags(&res_json, &res_traces))
        .stdout(Stdio::null())
        .status()
        .expect("spawn resume");
    assert!(status.success(), "resume failed: {status}");
    assert_eq!(
        read(&ref_json),
        read(&res_json),
        "resumed report JSON differs from the uninterrupted run"
    );
    let trace = format!("{TRACE_STEM}.jsonl");
    assert_eq!(
        read(&ref_traces.join(&trace)),
        read(&res_traces.join(&trace)),
        "resumed trace differs from the uninterrupted run"
    );
}

/// Runs `resume` expecting a structured failure: exit code 1 (not a crash
/// signal, not a panic's 101) and a `snapshot error:` line on stderr.
fn assert_structured_rejection(snapshot: &Path, tag: &str) {
    let tmp = TempDir::new(tag);
    let output = Command::new(BIN)
        .arg("resume")
        .arg(snapshot)
        .args(scenario_flags(
            &tmp.path().join("out.json"),
            &tmp.path().join("traces"),
        ))
        .stdout(Stdio::null())
        .output()
        .expect("spawn resume");
    assert_eq!(
        output.status.code(),
        Some(1),
        "expected exit code 1 for {tag}, got {:?}",
        output.status
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("snapshot error:"),
        "missing structured error for {tag}: {stderr}"
    );
}

#[test]
fn damaged_snapshots_are_rejected_with_exit_code_one() {
    let tmp = TempDir::new("damage");
    let snaps = tmp.path().join("snaps");

    // A short checkpointing run to obtain one genuine snapshot.
    let status = Command::new(BIN)
        .arg("fig6")
        .args(scenario_flags(
            &tmp.path().join("ck.json"),
            &tmp.path().join("ck-traces"),
        ))
        .args(["--checkpoint-dir"])
        .arg(&snaps)
        .args(["--checkpoint-every", "1000"])
        .stdout(Stdio::null())
        .status()
        .expect("spawn checkpointing run");
    assert!(status.success(), "checkpointing run failed: {status}");
    let snap = snapshot_files(&snaps)
        .pop()
        .expect("checkpointing run left a snapshot");

    // Bit flip in the middle of the file.
    let mut bytes = read(&snap);
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    let corrupt = tmp.path().join("corrupt.spsn");
    std::fs::write(&corrupt, &bytes).expect("write corrupt snapshot");
    assert_structured_rejection(&corrupt, "bitflip");

    // Truncation.
    let cut = read(&snap);
    let truncated = tmp.path().join("truncated.spsn");
    std::fs::write(&truncated, &cut[..cut.len() / 3]).expect("write truncated snapshot");
    assert_structured_rejection(&truncated, "truncated");

    // Future format version.
    let mut future = read(&snap);
    future[4] = 0xee;
    let future_path = tmp.path().join("future.spsn");
    std::fs::write(&future_path, &future).expect("write future snapshot");
    assert_structured_rejection(&future_path, "future-version");

    // Directory with no valid snapshot at all.
    let empty = tmp.path().join("empty");
    std::fs::create_dir_all(&empty).expect("create empty dir");
    assert_structured_rejection(&empty, "empty-dir");
}
