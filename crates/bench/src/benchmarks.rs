//! Deterministic benchmark harness behind `spider-experiments bench`.
//!
//! A fixed, seeded matrix of end-to-end scenarios (small/medium/large
//! topology × scheme × payment count) is run with a median-of-N wall-time
//! protocol and written as `BENCH_<name>.json`. The report keeps two
//! strictly separated sections:
//!
//! - `results` — throughput stats, success rates, and event counts that are
//!   **byte-identical across runs, hosts, and worker counts** (each repeat
//!   is asserted identical, so the benchmark doubles as a determinism
//!   check);
//! - `timing` — wall-clock milliseconds and events/sec, which obviously
//!   vary between machines and runs.
//!
//! Fixtures and the determinism tests compare [`BenchReport::stripped_json`]
//! (the report without its `timing` section); CI compares `timing`
//! events/sec against a conservative checked-in floor
//! ([`BenchFloor::check`]).

use crate::experiments::{
    resume_scheme, run_scheme, run_scheme_checkpointed, run_scheme_traced,
    run_sharded_scheme_featured, sharded_scheme_for, ExperimentConfig, SchemeChoice, ShardFeatures,
    Topology,
};
use serde::{Deserialize, Serialize};
use spider_sim::{latest_snapshot, CheckpointSpec, SimReport};
use spider_telemetry::{PhaseWallStat, Telemetry};
use std::time::Instant;

/// Version stamp of the `BENCH_*.json` schema.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// One cell of the benchmark matrix.
#[derive(Clone, Debug)]
pub struct BenchScenario {
    /// Stable scenario id, e.g. `medium-ripple400-waterfilling-10k`.
    pub name: String,
    /// Full experiment configuration (topology, workload, seed).
    pub config: ExperimentConfig,
    /// Routing scheme under test.
    pub scheme: SchemeChoice,
    /// `Some(n)`: run on the partition-parallel engine with `n` shards
    /// (`scheme` must be one the sharded engine supports). `None`: the
    /// sequential engine.
    pub shards: Option<usize>,
    /// Sequential-engine features enabled on the sharded run (queued
    /// router policy, fees, congestion, rebalancing). Ignored when
    /// `shards` is `None`.
    pub features: ShardFeatures,
    /// `Some(every)`: warm-start scenario — one unmeasured preparation run
    /// checkpoints every `every` scheduler ticks, and each timed repeat
    /// *resumes* from the latest snapshot, measuring snapshot load plus
    /// the remaining simulation. Because resume is byte-identical to a
    /// straight run, the deterministic `results` row must equal the cold
    /// scenario's (name aside), so the cell doubles as a resume-determinism
    /// check. Sequential engine only.
    pub warm_start: Option<u64>,
}

fn scenario(
    name: &str,
    topology: Topology,
    num_transactions: usize,
    duration: f64,
    scheme: SchemeChoice,
) -> BenchScenario {
    let base = match topology {
        Topology::Isp => ExperimentConfig::isp_quick(),
        Topology::Ripple { .. } => ExperimentConfig::ripple_quick(),
    };
    BenchScenario {
        name: name.to_string(),
        config: ExperimentConfig {
            topology,
            num_transactions,
            duration,
            seed: 1,
            ..base
        },
        scheme,
        shards: None,
        features: ShardFeatures::NONE,
        warm_start: None,
    }
}

fn sharded(mut s: BenchScenario, shards: usize) -> BenchScenario {
    s.name = format!("{}-shards{shards}", s.name);
    s.shards = Some(shards);
    s
}

fn full_features(mut s: BenchScenario) -> BenchScenario {
    s.features = ShardFeatures::ALL;
    s
}

fn warm(mut s: BenchScenario, every: u64) -> BenchScenario {
    s.name = format!("{}-warm{every}", s.name);
    s.warm_start = Some(every);
    s
}

/// The fixed benchmark matrix. `smoke` selects the small-topology subset
/// used by CI; the full matrix adds the medium (Ripple-400) and large
/// (Ripple-1500) end-to-end scenarios.
pub fn bench_matrix(smoke: bool) -> Vec<BenchScenario> {
    let mut out = Vec::new();
    // Small: the paper's 32-node ISP topology, two packet-switched schemes,
    // two payment counts.
    for (scheme, label) in [
        (SchemeChoice::ShortestPath, "shortest"),
        (SchemeChoice::SpiderWaterfilling, "waterfilling"),
    ] {
        out.push(scenario(
            &format!("small-isp-{label}-1k"),
            Topology::Isp,
            1_000,
            20.0,
            scheme,
        ));
        if !smoke {
            out.push(scenario(
                &format!("small-isp-{label}-5k"),
                Topology::Isp,
                5_000,
                60.0,
                scheme,
            ));
        }
    }
    // Sharded smoke pair: same scenario on the partition-parallel engine at
    // 1 and 4 shards. Their deterministic `results` rows must be identical
    // (only the name differs) — CI also byte-compares full reports/traces.
    let sharded_base = scenario(
        "small-isp-sharded-waterfilling-1k",
        Topology::Isp,
        1_000,
        20.0,
        SchemeChoice::SpiderWaterfilling,
    );
    out.push(sharded(sharded_base.clone(), 1));
    out.push(sharded(sharded_base, 4));
    // Sharded-queued smoke cell: the feature-parity surface (queued router
    // policy + fees + congestion + rebalancing) on the 4-shard engine.
    out.push(full_features(sharded(
        scenario(
            "small-isp-sharded-queued-full-1k",
            Topology::Isp,
            1_000,
            20.0,
            SchemeChoice::SpiderWaterfilling,
        ),
        4,
    )));
    // Warm-start smoke cell: an unmeasured preparation run checkpoints at
    // tick 120 of 200, then every timed repeat resumes from that snapshot
    // (snapshot load + the back 40% of the window). Its deterministic row
    // must equal small-isp-waterfilling-1k's — resume is byte-identical.
    out.push(warm(
        scenario(
            "small-isp-waterfilling-1k",
            Topology::Isp,
            1_000,
            20.0,
            SchemeChoice::SpiderWaterfilling,
        ),
        120,
    ));
    if smoke {
        return out;
    }
    // Medium: scale-free Ripple-like graph, 400 nodes. The waterfilling
    // cell here is the PR-gating end-to-end scenario (BENCH_baseline.json).
    for (scheme, label) in [
        (SchemeChoice::ShortestPath, "shortest"),
        (SchemeChoice::SpiderWaterfilling, "waterfilling"),
    ] {
        out.push(scenario(
            &format!("medium-ripple400-{label}-10k"),
            Topology::Ripple { nodes: 400 },
            10_000,
            85.0,
            scheme,
        ));
    }
    // Large: 1500 nodes, waterfilling only (the paper's headline scheme).
    out.push(scenario(
        "large-ripple1500-waterfilling-30k",
        Topology::Ripple { nodes: 1500 },
        30_000,
        85.0,
        SchemeChoice::SpiderWaterfilling,
    ));
    // Sharded speedup pair: the medium workload on the partition-parallel
    // engine at 1 vs 4 shards — the multi-core speedup record in
    // BENCH_baseline.json is the ratio of these two cells' events/sec.
    let medium_sharded = scenario(
        "medium-ripple400-sharded-waterfilling-10k",
        Topology::Ripple { nodes: 400 },
        10_000,
        85.0,
        SchemeChoice::SpiderWaterfilling,
    );
    out.push(sharded(medium_sharded.clone(), 1));
    out.push(sharded(medium_sharded, 4));
    // Tier-3: a 100k-node graph only the sharded engine can turn around.
    // Payment count is kept modest (path discovery is per unique pair) —
    // the cell exists to exercise scale, and its floor lives in
    // bench-floor-full.json.
    out.push(sharded(
        scenario(
            "huge-ripple100k-sharded-shortest-3k",
            Topology::Ripple { nodes: 100_000 },
            3_000,
            30.0,
            SchemeChoice::ShortestPath,
        ),
        4,
    ));
    out
}

/// Deterministic outcome of one scenario — every field here is a pure
/// function of the scenario config, so it must be byte-identical across
/// runs and worker counts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchScenarioResult {
    /// Scenario id.
    pub name: String,
    /// Topology label, e.g. `isp-32` or `ripple-400`.
    pub topology: String,
    /// Scheme display name.
    pub scheme: String,
    /// Payments that arrived during the window.
    pub payments: usize,
    /// Payments fully delivered before their deadline.
    pub completed: usize,
    /// Payments abandoned.
    pub abandoned: usize,
    /// Transaction units transmitted.
    pub units_sent: u64,
    /// `completed / payments`.
    pub success_ratio: f64,
    /// `delivered volume / attempted volume`.
    pub success_volume: f64,
    /// Deterministic simulator event count: arrivals + unit resolutions +
    /// scheduler ticks (see [`event_count`]).
    pub events: u64,
}

/// Wall-clock measurements for one scenario (explicitly non-deterministic;
/// fixtures must ignore this section).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchScenarioTiming {
    /// Scenario id.
    pub name: String,
    /// Wall time of every repeat, milliseconds, in execution order.
    pub wall_ms: Vec<f64>,
    /// Median of `wall_ms`.
    pub median_wall_ms: f64,
    /// `events / median wall seconds` — the regression-gated rate.
    pub events_per_sec: f64,
    /// Per-phase wall-clock breakdown from the last repeat (present only
    /// under `bench --profile`). Lives in the `timing` section so the
    /// stripped report stays byte-identical with or without profiling.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub phases: Vec<PhaseWallStat>,
}

/// The `timing` section of a [`BenchReport`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchTiming {
    /// Worker threads used.
    pub jobs: usize,
    /// Repeats per scenario (median-of-N).
    pub repeats: usize,
    /// Per-scenario wall-clock measurements, in matrix order.
    pub scenarios: Vec<BenchScenarioTiming>,
    /// Total harness wall time, milliseconds.
    pub total_wall_ms: f64,
}

/// A versioned `BENCH_<name>.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Matrix name: `smoke` or `full`.
    pub matrix: String,
    /// Deterministic results, in matrix order.
    pub results: Vec<BenchScenarioResult>,
    /// Wall-clock section, segregated so fixtures can strip it.
    pub timing: BenchTiming,
}

/// [`BenchReport`] minus its `timing` section — the byte-identical part.
#[derive(Serialize)]
struct StrippedBenchReport {
    schema_version: u32,
    matrix: String,
    results: Vec<BenchScenarioResult>,
}

impl BenchReport {
    /// Pretty JSON of the full report.
    pub fn to_json(&self) -> String {
        match serde_json::to_string_pretty(self) {
            Ok(s) => s,
            Err(e) => panic!("bench report serializes: {e}"),
        }
    }

    /// Pretty JSON with the `timing` section removed: byte-identical across
    /// runs and worker counts.
    pub fn stripped_json(&self) -> String {
        let stripped = StrippedBenchReport {
            schema_version: self.schema_version,
            matrix: self.matrix.clone(),
            results: self.results.clone(),
        };
        match serde_json::to_string_pretty(&stripped) {
            Ok(s) => s,
            Err(e) => panic!("stripped bench report serializes: {e}"),
        }
    }

    /// Parses a `BENCH_*.json` document, refusing unknown schema versions.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let report: BenchReport =
            serde_json::from_str(text).map_err(|e| format!("not a bench report: {e}"))?;
        if report.schema_version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "unsupported bench schema version {} (this build reads {})",
                report.schema_version, BENCH_SCHEMA_VERSION
            ));
        }
        Ok(report)
    }
}

/// The deterministic event count of a run: one event per payment arrival,
/// one per transmitted unit (its settle/expiry resolution), and one per
/// scheduler tick. All three addends are pure functions of the config and
/// seed — no wall clock anywhere — so `events` is reproducible while still
/// scaling with the work the event loop actually did.
pub fn event_count(config: &ExperimentConfig, report: &SimReport) -> u64 {
    let ticks = (config.duration / config.sim_config().poll_interval).floor() as u64;
    report.attempted as u64 + report.units_sent + ticks
}

fn topology_label(config: &ExperimentConfig) -> String {
    match config.topology {
        Topology::Isp => "isp-32".to_string(),
        Topology::Ripple { nodes } => format!("ripple-{nodes}"),
    }
}

fn median(sorted_ms: &mut [f64]) -> f64 {
    sorted_ms.sort_by(|a, b| a.total_cmp(b));
    if sorted_ms.is_empty() {
        return 0.0;
    }
    sorted_ms[sorted_ms.len() / 2]
}

/// Scratch directory holding a warm-start scenario's snapshots, removed on
/// drop. Unique per process and instantiation, so concurrent workers and
/// repeated harness runs never collide.
struct WarmStartDir(std::path::PathBuf);

impl WarmStartDir {
    fn new(scenario: &str) -> Self {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "spider-warmstart-{scenario}-{}-{seq}",
            std::process::id()
        ));
        if let Err(e) = std::fs::create_dir_all(&dir) {
            panic!("cannot create warm-start dir {}: {e}", dir.display());
        }
        WarmStartDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for WarmStartDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs one scenario `repeats` times, asserting every repeat produces the
/// identical deterministic result, and returns that result with the
/// median-of-N timing.
///
/// With `profile` set, every repeat runs under a fresh
/// [`Telemetry::profiled`] handle and the last repeat's per-phase
/// wall-clock breakdown is attached to the timing (profiler overhead is
/// included in `wall_ms`, so profiled rates are not comparable to floors).
fn run_scenario(
    s: &BenchScenario,
    repeats: usize,
    profile: bool,
) -> (BenchScenarioResult, BenchScenarioTiming) {
    let repeats = repeats.max(1);
    let mut wall_ms = Vec::with_capacity(repeats);
    let mut result: Option<BenchScenarioResult> = None;
    let mut phases: Vec<PhaseWallStat> = Vec::new();
    // Warm-start scenarios pay one unmeasured preparation run that leaves a
    // snapshot behind; every timed repeat resumes from it. The preparation
    // handle must have the same enabledness as the repeats' handles — the
    // snapshot fingerprint pins the telemetry configuration.
    let warm = s.warm_start.map(|every| {
        assert!(
            s.shards.is_none(),
            "scenario {}: warm-start is sequential-engine only",
            s.name
        );
        let dir = WarmStartDir::new(&s.name);
        let spec = CheckpointSpec::new(every, dir.path());
        let tel = if profile {
            Telemetry::profiled()
        } else {
            Telemetry::disabled()
        };
        if let Err(e) = run_scheme_checkpointed(&s.config, s.scheme, &tel, &spec) {
            panic!("scenario {}: warm-start preparation failed: {e}", s.name);
        }
        let snapshot = match latest_snapshot(dir.path()) {
            Ok(Some(p)) => p,
            Ok(None) => panic!(
                "scenario {}: warm-start preparation left no snapshot (checkpoint \
                 cadence {every} exceeds the run's tick count?)",
                s.name
            ),
            Err(e) => panic!("scenario {}: warm-start snapshot scan failed: {e}", s.name),
        };
        (dir, snapshot)
    });
    for _ in 0..repeats {
        let tel = if profile {
            Telemetry::profiled()
        } else {
            Telemetry::disabled()
        };
        let t0 = Instant::now();
        let report = match (&warm, s.shards) {
            (Some((_, snapshot)), None) => {
                match resume_scheme(&s.config, s.scheme, &tel, snapshot, None) {
                    Ok(report) => report,
                    Err(e) => panic!("scenario {}: warm-start resume failed: {e}", s.name),
                }
            }
            (Some(_), Some(_)) => unreachable!("warm-start is rejected for sharded scenarios"),
            (None, Some(shards)) => {
                let Some(scheme) = sharded_scheme_for(s.scheme) else {
                    panic!(
                        "scenario {}: scheme {:?} is not supported by the sharded engine",
                        s.name, s.scheme
                    );
                };
                run_sharded_scheme_featured(&s.config, scheme, shards, &tel, false, s.features)
            }
            (None, None) => {
                if profile {
                    run_scheme_traced(&s.config, s.scheme, &tel)
                } else {
                    run_scheme(&s.config, s.scheme)
                }
            }
        };
        wall_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        if let Some(profiler) = tel.profiler() {
            phases = profiler.wall_phases();
        }
        let r = BenchScenarioResult {
            name: s.name.clone(),
            topology: topology_label(&s.config),
            scheme: report.scheme.clone(),
            payments: report.attempted,
            completed: report.completed,
            abandoned: report.abandoned,
            units_sent: report.units_sent,
            success_ratio: report.success_ratio(),
            success_volume: report.success_volume(),
            events: event_count(&s.config, &report),
        };
        match &result {
            None => result = Some(r),
            Some(first) => assert_eq!(
                first, &r,
                "scenario {} produced different results across repeats",
                s.name
            ),
        }
    }
    let Some(result) = result else {
        panic!("scenario {} ran zero repeats", s.name);
    };
    let mut sorted = wall_ms.clone();
    let median_wall_ms = median(&mut sorted);
    let events_per_sec = if median_wall_ms > 0.0 {
        result.events as f64 / (median_wall_ms / 1e3)
    } else {
        0.0
    };
    let timing = BenchScenarioTiming {
        name: s.name.clone(),
        wall_ms,
        median_wall_ms,
        events_per_sec,
        phases,
    };
    (result, timing)
}

/// Runs the whole matrix over `jobs` worker threads. Scenario results land
/// in fixed matrix-order slots, so `results` (and [`stripped_json`]
/// output) is byte-identical for any worker count; only `timing` varies.
///
/// [`stripped_json`]: BenchReport::stripped_json
pub fn run_bench(matrix: &[BenchScenario], name: &str, repeats: usize, jobs: usize) -> BenchReport {
    run_bench_profiled(matrix, name, repeats, jobs, false)
}

/// [`run_bench`] with an optional span-profiler attachment: when `profile`
/// is set, each scenario's timing carries a per-phase wall-clock breakdown
/// (see [`BenchScenarioTiming::phases`]). The deterministic `results`
/// section — and therefore [`BenchReport::stripped_json`] — is unaffected.
pub fn run_bench_profiled(
    matrix: &[BenchScenario],
    name: &str,
    repeats: usize,
    jobs: usize,
    profile: bool,
) -> BenchReport {
    let t0 = Instant::now();
    let n = matrix.len();
    let jobs = jobs.clamp(1, n.max(1));
    let mut slots: Vec<Option<(BenchScenarioResult, BenchScenarioTiming)>> =
        (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut i = w;
                    while i < n {
                        out.push((i, run_scenario(&matrix[i], repeats, profile)));
                        i += jobs;
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            let cells = match h.join() {
                Ok(cells) => cells,
                Err(_) => panic!("bench worker panicked"),
            };
            for (i, cell) in cells {
                slots[i] = Some(cell);
            }
        }
    });
    let mut results = Vec::with_capacity(n);
    let mut timings = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        let Some((r, t)) = slot else {
            panic!("bench slot {i} never completed");
        };
        results.push(r);
        timings.push(t);
    }
    BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        matrix: name.to_string(),
        results,
        timing: BenchTiming {
            jobs,
            repeats: repeats.max(1),
            scenarios: timings,
            total_wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        },
    }
}

/// Checked-in events/sec floors for CI regression gating.
///
/// Floors are deliberately far below developer-machine rates (CI runners
/// are slow and noisy); the gate fails only when a scenario drops more
/// than 30% below its floor — a real constant-factor regression, not
/// machine jitter.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchFloor {
    /// Schema version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// `(scenario name, events/sec floor)` pairs.
    pub events_per_sec: Vec<(String, f64)>,
}

impl BenchFloor {
    /// Parses a floor file.
    pub fn from_json(text: &str) -> Result<BenchFloor, String> {
        serde_json::from_str(text).map_err(|e| format!("not a bench floor file: {e}"))
    }

    /// Verifies `report` against the floors: every listed scenario must be
    /// present and reach at least 70% of its floor (>30% regression fails).
    pub fn check(&self, report: &BenchReport) -> Result<(), String> {
        for (name, floor) in &self.events_per_sec {
            let Some(t) = report.timing.scenarios.iter().find(|t| &t.name == name) else {
                return Err(format!("floor scenario `{name}` missing from bench report"));
            };
            let min = floor * 0.7;
            if t.events_per_sec < min {
                return Err(format!(
                    "scenario `{name}` regressed: {:.0} events/sec < 70% of floor {floor:.0}",
                    t.events_per_sec
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_is_small_topology_only() {
        let smoke = bench_matrix(true);
        assert!(!smoke.is_empty());
        assert!(smoke.iter().all(|s| s.config.topology == Topology::Isp));
        let full = bench_matrix(false);
        assert!(full.len() > smoke.len());
        // The PR-gating medium scenario must exist in the full matrix.
        assert!(full
            .iter()
            .any(|s| s.name == "medium-ripple400-waterfilling-10k"));
        // Names are unique (they key the floor file).
        let mut names: Vec<&str> = full.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), full.len());
    }

    #[test]
    fn report_round_trips_and_rejects_future_schema() {
        let matrix = vec![scenario(
            "tiny-isp-shortest",
            Topology::Isp,
            200,
            5.0,
            SchemeChoice::ShortestPath,
        )];
        let report = run_bench(&matrix, "test", 1, 1);
        let parsed = match BenchReport::from_json(&report.to_json()) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        assert_eq!(parsed.results, report.results);
        let mut future = report.clone();
        future.schema_version = BENCH_SCHEMA_VERSION + 1;
        assert!(BenchReport::from_json(&future.to_json()).is_err());
    }

    #[test]
    fn stripped_json_has_no_timing() {
        let matrix = vec![scenario(
            "tiny-isp-shortest",
            Topology::Isp,
            100,
            5.0,
            SchemeChoice::ShortestPath,
        )];
        let report = run_bench(&matrix, "test", 2, 1);
        let stripped = report.stripped_json();
        assert!(!stripped.contains("wall_ms"));
        assert!(!stripped.contains("events_per_sec"));
        assert!(stripped.contains("\"events\""));
    }

    #[test]
    fn floor_check_passes_and_fails_as_expected() {
        let matrix = vec![scenario(
            "tiny-isp-shortest",
            Topology::Isp,
            100,
            5.0,
            SchemeChoice::ShortestPath,
        )];
        let report = run_bench(&matrix, "test", 1, 1);
        let generous = BenchFloor {
            schema_version: BENCH_SCHEMA_VERSION,
            events_per_sec: vec![("tiny-isp-shortest".to_string(), 1.0)],
        };
        assert!(generous.check(&report).is_ok());
        let impossible = BenchFloor {
            schema_version: BENCH_SCHEMA_VERSION,
            events_per_sec: vec![("tiny-isp-shortest".to_string(), 1e15)],
        };
        assert!(impossible.check(&report).is_err());
        let missing = BenchFloor {
            schema_version: BENCH_SCHEMA_VERSION,
            events_per_sec: vec![("no-such-scenario".to_string(), 1.0)],
        };
        assert!(missing.check(&report).is_err());
    }
}
