//! Parallel deterministic experiment grid runner.
//!
//! Expands an [`ExperimentConfig`] into a flat grid of
//! (scheme, sweep-point, trial) cells, runs the cells on a scoped worker
//! pool, and aggregates the per-trial [`SimReport`]s into
//! mean/min/max/stddev summaries.
//!
//! Determinism is the design constraint: every cell derives its own seed
//! from the base seed and its flat index via a SplitMix64 step, results are
//! written into index-addressed slots (never in completion order), and
//! aggregation walks the grid in declaration order. The serialized
//! [`GridResult`] is therefore byte-identical for any worker count.

use crate::experiments::{build_scheme, ExperimentConfig, SchemeChoice};
use serde::{Deserialize, Serialize};
use spider_core::CoreError;
use spider_sim::{run, FaultConfig, FaultPlan, SimReport};
use spider_telemetry::Telemetry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A full experiment grid: every scheme crossed with every sweep point,
/// repeated for `trials` independent seeds.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridConfig {
    /// Template configuration; per-cell overrides replace `capacity` and
    /// `seed`.
    pub base: ExperimentConfig,
    /// Schemes to evaluate (row-major outermost grid axis).
    pub schemes: Vec<SchemeChoice>,
    /// Per-channel capacity sweep points (Fig. 7's axis). Empty means a
    /// single point at `base.capacity`.
    pub capacities: Vec<f64>,
    /// Independent trials per (scheme, capacity) cell group; each trial
    /// gets its own derived seed.
    pub trials: usize,
    /// Run every cell with the ledger auditor enabled and report
    /// violations in the summaries.
    pub audit: bool,
    /// Run every cell with telemetry enabled: reports carry summaries and
    /// percentiles, and [`run_grid_traced`] returns per-cell trace JSONL.
    /// Each cell gets its own handle and traces are index-addressed, so the
    /// output stays byte-identical for any worker count.
    #[serde(default)]
    pub telemetry: bool,
    /// Fault-injection template applied to every cell. Each cell expands
    /// its own [`FaultPlan`] from this config with a seed derived from the
    /// cell seed, so fault schedules differ across trials but are byte-
    /// reproducible at any worker count.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub faults: Option<FaultConfig>,
    /// Channel-outage-rate sweep points (expected outages per channel over
    /// the run). Non-empty only makes sense with `faults`; each point
    /// overrides the template's `channel_outage_rate`, adding a grid axis
    /// between capacity and trial.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub outage_rates: Vec<f64>,
}

impl GridConfig {
    /// All six schemes, a single sweep point at the base capacity, three
    /// trials, auditing on.
    pub fn new(base: ExperimentConfig) -> Self {
        let capacities = vec![base.capacity];
        GridConfig {
            base,
            schemes: SchemeChoice::ALL.to_vec(),
            capacities,
            trials: 3,
            audit: true,
            telemetry: false,
            faults: None,
            outage_rates: Vec::new(),
        }
    }
}

/// One cell of the expanded grid.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    /// Flat index in scheme-major, then capacity, then trial order.
    pub index: usize,
    /// Scheme under test.
    pub scheme: SchemeChoice,
    /// Per-channel capacity for this cell (tokens).
    pub capacity: f64,
    /// Trial number within the (scheme, capacity, outage-rate) group.
    pub trial: usize,
    /// Seed derived from the base seed and `index` (SplitMix64 stream).
    pub seed: u64,
    /// Channel outage rate for this cell (only set when the grid sweeps
    /// `outage_rates`; absent otherwise so fault-off grids serialize
    /// byte-identically to older builds).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub outage_rate: Option<f64>,
}

/// A cell together with the report its simulation produced.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellResult {
    /// The grid cell that was run.
    pub cell: GridCell,
    /// The simulation report for that cell.
    pub report: SimReport,
}

/// Mean/min/max/stddev of one metric across the trials of a cell group.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl MetricSummary {
    /// Summarizes `samples`; all-zero for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return MetricSummary {
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                stddev: 0.0,
            };
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut var = 0.0;
        for &s in samples {
            min = min.min(s);
            max = max.max(s);
            var += (s - mean) * (s - mean);
        }
        MetricSummary {
            mean,
            min,
            max,
            stddev: (var / n).sqrt(),
        }
    }
}

/// Aggregated statistics for one (scheme, capacity) group of trials.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridSummary {
    /// Scheme evaluated in this group.
    pub scheme: SchemeChoice,
    /// Display name as reported by the simulator.
    pub scheme_name: String,
    /// Per-channel capacity of this sweep point (tokens).
    pub capacity: f64,
    /// Channel outage rate of this sweep point (absent when the grid has
    /// no outage-rate axis).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub outage_rate: Option<f64>,
    /// Number of trials aggregated.
    pub trials: usize,
    /// Success ratio (completed / attempted) across trials.
    pub success_ratio: MetricSummary,
    /// Success volume (delivered / attempted volume) across trials.
    pub success_volume: MetricSummary,
    /// Mean completion delay across trials (seconds).
    pub mean_completion_delay: MetricSummary,
    /// Total ledger invariant checks performed across trials.
    pub audit_checks: u64,
    /// Total ledger invariant violations across trials (must be zero on a
    /// correct engine).
    pub audit_violations: usize,
}

/// Everything a grid run produced: per-cell reports in index order plus
/// per-group aggregates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridResult {
    /// One entry per cell, ordered by `cell.index`.
    pub cells: Vec<CellResult>,
    /// One entry per (scheme, capacity) group, in grid declaration order.
    pub summaries: Vec<GridSummary>,
}

impl GridResult {
    /// Total audit violations across every cell of the grid.
    pub fn total_audit_violations(&self) -> usize {
        self.summaries.iter().map(|s| s.audit_violations).sum()
    }

    /// Serializes the whole result as pretty JSON. Because cells are slot-
    /// addressed and summaries walk the grid in declaration order, this
    /// string is byte-identical for any worker count.
    ///
    /// Returns [`CoreError::Internal`] if serialization fails (a bug in the
    /// report types, not a runtime condition).
    pub fn to_json(&self) -> Result<String, CoreError> {
        serde_json::to_string_pretty(self)
            .map_err(|e| CoreError::Internal(format!("grid result serialization failed: {e}")))
    }
}

/// SplitMix64 output function (Steele, Lea & Flood 2014).
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seed for cell `cell_index` of a grid with base seed `base_seed`: the
/// `cell_index`-th output of the SplitMix64 stream seeded at `base_seed`.
/// Indexed (rather than iterated) so any cell's seed is O(1) and cells can
/// be run in any order.
pub fn derive_cell_seed(base_seed: u64, cell_index: u64) -> u64 {
    const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;
    splitmix64_mix(base_seed.wrapping_add(cell_index.wrapping_add(1).wrapping_mul(GAMMA)))
}

/// Expands a grid config into its flat cell list: schemes outermost, then
/// capacities, then outage rates (when swept), trials innermost — so every
/// (scheme, capacity, outage-rate) trial group stays contiguous.
pub fn expand(config: &GridConfig) -> Vec<GridCell> {
    let capacities: &[f64] = if config.capacities.is_empty() {
        std::slice::from_ref(&config.base.capacity)
    } else {
        &config.capacities
    };
    let rates: Vec<Option<f64>> = if config.outage_rates.is_empty() {
        vec![None]
    } else {
        config.outage_rates.iter().copied().map(Some).collect()
    };
    let mut cells =
        Vec::with_capacity(config.schemes.len() * capacities.len() * rates.len() * config.trials);
    for &scheme in &config.schemes {
        for &capacity in capacities {
            for &outage_rate in &rates {
                for trial in 0..config.trials {
                    let index = cells.len();
                    cells.push(GridCell {
                        index,
                        scheme,
                        capacity,
                        trial,
                        seed: derive_cell_seed(config.base.seed, index as u64),
                        outage_rate,
                    });
                }
            }
        }
    }
    cells
}

/// Worker count from the `SPIDER_JOBS` environment variable, falling back
/// to [`std::thread::available_parallelism`]. Always at least 1.
pub fn jobs_from_env() -> usize {
    std::env::var("SPIDER_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

fn run_cell(config: &GridConfig, cell: &GridCell) -> (SimReport, String) {
    let mut exp = config.base.clone();
    exp.capacity = cell.capacity;
    exp.seed = cell.seed;
    let network = exp.network();
    let trace = exp.trace(&network);
    let mut scheme = build_scheme(cell.scheme, &network, &trace, exp.duration);
    let mut sim = exp.sim_config();
    sim.audit = config.audit;
    let tel = if config.telemetry {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    sim.telemetry = tel.clone();
    if let Some(template) = &config.faults {
        let mut fc = template.clone();
        // Decorrelate the fault schedule from the workload stream while
        // keeping it a pure function of the cell.
        fc.seed = splitmix64_mix(cell.seed ^ 0x9e37_79b9_7f4a_7c15);
        if let Some(rate) = cell.outage_rate {
            fc.channel_outage_rate = rate;
        }
        sim.faults = Some(FaultPlan::from_config(&fc, &network, exp.duration));
    }
    let report = run(&network, &trace, scheme.as_mut(), &sim);
    (report, tel.trace_jsonl())
}

/// Runs every cell of the grid on `jobs` scoped worker threads (clamped to
/// `1..=cells`) and aggregates the reports.
///
/// Workers claim cells from a shared atomic counter and write each report
/// into the slot addressed by its cell index, so the output — and its JSON
/// serialization — does not depend on `jobs` or on scheduling order.
///
/// Returns [`CoreError::Internal`] if any worker panicked before filling
/// its slot; the error names the first unfilled cell.
pub fn run_grid(config: &GridConfig, jobs: usize) -> Result<GridResult, CoreError> {
    Ok(run_grid_traced(config, jobs)?.0)
}

/// Like [`run_grid`], but also returns each cell's trace as JSONL, in cell
/// index order (empty strings when `config.telemetry` is off). Traces are
/// slot-addressed like the reports, so every byte of the return value is
/// independent of the worker count.
pub fn run_grid_traced(
    config: &GridConfig,
    jobs: usize,
) -> Result<(GridResult, Vec<String>), CoreError> {
    let cells = expand(config);
    let jobs = jobs.clamp(1, cells.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<(SimReport, String)>>> =
        cells.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let outcome = run_cell(config, &cells[i]);
                // A poisoned slot only means another worker panicked while
                // holding the lock; the slot data itself is still valid.
                *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(outcome);
            });
        }
    });

    let mut reports = Vec::with_capacity(cells.len());
    let mut traces = Vec::with_capacity(cells.len());
    for (i, slot) in slots.into_iter().enumerate() {
        let (report, trace) = slot
            .into_inner()
            .unwrap_or_else(|p| p.into_inner())
            .ok_or_else(|| CoreError::Internal(format!("grid cell {i} produced no report")))?;
        reports.push(report);
        traces.push(trace);
    }

    let results: Vec<CellResult> = cells
        .into_iter()
        .zip(reports)
        .map(|(cell, report)| CellResult { cell, report })
        .collect();
    let summaries = summarize(config, &results);
    Ok((
        GridResult {
            cells: results,
            summaries,
        },
        traces,
    ))
}

fn summarize(config: &GridConfig, results: &[CellResult]) -> Vec<GridSummary> {
    let mut summaries = Vec::new();
    // Cells are contiguous per (scheme, capacity, outage-rate) group by
    // construction.
    for group in results.chunks(config.trials.max(1)) {
        if group.is_empty() {
            continue;
        }
        let metric = |f: &dyn Fn(&SimReport) -> f64| {
            MetricSummary::from_samples(&group.iter().map(|c| f(&c.report)).collect::<Vec<f64>>())
        };
        summaries.push(GridSummary {
            scheme: group[0].cell.scheme,
            scheme_name: group[0].report.scheme.clone(),
            capacity: group[0].cell.capacity,
            outage_rate: group[0].cell.outage_rate,
            trials: group.len(),
            success_ratio: metric(&SimReport::success_ratio),
            success_volume: metric(&SimReport::success_volume),
            mean_completion_delay: metric(&|r: &SimReport| r.mean_completion_delay),
            audit_checks: group.iter().map(|c| c.report.audit_checks).sum(),
            audit_violations: group.iter().map(|c| c.report.audit_violations.len()).sum(),
        });
    }
    summaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Topology;

    fn tiny_config() -> GridConfig {
        let mut base = ExperimentConfig::isp_quick();
        base.num_transactions = 200;
        base.duration = 10.0;
        GridConfig {
            base,
            schemes: vec![SchemeChoice::ShortestPath, SchemeChoice::SpiderWaterfilling],
            capacities: vec![],
            trials: 2,
            audit: true,
            telemetry: false,
            faults: None,
            outage_rates: Vec::new(),
        }
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..16).map(|i| derive_cell_seed(7, i)).collect();
        let b: Vec<u64> = (0..16).map(|i| derive_cell_seed(7, i)).collect();
        assert_eq!(a, b);
        for i in 0..a.len() {
            for j in (i + 1)..a.len() {
                assert_ne!(a[i], a[j], "cells {i} and {j} collided");
            }
        }
        assert_ne!(derive_cell_seed(7, 0), derive_cell_seed(8, 0));
    }

    #[test]
    fn expansion_is_scheme_major_with_flat_indices() {
        let mut config = tiny_config();
        config.capacities = vec![10_000.0, 30_000.0];
        let cells = expand(&config);
        assert_eq!(cells.len(), 2 * 2 * 2);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.seed, derive_cell_seed(config.base.seed, i as u64));
        }
        assert_eq!(cells[0].scheme, SchemeChoice::ShortestPath);
        assert_eq!(cells[0].capacity, 10_000.0);
        assert_eq!(cells[1].trial, 1);
        assert_eq!(cells[2].capacity, 30_000.0);
        assert_eq!(cells[4].scheme, SchemeChoice::SpiderWaterfilling);
    }

    #[test]
    fn empty_sweep_falls_back_to_base_capacity() {
        let config = tiny_config();
        let cells = expand(&config);
        assert_eq!(cells.len(), 2 * 2);
        assert!(cells.iter().all(|c| c.capacity == config.base.capacity));
    }

    #[test]
    fn metric_summary_statistics() {
        let s = MetricSummary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.stddev - 1.25f64.sqrt()).abs() < 1e-12);
        let empty = MetricSummary::from_samples(&[]);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.stddev, 0.0);
    }

    #[test]
    fn jobs_from_env_is_positive() {
        assert!(jobs_from_env() >= 1);
    }

    #[test]
    fn grid_runs_audited_and_identically_at_any_job_count() {
        let config = tiny_config();
        let serial = run_grid(&config, 1).unwrap();
        let parallel = run_grid(&config, 3).unwrap();

        assert_eq!(serial.cells.len(), 4);
        assert_eq!(serial.summaries.len(), 2);
        for s in &serial.summaries {
            assert_eq!(s.trials, 2);
            assert!(s.audit_checks > 0, "{}: auditor never ran", s.scheme_name);
            assert_eq!(
                s.audit_violations, 0,
                "{}: ledger violations",
                s.scheme_name
            );
            assert!(
                s.success_ratio.mean > 0.0,
                "{} routed nothing",
                s.scheme_name
            );
            assert!(s.success_ratio.min <= s.success_ratio.mean);
            assert!(s.success_ratio.mean <= s.success_ratio.max);
        }
        assert_eq!(serial.total_audit_violations(), 0);
        assert_eq!(
            serial.to_json().unwrap(),
            parallel.to_json().unwrap(),
            "output depends on worker count"
        );
    }

    #[test]
    fn audit_can_be_disabled_per_grid() {
        let mut config = tiny_config();
        config.schemes = vec![SchemeChoice::ShortestPath];
        config.trials = 1;
        config.audit = false;
        let result = run_grid(&config, 1).unwrap();
        assert_eq!(result.summaries[0].audit_checks, 0);
    }

    #[test]
    fn outage_rate_axis_expands_between_capacity_and_trial() {
        let mut config = tiny_config();
        config.faults = Some(FaultConfig::default());
        config.outage_rates = vec![0.0, 1.0];
        let cells = expand(&config);
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert_eq!(cells[0].outage_rate, Some(0.0));
        assert_eq!(cells[1].outage_rate, Some(0.0));
        assert_eq!(cells[1].trial, 1);
        assert_eq!(cells[2].outage_rate, Some(1.0));
        assert_eq!(cells[4].scheme, SchemeChoice::SpiderWaterfilling);
        // No sweep -> the field stays absent (JSON unchanged from older
        // builds).
        let plain = expand(&tiny_config());
        assert!(plain.iter().all(|c| c.outage_rate.is_none()));
        let json = serde_json::to_string(&plain[0]).unwrap();
        assert!(!json.contains("outage_rate"), "{json}");
    }

    #[test]
    fn fault_grid_is_audit_clean_and_identical_at_any_job_count() {
        let mut config = tiny_config();
        config.schemes = vec![SchemeChoice::SpiderWaterfilling];
        config.faults = Some(FaultConfig {
            channel_outage_rate: 1.0,
            outage_duration: 2.0,
            node_churn_rate: 0.2,
            node_downtime: 2.0,
            ..FaultConfig::default()
        });
        let serial = run_grid(&config, 1).unwrap();
        let parallel = run_grid(&config, 4).unwrap();
        assert_eq!(
            serial.to_json().unwrap(),
            parallel.to_json().unwrap(),
            "fault grids must not depend on worker count"
        );
        assert_eq!(serial.total_audit_violations(), 0);
        let stats = serial.cells[0].report.faults.expect("fault stats");
        assert!(stats.outages > 0, "outage rate 1.0 must fire: {stats:?}");
        // Trials draw different fault schedules (seeds are per-cell).
        let s0 = serial.cells[0].report.faults.unwrap();
        let s1 = serial.cells[1].report.faults.unwrap();
        assert!(
            s0 != s1 || serial.cells[0].report.units_sent != serial.cells[1].report.units_sent,
            "independent trials should differ"
        );
    }

    #[test]
    fn grid_config_round_trips_through_json() {
        let mut config = GridConfig::new(ExperimentConfig::isp_quick());
        config.base.topology = Topology::Ripple { nodes: 50 };
        let json = serde_json::to_string(&config).unwrap();
        let back: GridConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schemes, config.schemes);
        assert_eq!(back.trials, config.trials);
        assert_eq!(back.base.capacity, config.base.capacity);
    }
}
