//! Experiment definitions: one function per table/figure of the paper.
//!
//! Every experiment is deterministic given its config (seed included) and
//! returns structured results; the `spider-experiments` binary prints them
//! as the paper-style rows, and EXPERIMENTS.md records paper-vs-measured.

use serde::{Deserialize, Serialize};
use spider_core::{Amount, DemandMatrix, Network, NodeId};
use spider_opt::fluid::FluidProblem;
use spider_opt::primal_dual::PrimalDualConfig;
use spider_routing::{
    LpScheme, MaxFlowScheme, PathCache, PathStrategy, PriceScheme, RoutingScheme,
    ShortestPathScheme, SilentWhispersScheme, SpeedyMurmursScheme, WaterfillingScheme,
};
use spider_sim::{
    run, run_sharded, CheckpointSpec, ShardScheme, ShardedConfig, SimConfig, SimReport,
    SnapshotError,
};
use spider_telemetry::Telemetry;
use spider_topology::{isp_topology, ripple_topology_scaled, Partition};
use spider_workload::{demand_matrix, isp_sizes, ripple_sizes, TraceConfig, Transaction};

/// Which evaluation topology an experiment runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// 32-node / 152-edge ISP-like graph (paper's ISP topology).
    Isp,
    /// Scale-free Ripple-like graph with `nodes` nodes (paper: 3774).
    Ripple {
        /// Node count (the paper's full snapshot is 3774).
        nodes: usize,
    },
}

/// Scheme selector for experiment configs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchemeChoice {
    /// SilentWhispers landmark routing (atomic).
    SilentWhispers,
    /// SpeedyMurmurs embedding routing (atomic).
    SpeedyMurmurs,
    /// Packet-switched shortest path with SRPT.
    ShortestPath,
    /// Per-transaction max-flow (atomic).
    MaxFlow,
    /// Spider with waterfilling over 4 edge-disjoint shortest paths.
    SpiderWaterfilling,
    /// Spider driven by the fluid LP (solved with the decentralized
    /// primal-dual algorithm over the estimated demand matrix).
    SpiderLp,
}

impl SchemeChoice {
    /// All six schemes in the paper's presentation order.
    pub const ALL: [SchemeChoice; 6] = [
        SchemeChoice::SilentWhispers,
        SchemeChoice::SpeedyMurmurs,
        SchemeChoice::ShortestPath,
        SchemeChoice::MaxFlow,
        SchemeChoice::SpiderWaterfilling,
        SchemeChoice::SpiderLp,
    ];
}

/// Configuration of one comparison run (Fig. 6 / Fig. 7 style).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Topology under test.
    pub topology: Topology,
    /// Per-channel capacity in tokens (paper: 30 000 for Fig. 6).
    pub capacity: f64,
    /// Number of transactions to generate.
    pub num_transactions: usize,
    /// Measurement window in seconds (paper: 200 s ISP, 85 s Ripple).
    pub duration: f64,
    /// RNG seed for topology + workload.
    pub seed: u64,
    /// Per-payment deadline (seconds).
    pub deadline: f64,
    /// Maximum transaction unit for packet-switched schemes.
    pub mtu: f64,
    /// Sender-skew divisor: senders follow `exp(-i / (n / divisor))`.
    /// Larger divisor = stronger concentration on few senders.
    pub sender_skew: f64,
}

impl ExperimentConfig {
    /// Scaled-down ISP defaults that finish in seconds (the paper's full
    /// scale is 200 000 transactions over 200 s; pass `--full` in the
    /// binary for that).
    pub fn isp_quick() -> Self {
        ExperimentConfig {
            topology: Topology::Isp,
            capacity: 30_000.0,
            num_transactions: 20_000,
            duration: 200.0,
            seed: 1,
            deadline: 5.0,
            mtu: 10.0,
            sender_skew: 4.0,
        }
    }

    /// The paper's full-scale ISP setup.
    pub fn isp_full() -> Self {
        ExperimentConfig {
            num_transactions: 200_000,
            ..Self::isp_quick()
        }
    }

    /// Scaled-down Ripple defaults (400 nodes; the paper's snapshot has
    /// 3774 — the density and workload shape are preserved). The sender
    /// skew is higher than the ISP workload's: real Ripple traffic
    /// concentrates on a few gateway accounts, and this is what makes the
    /// Ripple experiment contended at 30 000 capacity.
    pub fn ripple_quick() -> Self {
        ExperimentConfig {
            topology: Topology::Ripple { nodes: 400 },
            capacity: 30_000.0,
            num_transactions: 30_000,
            duration: 85.0,
            seed: 1,
            deadline: 5.0,
            mtu: 10.0,
            sender_skew: 16.0,
        }
    }

    /// Full-scale Ripple setup (3774 nodes, 75 000 transactions, 85 s).
    pub fn ripple_full() -> Self {
        ExperimentConfig {
            topology: Topology::Ripple { nodes: 3774 },
            num_transactions: 75_000,
            ..Self::ripple_quick()
        }
    }

    /// Builds the topology.
    pub fn network(&self) -> Network {
        let cap = Amount::from_tokens(self.capacity);
        match self.topology {
            Topology::Isp => isp_topology(cap),
            Topology::Ripple { nodes } => ripple_topology_scaled(nodes, cap, self.seed),
        }
    }

    /// Generates the transaction trace for this config.
    pub fn trace(&self, network: &Network) -> Vec<Transaction> {
        let (sizes, mut cfg) = match self.topology {
            Topology::Isp => (
                isp_sizes(),
                TraceConfig::isp_default(network.num_nodes(), self.num_transactions, self.duration),
            ),
            Topology::Ripple { .. } => (
                ripple_sizes(),
                TraceConfig::ripple_default(
                    network.num_nodes(),
                    self.num_transactions,
                    self.duration,
                ),
            ),
        };
        cfg.seed = self.seed;
        cfg.senders = spider_workload::SenderDistribution::Exponential {
            scale: network.num_nodes() as f64 / self.sender_skew,
        };
        spider_workload::generate(&cfg, &sizes)
    }

    /// Simulator settings for this config.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::new(self.duration);
        cfg.deadline = self.deadline;
        cfg.mtu = Amount::from_tokens(self.mtu);
        cfg
    }

    /// Sharded-engine settings for this config (same deadline/MTU/window
    /// as [`sim_config`](Self::sim_config)).
    pub fn sharded_config(&self, scheme: ShardScheme) -> ShardedConfig {
        let sim = self.sim_config();
        let mut cfg = ShardedConfig::new(self.duration);
        cfg.deadline = sim.deadline;
        cfg.mtu = sim.mtu;
        cfg.scheme = scheme;
        cfg
    }
}

/// The sharded-engine scheme corresponding to a [`SchemeChoice`], for the
/// schemes the partition-parallel engine supports.
pub fn sharded_scheme_for(choice: SchemeChoice) -> Option<ShardScheme> {
    match choice {
        SchemeChoice::ShortestPath => Some(ShardScheme::ShortestPath),
        SchemeChoice::SpiderWaterfilling => Some(ShardScheme::Waterfilling),
        _ => None,
    }
}

/// Runs one experiment on the partition-parallel engine: same topology and
/// trace as [`run_scheme`], split over `shards` threads by a deterministic
/// [`Partition`] seeded from the experiment seed. The report (and trace,
/// when `telemetry` is enabled) is byte-identical for any `shards` value.
pub fn run_sharded_scheme(
    config: &ExperimentConfig,
    scheme: ShardScheme,
    shards: usize,
    telemetry: &Telemetry,
) -> SimReport {
    run_sharded_scheme_audited(config, scheme, shards, telemetry, false)
}

/// [`run_sharded_scheme`] with the per-epoch ledger auditor switchable on
/// (every shard checks its own ledger copy each epoch; violations surface
/// in the report).
pub fn run_sharded_scheme_audited(
    config: &ExperimentConfig,
    scheme: ShardScheme,
    shards: usize,
    telemetry: &Telemetry,
    audit: bool,
) -> SimReport {
    run_sharded_scheme_featured(
        config,
        scheme,
        shards,
        telemetry,
        audit,
        ShardFeatures::NONE,
    )
}

/// Sequential-engine features to switch on for a sharded experiment run
/// (the feature-parity surface: router queues, fees, congestion control,
/// rebalancing). All off by default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardFeatures {
    /// Queued router policy (per-channel queues at the owning shard).
    pub queued: bool,
    /// Uniform per-hop fee schedule (10 micros + 1000 ppm).
    pub fees: bool,
    /// Per-payment AIMD congestion windows.
    pub congestion: bool,
    /// Aggressive on-chain rebalancing on owned channels.
    pub rebalance: bool,
}

impl ShardFeatures {
    /// Everything off — the PR 6 baseline surface.
    pub const NONE: ShardFeatures = ShardFeatures {
        queued: false,
        fees: false,
        congestion: false,
        rebalance: false,
    };

    /// Everything on.
    pub const ALL: ShardFeatures = ShardFeatures {
        queued: true,
        fees: true,
        congestion: true,
        rebalance: true,
    };

    /// Applies the enabled features to a sharded config.
    pub fn apply(&self, cfg: &mut ShardedConfig, network: &Network) {
        if self.queued {
            cfg.policy = spider_sim::engine_sharded::ShardPolicy::Queued;
        }
        if self.fees {
            cfg.fees = Some(spider_routing::FeeSchedule::uniform(
                network,
                Amount::from_micros(10),
                1_000,
            ));
        }
        if self.congestion {
            cfg.congestion = Some(spider_sim::CongestionConfig::default());
        }
        if self.rebalance {
            cfg.rebalance = Some(spider_sim::RebalancePolicy::aggressive());
        }
    }
}

/// [`run_sharded_scheme_audited`] with a [`ShardFeatures`] selection — the
/// full feature-parity surface of the partition-parallel engine. Reports
/// and traces stay byte-identical across shard counts for any selection.
pub fn run_sharded_scheme_featured(
    config: &ExperimentConfig,
    scheme: ShardScheme,
    shards: usize,
    telemetry: &Telemetry,
    audit: bool,
    features: ShardFeatures,
) -> SimReport {
    let network = config.network();
    let trace = config.trace(&network);
    let partition = if shards <= 1 {
        Partition::single(&network)
    } else {
        Partition::build(&network, shards, config.seed)
    };
    let mut cfg = config.sharded_config(scheme);
    features.apply(&mut cfg, &network);
    cfg.telemetry = telemetry.clone();
    cfg.audit = audit;
    run_sharded(&network, &trace, &partition, &cfg)
}

/// Builds a scheme instance for a given experiment.
///
/// The Spider (LP) scheme estimates the demand matrix from the *entire*
/// trace (the paper: "an estimate of the demand matrix ... for the entire
/// duration of the simulation") and solves the balanced fluid LP with the
/// decentralized primal-dual algorithm over 4 edge-disjoint shortest paths
/// per demand pair.
pub fn build_scheme(
    choice: SchemeChoice,
    network: &Network,
    trace: &[Transaction],
    duration: f64,
) -> Box<dyn RoutingScheme> {
    match choice {
        SchemeChoice::SilentWhispers => Box::new(SilentWhispersScheme::new(network, 3)),
        SchemeChoice::SpeedyMurmurs => Box::new(SpeedyMurmursScheme::new(network, 3)),
        SchemeChoice::ShortestPath => Box::new(ShortestPathScheme::new()),
        SchemeChoice::MaxFlow => Box::new(MaxFlowScheme::new()),
        SchemeChoice::SpiderWaterfilling => Box::new(WaterfillingScheme::new()),
        SchemeChoice::SpiderLp => {
            let demand = demand_matrix(trace, 0.0, duration);
            let (paths, demand) = lp_candidate_paths(network, &demand);
            let config = PrimalDualConfig {
                alpha: 0.05,
                eta: 0.05,
                kappa: 0.05,
                max_iters: 5_000,
                ..Default::default()
            };
            Box::new(LpScheme::solve_decentralized(
                network, &demand, &paths, 0.5, &config,
            ))
        }
    }
}

/// Candidate paths for the LP: 4 edge-disjoint shortest paths per
/// demand-bearing pair. To keep the LP tractable on large topologies, pairs
/// are capped to the heaviest `MAX_LP_PAIRS` by rate (dropped pairs are
/// treated as zero-rate, i.e. never attempted — reported in the harness).
pub fn lp_candidate_paths(
    network: &Network,
    demand: &DemandMatrix,
) -> (Vec<spider_core::Path>, DemandMatrix) {
    const MAX_LP_PAIRS: usize = 50_000;
    let mut pairs: Vec<(NodeId, NodeId, f64)> = demand.entries().collect();
    pairs.sort_by(|a, b| b.2.total_cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
    pairs.truncate(MAX_LP_PAIRS);
    let mut kept = DemandMatrix::new();
    let mut cache = PathCache::new(PathStrategy::EdgeDisjoint(4));
    let mut paths = Vec::new();
    for &(s, d, r) in &pairs {
        kept.set(s, d, r);
        paths.extend(
            cache
                .paths(network, s, d)
                .iter()
                .map(|p| spider_core::Path::clone(p)),
        );
    }
    (paths, kept)
}

/// Runs one scheme on one experiment config.
pub fn run_scheme(config: &ExperimentConfig, choice: SchemeChoice) -> SimReport {
    run_scheme_traced(config, choice, &Telemetry::disabled())
}

/// Runs one scheme with the given telemetry handle installed in the
/// simulator; the handle keeps the full trace and metrics after the run.
pub fn run_scheme_traced(
    config: &ExperimentConfig,
    choice: SchemeChoice,
    telemetry: &Telemetry,
) -> SimReport {
    let network = config.network();
    let trace = config.trace(&network);
    let mut scheme = build_scheme(choice, &network, &trace, config.duration);
    let mut sim = config.sim_config();
    sim.telemetry = telemetry.clone();
    run(&network, &trace, scheme.as_mut(), &sim)
}

/// Parses a scheme name as printed in reports and trace-file stems
/// (e.g. `spider-waterfilling`) back into a [`SchemeChoice`].
pub fn scheme_choice_by_name(name: &str) -> Option<SchemeChoice> {
    match name {
        "silentwhispers" => Some(SchemeChoice::SilentWhispers),
        "speedymurmurs" => Some(SchemeChoice::SpeedyMurmurs),
        "shortest-path" => Some(SchemeChoice::ShortestPath),
        "max-flow" => Some(SchemeChoice::MaxFlow),
        "spider-waterfilling" => Some(SchemeChoice::SpiderWaterfilling),
        "spider-lp" => Some(SchemeChoice::SpiderLp),
        _ => None,
    }
}

/// Like [`run_scheme_traced`], but writes a crash-safe snapshot into
/// `ckpt.dir` every `ckpt.every` scheduler ticks (sequential engine).
pub fn run_scheme_checkpointed(
    config: &ExperimentConfig,
    choice: SchemeChoice,
    telemetry: &Telemetry,
    ckpt: &CheckpointSpec,
) -> Result<SimReport, SnapshotError> {
    let network = config.network();
    let trace = config.trace(&network);
    let mut scheme = build_scheme(choice, &network, &trace, config.duration);
    let mut sim = config.sim_config();
    sim.telemetry = telemetry.clone();
    spider_sim::engine::run_checkpointed(&network, &trace, scheme.as_mut(), &sim, ckpt)
}

/// Resumes a [`run_scheme_checkpointed`] run from a snapshot and carries it
/// to completion, optionally continuing to checkpoint. The finished run's
/// report and trace are byte-identical to an uninterrupted run of the same
/// scenario (the snapshot's fingerprint guards against scenario mixups).
pub fn resume_scheme(
    config: &ExperimentConfig,
    choice: SchemeChoice,
    telemetry: &Telemetry,
    snapshot: &std::path::Path,
    ckpt: Option<&CheckpointSpec>,
) -> Result<SimReport, SnapshotError> {
    let network = config.network();
    let trace = config.trace(&network);
    let mut scheme = build_scheme(choice, &network, &trace, config.duration);
    let mut sim = config.sim_config();
    sim.telemetry = telemetry.clone();
    spider_sim::engine::resume(&network, &trace, scheme.as_mut(), &sim, snapshot, ckpt)
}

/// Fig. 6: all six schemes on one topology at fixed capacity.
///
/// Schemes run in parallel worker threads (each run is independent and
/// deterministic).
pub fn fig6(config: &ExperimentConfig) -> Vec<SimReport> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = SchemeChoice::ALL
            .iter()
            .map(|&choice| {
                let cfg = config.clone();
                scope.spawn(move || run_scheme(&cfg, choice))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scheme run must not panic"))
            .collect()
    })
}

/// Fig. 6 with telemetry enabled: every scheme runs with its own enabled
/// [`Telemetry`] handle and the pairs are returned in scheme order, so the
/// caller can write one trace file per scheme.
pub fn fig6_traced(config: &ExperimentConfig) -> Vec<(SimReport, Telemetry)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = SchemeChoice::ALL
            .iter()
            .map(|&choice| {
                let cfg = config.clone();
                scope.spawn(move || {
                    let tel = Telemetry::enabled();
                    let report = run_scheme_traced(&cfg, choice, &tel);
                    (report, tel)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scheme run must not panic"))
            .collect()
    })
}

/// Fig. 7: capacity sweep on the ISP topology for all schemes.
/// Returns `(capacity, reports)` per sweep point.
pub fn fig7(base: &ExperimentConfig, capacities: &[f64]) -> Vec<(f64, Vec<SimReport>)> {
    capacities
        .iter()
        .map(|&cap| {
            let cfg = ExperimentConfig {
                capacity: cap,
                ..base.clone()
            };
            (cap, fig6(&cfg))
        })
        .collect()
}

/// Result of the Fig. 4 / Fig. 5 analytical experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Total demand in the example (paper: 12).
    pub total_demand: f64,
    /// Max throughput restricted to shortest paths (paper Fig. 4b: 5).
    pub shortest_path_throughput: f64,
    /// Optimal balanced throughput (paper Fig. 4c: 8).
    pub optimal_throughput: f64,
    /// Maximum circulation value ν(C*) (paper Fig. 5b: 8).
    pub circulation_value: f64,
    /// DAG remainder value (paper Fig. 5c: 4).
    pub dag_value: f64,
    /// Cycles of the maximum circulation (nodes, rate).
    pub cycles: Vec<(Vec<u32>, f64)>,
}

/// The Fig. 4 topology: the 5-node ring 1-2-3-4-5-1 plus the 2-4 chord
/// (0-based ids), with generous channel capacity.
pub fn fig4_network() -> Network {
    let mut g = Network::new(5);
    for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)] {
        g.add_channel(NodeId(a), NodeId(b), Amount::from_tokens(1e6))
            .expect("fig4 edges are valid");
    }
    g
}

/// Reproduces Fig. 4 (routing example) and Fig. 5 (decomposition).
pub fn fig4_fig5() -> Fig4Result {
    let network = fig4_network();
    let demand = DemandMatrix::fig4_example();
    let all_paths = spider_opt::fluid::enumerate_demand_paths(&network, &demand, 5);

    // Fig. 4b: restrict to shortest paths only.
    let mut shortest: Vec<spider_core::Path> = Vec::new();
    for (s, d, _) in demand.entries() {
        let mut ps = spider_opt::fluid::enumerate_paths(&network, s, d, 5);
        ps.sort_by_key(|p| p.len());
        let min = ps[0].len();
        shortest.extend(ps.into_iter().filter(|p| p.len() == min));
    }
    let sp = FluidProblem::new(&network, &demand, &shortest, 1.0).max_balanced_throughput();
    let opt = FluidProblem::new(&network, &demand, &all_paths, 1.0).max_balanced_throughput();
    let dec = spider_opt::circulation::decompose(&demand);
    let cycles = spider_opt::circulation::peel_cycles(&dec.circulation)
        .into_iter()
        .map(|(nodes, r)| (nodes.into_iter().map(|n| n.0).collect(), r))
        .collect();

    Fig4Result {
        total_demand: demand.total(),
        shortest_path_throughput: sp.throughput,
        optimal_throughput: opt.throughput,
        circulation_value: dec.value,
        dag_value: dec.dag.total(),
        cycles,
    }
}

/// One labeled ablation result.
pub type Ablation = (String, SimReport);

/// Ablation: maximum transaction unit (MTU) size for Spider waterfilling.
///
/// Smaller units pack channels more tightly (finer-grained multiplexing,
/// more rebalancing opportunities) at the cost of more packets.
pub fn ablation_mtu(cfg: &ExperimentConfig, mtus: &[f64]) -> Vec<Ablation> {
    let network = cfg.network();
    let trace = cfg.trace(&network);
    parallel_variants(mtus, |&mtu| {
        let mut sim_cfg = cfg.sim_config();
        sim_cfg.mtu = Amount::from_tokens(mtu);
        let report = run(&network, &trace, &mut WaterfillingScheme::new(), &sim_cfg);
        (format!("mtu={mtu}"), report)
    })
}

/// Runs one labeled variant per input in parallel worker threads.
fn parallel_variants<T: Sync>(inputs: &[T], f: impl Fn(&T) -> Ablation + Sync) -> Vec<Ablation> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = inputs.iter().map(|i| scope.spawn(|| f(i))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("variant run must not panic"))
            .collect()
    })
}

/// Ablation: number of candidate paths per pair for Spider waterfilling
/// (the paper fixes K = 4).
pub fn ablation_num_paths(cfg: &ExperimentConfig, ks: &[usize]) -> Vec<Ablation> {
    let network = cfg.network();
    let trace = cfg.trace(&network);
    let sim_cfg = cfg.sim_config();
    parallel_variants(ks, |&k| {
        let report = run(
            &network,
            &trace,
            &mut WaterfillingScheme::with_paths(k),
            &sim_cfg,
        );
        (format!("k={k}"), report)
    })
}

/// Ablation: candidate-path selection strategy (§5.3.1 names edge-disjoint
/// shortest, K-shortest, and K-highest-capacity as the options).
pub fn ablation_path_strategy(cfg: &ExperimentConfig) -> Vec<Ablation> {
    use spider_routing::PathStrategy;
    let network = cfg.network();
    let trace = cfg.trace(&network);
    let sim_cfg = cfg.sim_config();
    let variants = [
        ("edge-disjoint-4", PathStrategy::EdgeDisjoint(4)),
        ("k-shortest-4", PathStrategy::KShortest(4)),
        ("widest-4", PathStrategy::WidestDisjoint(4)),
    ];
    parallel_variants(&variants, |&(label, strategy)| {
        let report = run(
            &network,
            &trace,
            &mut WaterfillingScheme::with_strategy(strategy),
            &sim_cfg,
        );
        (label.to_string(), report)
    })
}

/// Ablation: scheduling policy for pending payments (§4.2 — the paper uses
/// SRPT after pFabric).
pub fn ablation_scheduler(cfg: &ExperimentConfig) -> Vec<Ablation> {
    use spider_sim::SchedulePolicy;
    let network = cfg.network();
    let trace = cfg.trace(&network);
    let policies = [
        SchedulePolicy::Srpt,
        SchedulePolicy::Fifo,
        SchedulePolicy::Lifo,
        SchedulePolicy::Edf,
    ];
    parallel_variants(&policies, |&policy| {
        let mut sim_cfg = cfg.sim_config();
        sim_cfg.policy = policy;
        let report = run(&network, &trace, &mut WaterfillingScheme::new(), &sim_cfg);
        (policy.name().to_string(), report)
    })
}

/// Ablation: the §4.1/§7 extensions — AIMD congestion control and on-chain
/// rebalancing — against the plain configuration.
pub fn ablation_extensions(cfg: &ExperimentConfig) -> Vec<Ablation> {
    let network = cfg.network();
    let trace = cfg.trace(&network);
    let mut out = Vec::new();

    let sim_cfg = cfg.sim_config();
    out.push((
        "plain".to_string(),
        run(&network, &trace, &mut WaterfillingScheme::new(), &sim_cfg),
    ));

    let mut with_cc = cfg.sim_config();
    with_cc.congestion = Some(spider_sim::CongestionConfig::default());
    out.push((
        "aimd-congestion".to_string(),
        run(&network, &trace, &mut WaterfillingScheme::new(), &with_cc),
    ));

    let mut with_rebalance = cfg.sim_config();
    with_rebalance.rebalance = Some(spider_sim::RebalancePolicy::aggressive());
    out.push((
        "onchain-rebalancing".to_string(),
        run(
            &network,
            &trace,
            &mut WaterfillingScheme::new(),
            &with_rebalance,
        ),
    ));

    out
}

/// Beyond-the-paper scheme comparison: online price-based routing
/// (§5.3.1 run live), the proportionally fair LP (§6.2's proposed fix),
/// and the router-queue transport (Fig. 3), against the paper's
/// waterfilling.
pub fn extension_schemes(cfg: &ExperimentConfig) -> Vec<Ablation> {
    let network = cfg.network();
    let trace = cfg.trace(&network);
    let sim_cfg = cfg.sim_config();
    let mut out = Vec::new();

    out.push((
        "spider-waterfilling".to_string(),
        run(&network, &trace, &mut WaterfillingScheme::new(), &sim_cfg),
    ));
    out.push((
        "spider-prices (online)".to_string(),
        run(&network, &trace, &mut PriceScheme::new(), &sim_cfg),
    ));

    // Proportionally fair LP over the estimated demand, solved with the
    // Kelly-style decentralized primal-dual (the exact Frank-Wolfe variant
    // in spider-opt::utility is reserved for small instances).
    let demand = demand_matrix(&trace, 0.0, cfg.duration);
    let (paths, demand) = lp_candidate_paths(&network, &demand);
    let pd = PrimalDualConfig {
        alpha: 0.05,
        eta: 0.05,
        kappa: 0.05,
        max_iters: 5_000,
        utility: spider_opt::Utility::ProportionalFairness { epsilon: 1e-3 },
        ..Default::default()
    };
    let mut fair = LpScheme::solve_decentralized(&network, &demand, &paths, 0.5, &pd);
    out.push((
        "spider-lp-fair".to_string(),
        run(&network, &trace, &mut fair, &sim_cfg),
    ));

    // Router-queue transport.
    let mut qcfg = spider_sim::QueuedConfig::new(cfg.duration);
    qcfg.deadline = cfg.deadline;
    qcfg.mtu = Amount::from_tokens(cfg.mtu);
    let queued = spider_sim::run_queued(&network, &trace, &qcfg);
    out.push((
        format!(
            "router-queues (q̄wait {:.2}s, drops {})",
            queued.queues.mean_wait, queued.queues.units_dropped
        ),
        queued.report,
    ));

    out
}

/// One point of the §5.2.3 rebalancing frontier.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RebalancingPoint {
    /// Total on-chain rebalancing budget B.
    pub budget: f64,
    /// Maximum throughput t(B).
    pub throughput: f64,
}

/// Reproduces the §5.2.3 analysis: t(B) is non-decreasing and concave.
pub fn rebalancing_curve(budgets: &[f64]) -> Vec<RebalancingPoint> {
    let network = fig4_network();
    let demand = DemandMatrix::fig4_example();
    let paths = spider_opt::fluid::enumerate_demand_paths(&network, &demand, 5);
    let prob = FluidProblem::new(&network, &demand, &paths, 1.0);
    budgets
        .iter()
        .map(|&b| RebalancingPoint {
            budget: b,
            throughput: prob.with_rebalancing_budget(b).throughput,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_fig5_matches_paper_numbers() {
        let r = fig4_fig5();
        assert_eq!(r.total_demand, 12.0);
        assert!((r.shortest_path_throughput - 5.0).abs() < 1e-6, "{r:?}");
        assert!((r.optimal_throughput - 8.0).abs() < 1e-6, "{r:?}");
        assert!((r.circulation_value - 8.0).abs() < 1e-9);
        assert!((r.dag_value - 4.0).abs() < 1e-9);
        assert!(!r.cycles.is_empty());
    }

    #[test]
    fn rebalancing_curve_shape() {
        let pts = rebalancing_curve(&[0.0, 1.0, 2.0, 4.0, 8.0]);
        assert!((pts[0].throughput - 8.0).abs() < 1e-6);
        assert!((pts.last().unwrap().throughput - 12.0).abs() < 1e-6);
        for w in pts.windows(2) {
            assert!(w[1].throughput >= w[0].throughput - 1e-9);
        }
    }

    #[test]
    fn quick_isp_run_single_scheme() {
        let mut cfg = ExperimentConfig::isp_quick();
        cfg.num_transactions = 500;
        cfg.duration = 20.0;
        let report = run_scheme(&cfg, SchemeChoice::ShortestPath);
        // Poisson arrivals: a few of the 500 can land past the window end.
        assert!(report.attempted >= 450, "attempted {}", report.attempted);
        assert!(report.success_ratio() > 0.1, "{}", report.summary());
    }

    #[test]
    fn lp_candidate_paths_cap_pairs() {
        let network = ExperimentConfig::isp_quick().network();
        let mut demand = DemandMatrix::new();
        for i in 0..10u32 {
            for j in 0..10u32 {
                if i != j {
                    demand.set(NodeId(i), NodeId(j), (i + j + 1) as f64);
                }
            }
        }
        let (paths, kept) = lp_candidate_paths(&network, &demand);
        assert_eq!(kept.len(), 90);
        assert!(!paths.is_empty());
        // Each pair contributes at most 4 paths.
        assert!(paths.len() <= 4 * 90);
    }
}
