//! Command-line harness that regenerates every table and figure of the
//! paper.
//!
//! ```text
//! spider-experiments fig4                    # Fig. 4 + Fig. 5 (analytic example)
//! spider-experiments fig6 --topology isp     # Fig. 6 bars (ISP)
//! spider-experiments fig6 --topology ripple  # Fig. 6 bars (Ripple-like)
//! spider-experiments fig7                    # Fig. 7 capacity sweep
//! spider-experiments rebalancing             # §5.2.3 t(B) frontier
//! spider-experiments grid                    # parallel audited scheme grid
//! spider-experiments all                     # everything above
//! ```
//!
//! Add `--full` for the paper's full scale (much slower), `--json PATH` to
//! write machine-readable reports, `--seed N` to vary the workload.
//!
//! `grid` fans (scheme, capacity, outage-rate, trial) cells out over worker
//! threads (count from `SPIDER_JOBS` or the machine's parallelism; override
//! with `--jobs N`) with the ledger auditor on, and accepts `--trials N`,
//! `--capacities A,B,...`, and `--no-audit`. Output is byte-identical for
//! any worker count.
//!
//! Fault injection: `--faults <scenario|file.json>` runs every grid cell
//! under a deterministic fault plan — a named scenario (`outages`, `churn`,
//! `drops`, `jitter`, `griefing`, `stress`) or a JSON `FaultConfig` file.
//! `--outage-rates A,B,...` sweeps the channel outage rate as an extra grid
//! axis (the failure-recovery degradation curve), and `--no-retry` disables
//! the sender retry policy so the recovery margin is measurable.
//!
//! Telemetry: `--telemetry` enables structured tracing for `fig6` and
//! `grid` (reports then embed event counts, delay percentiles, and the
//! channel time series); `--trace-out DIR` additionally writes the raw
//! trace as JSONL, one file per scheme (`fig6`) or per grid cell
//! (`cell-NNNN.jsonl`), and implies `--telemetry`. Trace files are named by
//! cell index, never by worker, so they too are byte-identical for any
//! `--jobs` value. `spider-experiments trace-check DIR` re-parses every
//! trace file and fails on empty, malformed, or internally inconsistent
//! traces (the CI smoke check).
//!
//! Flight recorder: `--trace-format bin` switches `--trace-out` to the
//! compact indexed binary format (`.bin`, ~5-10x smaller than JSONL,
//! byte-identical across runs / `--jobs` / `--shards`).
//! `spider-experiments inspect FILE` answers channel/node/payment/kind/
//! time-window queries against a trace — using the per-block index on
//! `.bin` files so most blocks are never decoded — and prints top-K hot
//! channels and nodes; on a `--json` report it prints the embedded
//! per-phase profile breakdowns instead.
//! `spider-experiments trace-convert IN OUT` converts losslessly between
//! the two formats (direction from the output extension).
//! `bench --profile` attaches a per-phase wall-clock breakdown to the
//! report's `timing` section; the stripped deterministic section is
//! byte-identical with or without it.
//!
//! Checkpoint & resume: `fig6 --scheme NAME --checkpoint-dir DIR
//! [--checkpoint-every N]` writes a crash-safe snapshot every N scheduler
//! ticks; `resume SNAPSHOT --scheme NAME ...` (a `.spsn` file, or the
//! checkpoint directory for the latest valid snapshot) carries the run to
//! completion with report/JSON/trace outputs byte-identical to an
//! uninterrupted run. Corrupt, truncated, or mismatched snapshots exit
//! with status 1 and a structured error on stderr.

use spider_bench::{
    ablation_extensions, ablation_mtu, ablation_num_paths, ablation_path_strategy,
    ablation_scheduler, bench_matrix, extension_schemes, fig4_fig5, fig6, fig6_traced, fig7,
    jobs_from_env, rebalancing_curve, resume_scheme, run_bench_profiled, run_grid, run_grid_traced,
    run_scheme, run_scheme_checkpointed, run_scheme_traced, run_sharded_scheme_featured,
    scheme_choice_by_name, Ablation, BenchFloor, ExperimentConfig, GridConfig, SchemeChoice,
    ShardFeatures,
};
use spider_sim::{latest_snapshot, CheckpointSpec, FaultConfig, ShardScheme, SimReport};
use spider_telemetry::spans::render_wall_breakdown;
use spider_telemetry::{bintrace, Telemetry, TraceEvent, TraceQuery};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_and_exit();
    }
    let command = args[0].as_str();
    let full = has_flag(&args, "--full");
    let seed = match flag_value(&args, "--seed") {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--seed expects an integer, got `{v}`");
            usage_and_exit();
        }),
        None => 1,
    };
    let json_path = flag_value(&args, "--json");
    let trace_out = flag_value(&args, "--trace-out");
    let telemetry = has_flag(&args, "--telemetry") || trace_out.is_some();
    let format = match flag_value(&args, "--trace-format").as_deref() {
        None | Some("jsonl") => TraceFormat::Jsonl,
        Some("bin") => TraceFormat::Bin,
        Some(other) => {
            eprintln!("--trace-format expects jsonl or bin, got `{other}`");
            usage_and_exit();
        }
    };
    let checkpoint = checkpoint_spec(&args);
    let mut out = JsonSink::new(json_path);

    match command {
        "fig4" | "fig5" => run_fig4(&mut out),
        "fig6" => {
            let topology = flag_value(&args, "--topology").unwrap_or_else(|| "isp".into());
            let scheme = flag_value(&args, "--scheme").map(|s| parse_scheme(&s));
            if checkpoint.is_some() && scheme.is_none() {
                eprintln!(
                    "--checkpoint-dir on fig6 requires --scheme (one snapshot stream per run)"
                );
                usage_and_exit();
            }
            run_fig6(
                &topology,
                full,
                seed,
                telemetry,
                trace_out.as_deref(),
                format,
                scheme,
                checkpoint.as_ref(),
                &mut out,
            );
        }
        "resume" => {
            run_resume(
                &args,
                full,
                seed,
                telemetry,
                trace_out.as_deref(),
                format,
                checkpoint.as_ref(),
                &mut out,
            );
        }
        "fig7" => run_fig7(full, seed, &mut out),
        "rebalancing" => run_rebalancing(&mut out),
        "ablations" => run_ablations(seed, &mut out),
        "grid" => run_grid_command(
            &args,
            full,
            seed,
            telemetry,
            trace_out.as_deref(),
            format,
            &mut out,
        ),
        "bench" => run_bench_command(&args),
        "sharded" => run_sharded_command(
            &args,
            full,
            seed,
            telemetry,
            trace_out.as_deref(),
            format,
            &mut out,
        ),
        "trace-check" => {
            let dir = args.get(1).cloned().unwrap_or_else(|| {
                eprintln!("trace-check expects a directory of .jsonl/.bin trace files");
                usage_and_exit();
            });
            run_trace_check(&dir);
        }
        "inspect" => {
            let file = args.get(1).cloned().unwrap_or_else(|| {
                eprintln!("inspect expects a trace file (.bin or .jsonl) or a --json report");
                usage_and_exit();
            });
            run_inspect(&file, &args);
        }
        "trace-convert" => {
            let (input, output) = match (args.get(1), args.get(2)) {
                (Some(i), Some(o)) => (i.clone(), o.clone()),
                _ => {
                    eprintln!("trace-convert expects an input and an output path");
                    usage_and_exit();
                }
            };
            run_trace_convert(&input, &output);
        }
        "all" => {
            run_fig4(&mut out);
            run_fig6(
                "isp",
                full,
                seed,
                telemetry,
                trace_out.as_deref(),
                format,
                None,
                None,
                &mut out,
            );
            run_fig6(
                "ripple", full, seed, telemetry, None, format, None, None, &mut out,
            );
            run_fig7(full, seed, &mut out);
            run_rebalancing(&mut out);
            run_ablations(seed, &mut out);
            run_grid_command(&args, full, seed, telemetry, None, format, &mut out);
        }
        other => {
            eprintln!("unknown command `{other}`");
            usage_and_exit();
        }
    }
    out.finish();
}

/// On-disk trace encoding selected by `--trace-format`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    /// One JSON object per line — human-greppable, the default.
    Jsonl,
    /// Compact indexed binary (`spider_telemetry::bintrace`).
    Bin,
}

impl TraceFormat {
    fn ext(self) -> &'static str {
        match self {
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Bin => "bin",
        }
    }
}

/// Writes one trace file under `dir` as `<stem>.<ext>` in the selected
/// format and returns the path.
fn write_trace(dir: &str, stem: &str, format: TraceFormat, events: &[TraceEvent]) -> String {
    let path = format!("{dir}/{stem}.{}", format.ext());
    let bytes = match format {
        TraceFormat::Jsonl => spider_telemetry::events_to_jsonl(events).into_bytes(),
        TraceFormat::Bin => bintrace::encode(events),
    };
    std::fs::write(&path, bytes).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    path
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: spider-experiments <fig4|fig6|fig7|rebalancing|ablations|grid|bench|sharded|all|\
         resume SNAPSHOT|trace-check DIR|inspect FILE|trace-convert IN OUT> \
         [--topology isp|ripple] [--full] [--seed N] [--json PATH] \
         [--telemetry] [--trace-out DIR] [--trace-format jsonl|bin] \
         [--jobs N] [--trials N] [--capacities A,B,...] [--no-audit] \
         [--faults SCENARIO|FILE.json] [--outage-rates A,B,...] [--no-retry]\n\
         checkpointing (fig6 with --scheme, resume): [--checkpoint-dir DIR] [--checkpoint-every N]\n\
         resume: SNAPSHOT is a .spsn file or a checkpoint dir (latest valid \
         snapshot); pass the same --topology/--scheme/--seed/--full as the \
         checkpointing run\n\
         bench flags: [--smoke] [--repeats N] [--jobs N] [--out DIR] [--floor FILE.json] [--only SUBSTR] [--profile]\n\
         sharded flags: [--shards N] [--scheme shortest|waterfilling] [--audit] \
         [--policy direct|queued] [--fees] [--congestion] [--rebalance]\n\
         inspect flags: [--channel N] [--node N] [--payment N] [--kind K] [--from T] [--to T] \
         [--limit N] [--top K]"
    );
    std::process::exit(2);
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Builds the optional [`CheckpointSpec`] from `--checkpoint-every N` and
/// `--checkpoint-dir DIR`. The directory is required; the cadence defaults
/// to every 100 scheduler ticks.
fn checkpoint_spec(args: &[String]) -> Option<CheckpointSpec> {
    let every = flag_value(args, "--checkpoint-every").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--checkpoint-every expects a positive integer, got `{v}`");
            usage_and_exit();
        })
    });
    match flag_value(args, "--checkpoint-dir") {
        Some(dir) => Some(CheckpointSpec::new(every.unwrap_or(100), dir)),
        None => {
            if every.is_some() {
                eprintln!("--checkpoint-every requires --checkpoint-dir");
                usage_and_exit();
            }
            None
        }
    }
}

/// Parses a `--scheme` value: the canonical report names
/// (`spider-waterfilling`, `shortest-path`, ...) plus short aliases.
fn parse_scheme(name: &str) -> SchemeChoice {
    scheme_choice_by_name(name)
        .or(match name {
            "shortest" => Some(SchemeChoice::ShortestPath),
            "waterfilling" => Some(SchemeChoice::SpiderWaterfilling),
            "maxflow" => Some(SchemeChoice::MaxFlow),
            "lp" => Some(SchemeChoice::SpiderLp),
            _ => None,
        })
        .unwrap_or_else(|| {
            eprintln!(
                "unknown scheme `{name}` (use silentwhispers, speedymurmurs, shortest-path, \
                 max-flow, spider-waterfilling, or spider-lp)"
            );
            usage_and_exit();
        })
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Accumulates results and optionally writes one JSON document at the end.
struct JsonSink {
    path: Option<String>,
    values: Vec<(String, serde_json::Value)>,
}

impl JsonSink {
    fn new(path: Option<String>) -> Self {
        JsonSink {
            path,
            values: Vec::new(),
        }
    }

    fn record<T: serde::Serialize>(&mut self, key: &str, value: &T) {
        if self.path.is_some() {
            self.values.push((
                key.to_string(),
                serde_json::to_value(value).expect("results serialize"),
            ));
        }
    }

    fn finish(self) {
        if let Some(path) = self.path {
            let map: serde_json::Map<String, serde_json::Value> = self.values.into_iter().collect();
            let mut file = std::fs::File::create(&path)
                .unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
            file.write_all(serde_json::to_string_pretty(&map).unwrap().as_bytes())
                .expect("write json");
            println!("\nwrote {path}");
        }
    }
}

fn run_fig4(out: &mut JsonSink) {
    println!("=== Fig. 4 / Fig. 5: balanced routing example & decomposition ===");
    let r = fig4_fig5();
    println!(
        "total demand:                       {:>6.1}  (paper: 12)",
        r.total_demand
    );
    println!(
        "shortest-path balanced throughput:  {:>6.1}  (paper Fig. 4b: 5)",
        r.shortest_path_throughput
    );
    println!(
        "optimal balanced throughput:        {:>6.1}  (paper Fig. 4c: 8)",
        r.optimal_throughput
    );
    println!(
        "max circulation ν(C*):              {:>6.1}  (paper Fig. 5b: 8)",
        r.circulation_value
    );
    println!(
        "DAG remainder:                      {:>6.1}  (paper Fig. 5c: 4)",
        r.dag_value
    );
    println!("circulation cycles:");
    for (nodes, rate) in &r.cycles {
        let pretty: Vec<String> = nodes.iter().map(|n| format!("{}", n + 1)).collect();
        println!("  {} -> (rate {rate:.1})", pretty.join(" -> "));
    }
    out.record("fig4", &r);
    println!();
}

fn config_for(topology: &str, full: bool, seed: u64) -> ExperimentConfig {
    let mut cfg = match (topology, full) {
        ("isp", false) => ExperimentConfig::isp_quick(),
        ("isp", true) => ExperimentConfig::isp_full(),
        ("ripple", false) => ExperimentConfig::ripple_quick(),
        ("ripple", true) => ExperimentConfig::ripple_full(),
        _ => {
            eprintln!("unknown topology `{topology}` (use isp or ripple)");
            usage_and_exit();
        }
    };
    cfg.seed = seed;
    cfg
}

fn print_fig6_table(reports: &[SimReport]) {
    println!(
        "{:<22} {:>13} {:>14} {:>14} {:>11} {:>9}",
        "scheme", "success_ratio", "success_volume", "strict_volume", "completed", "units"
    );
    for r in reports {
        println!(
            "{:<22} {:>13.3} {:>14.3} {:>14.3} {:>5}/{:<5} {:>9}",
            r.scheme,
            r.success_ratio(),
            r.success_volume(),
            r.strict_success_volume(),
            r.completed,
            r.attempted,
            r.units_sent
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn run_fig6(
    topology: &str,
    full: bool,
    seed: u64,
    telemetry: bool,
    trace_out: Option<&str>,
    format: TraceFormat,
    scheme: Option<SchemeChoice>,
    checkpoint: Option<&CheckpointSpec>,
    out: &mut JsonSink,
) {
    let cfg = config_for(topology, full, seed);
    println!(
        "=== Fig. 6 ({topology}): {} txns over {:.0}s, capacity {:.0}/channel ===",
        cfg.num_transactions, cfg.duration, cfg.capacity
    );
    let t0 = std::time::Instant::now();
    let reports = if let Some(choice) = scheme {
        // Single-scheme run: the only mode that supports checkpointing
        // (one snapshot stream per directory). Output shape matches the
        // all-schemes run so reports and traces stay byte-comparable.
        let tel = if telemetry {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        let report = match checkpoint {
            Some(ck) => run_scheme_checkpointed(&cfg, choice, &tel, ck)
                .unwrap_or_else(|e| snapshot_fail(&e)),
            None if telemetry => run_scheme_traced(&cfg, choice, &tel),
            None => run_scheme(&cfg, choice),
        };
        write_fig6_trace(topology, &report, &tel, trace_out, format);
        vec![report]
    } else if telemetry {
        let traced = fig6_traced(&cfg);
        if let Some(dir) = trace_out {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {dir}: {e}"));
            for (report, tel) in &traced {
                let stem = format!("fig6-{topology}-{}", report.scheme);
                write_trace(dir, &stem, format, &tel.events());
            }
            println!("wrote {} trace files to {dir}", traced.len());
        }
        traced.into_iter().map(|(r, _)| r).collect()
    } else {
        fig6(&cfg)
    };
    print_fig6_table(&reports);
    if telemetry {
        println!("completion-delay percentiles (s):");
        for r in &reports {
            if let Some(p) = &r.completion_delay_percentiles {
                println!(
                    "  {:<22} p50={:.3} p95={:.3} p99={:.3}",
                    r.scheme, p.p50, p.p95, p.p99
                );
            }
        }
    }
    println!("({:.1}s)", t0.elapsed().as_secs_f64());
    out.record(&format!("fig6_{topology}"), &reports);
    println!();
}

/// Reports a snapshot error on stderr and exits with status 1 — corrupt,
/// truncated, or mismatched snapshots are an error, never a panic.
fn snapshot_fail(e: &spider_sim::SnapshotError) -> ! {
    eprintln!("snapshot error: {e}");
    std::process::exit(1);
}

/// Writes the single-scheme fig6 trace file (same stem as the all-schemes
/// run, so resumed and uninterrupted outputs stay byte-comparable).
fn write_fig6_trace(
    topology: &str,
    report: &SimReport,
    tel: &Telemetry,
    trace_out: Option<&str>,
    format: TraceFormat,
) {
    if let Some(dir) = trace_out {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {dir}: {e}"));
        let stem = format!("fig6-{topology}-{}", report.scheme);
        let path = write_trace(dir, &stem, format, &tel.events());
        println!("wrote trace to {path}");
    }
}

/// `resume SNAPSHOT`: rebuilds the fig6 single-scheme scenario (topology /
/// scheme / seed / scale must match the checkpointing run) and carries it
/// to completion from the snapshot. `SNAPSHOT` is a `.spsn` file or a
/// checkpoint directory, in which case the latest valid snapshot is used.
/// Report and trace outputs are byte-identical to an uninterrupted run.
#[allow(clippy::too_many_arguments)]
fn run_resume(
    args: &[String],
    full: bool,
    seed: u64,
    telemetry: bool,
    trace_out: Option<&str>,
    format: TraceFormat,
    checkpoint: Option<&CheckpointSpec>,
    out: &mut JsonSink,
) {
    let snapshot_arg = args.get(1).filter(|a| !a.starts_with("--")).cloned();
    let Some(snapshot_arg) = snapshot_arg else {
        eprintln!("resume expects a snapshot file or checkpoint directory");
        usage_and_exit();
    };
    let path = std::path::PathBuf::from(&snapshot_arg);
    let snapshot = if path.is_dir() {
        match latest_snapshot(&path) {
            Ok(Some(p)) => p,
            Ok(None) => {
                eprintln!("snapshot error: no valid snapshot in {snapshot_arg}");
                std::process::exit(1);
            }
            Err(e) => snapshot_fail(&e),
        }
    } else {
        path
    };
    let topology = flag_value(args, "--topology").unwrap_or_else(|| "isp".into());
    let choice = parse_scheme(&flag_value(args, "--scheme").unwrap_or_else(|| {
        eprintln!("resume requires --scheme (the scheme the snapshot was taken under)");
        usage_and_exit();
    }));
    let cfg = config_for(&topology, full, seed);
    println!("=== resume ({topology}): from {} ===", snapshot.display());
    let t0 = std::time::Instant::now();
    let tel = if telemetry {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let report = resume_scheme(&cfg, choice, &tel, &snapshot, checkpoint)
        .unwrap_or_else(|e| snapshot_fail(&e));
    write_fig6_trace(&topology, &report, &tel, trace_out, format);
    let reports = vec![report];
    print_fig6_table(&reports);
    if telemetry {
        println!("completion-delay percentiles (s):");
        for r in &reports {
            if let Some(p) = &r.completion_delay_percentiles {
                println!(
                    "  {:<22} p50={:.3} p95={:.3} p99={:.3}",
                    r.scheme, p.p50, p.p95, p.p99
                );
            }
        }
    }
    println!("({:.1}s)", t0.elapsed().as_secs_f64());
    out.record(&format!("fig6_{topology}"), &reports);
    println!();
}

fn run_fig7(full: bool, seed: u64, out: &mut JsonSink) {
    let cfg = config_for("isp", full, seed);
    let capacities = [10_000.0, 17_500.0, 30_000.0, 55_000.0, 100_000.0];
    println!(
        "=== Fig. 7: capacity sweep on ISP ({} txns / {:.0}s per point) ===",
        cfg.num_transactions, cfg.duration
    );
    let t0 = std::time::Instant::now();
    let sweep = fig7(&cfg, &capacities);
    for (cap, reports) in &sweep {
        println!("--- capacity {cap:.0} ---");
        print_fig6_table(reports);
    }
    // Summary series per scheme for plotting.
    println!("\nsuccess_ratio by capacity:");
    for (i, &choice) in SchemeChoice::ALL.iter().enumerate() {
        let series: Vec<String> = sweep
            .iter()
            .map(|(cap, reports)| format!("{:.0}:{:.3}", cap, reports[i].success_ratio()))
            .collect();
        println!("  {:<20} {}", format!("{choice:?}"), series.join("  "));
    }
    println!("({:.1}s)", t0.elapsed().as_secs_f64());
    let json: Vec<(f64, &Vec<SimReport>)> = sweep.iter().map(|(c, r)| (*c, r)).collect();
    out.record("fig7", &json);
    println!();
}

fn print_ablation(title: &str, rows: &[Ablation]) {
    println!("--- {title} ---");
    println!(
        "{:<22} {:>13} {:>14} {:>9}",
        "variant", "success_ratio", "success_volume", "units"
    );
    for (label, r) in rows {
        println!(
            "{:<22} {:>13.3} {:>14.3} {:>9}",
            label,
            r.success_ratio(),
            r.success_volume(),
            r.units_sent
        );
    }
}

fn run_ablations(seed: u64, out: &mut JsonSink) {
    // Use the contended Fig. 6 regime so the knobs actually discriminate
    // (shorter runs saturate at 100% success).
    let mut cfg = ExperimentConfig::isp_quick();
    cfg.seed = seed;
    println!(
        "=== Ablations (ISP, {} txns / {:.0}s, waterfilling unless noted) ===",
        cfg.num_transactions, cfg.duration
    );
    let t0 = std::time::Instant::now();

    let mtu = ablation_mtu(&cfg, &[2.0, 5.0, 10.0, 50.0, 170.0]);
    print_ablation("MTU (transaction unit size)", &mtu);
    out.record("ablation_mtu", &mtu);

    let ks = ablation_num_paths(&cfg, &[1, 2, 4, 8]);
    print_ablation("K candidate paths", &ks);
    out.record("ablation_num_paths", &ks);

    let strat = ablation_path_strategy(&cfg);
    print_ablation("path-selection strategy", &strat);
    out.record("ablation_path_strategy", &strat);

    let sched = ablation_scheduler(&cfg);
    print_ablation("scheduling policy", &sched);
    out.record("ablation_scheduler", &sched);

    let ext = ablation_extensions(&cfg);
    print_ablation(
        "extensions (congestion control, on-chain rebalancing)",
        &ext,
    );
    let schemes = extension_schemes(&cfg);
    print_ablation("beyond-the-paper schemes", &schemes);
    out.record("extension_schemes", &schemes);
    for (label, r) in &ext {
        if r.rebalance.transactions > 0 {
            println!(
                "    {label}: {} on-chain txns moved {:.0} tokens, fees {:.1}",
                r.rebalance.transactions, r.rebalance.moved_volume, r.rebalance.fees_paid
            );
        }
    }
    out.record("ablation_extensions", &ext);

    println!("({:.1}s)", t0.elapsed().as_secs_f64());
    println!();
}

fn run_grid_command(
    args: &[String],
    full: bool,
    seed: u64,
    telemetry: bool,
    trace_out: Option<&str>,
    format: TraceFormat,
    out: &mut JsonSink,
) {
    let topology = flag_value(args, "--topology").unwrap_or_else(|| "isp".into());
    let base = config_for(&topology, full, seed);
    let mut grid = GridConfig::new(base);
    grid.telemetry = telemetry;
    if let Some(v) = flag_value(args, "--trials") {
        grid.trials = v.parse().unwrap_or_else(|_| {
            eprintln!("--trials expects an integer, got `{v}`");
            usage_and_exit();
        });
    }
    if let Some(v) = flag_value(args, "--capacities") {
        grid.capacities = v
            .split(',')
            .map(|c| {
                c.trim().parse().unwrap_or_else(|_| {
                    eprintln!("--capacities expects comma-separated numbers, got `{c}`");
                    usage_and_exit();
                })
            })
            .collect();
    }
    if has_flag(args, "--no-audit") {
        grid.audit = false;
    }
    if let Some(v) = flag_value(args, "--faults") {
        grid.faults = Some(parse_fault_config(&v));
    }
    if let Some(v) = flag_value(args, "--outage-rates") {
        if grid.faults.is_none() {
            // An outage sweep without a template still needs a config for
            // the per-cell plans (durations, retry policy).
            grid.faults = Some(FaultConfig::default());
        }
        grid.outage_rates = v
            .split(',')
            .map(|r| {
                r.trim().parse().unwrap_or_else(|_| {
                    eprintln!("--outage-rates expects comma-separated numbers, got `{r}`");
                    usage_and_exit();
                })
            })
            .collect();
    }
    if has_flag(args, "--no-retry") {
        match &mut grid.faults {
            Some(fc) => fc.retry = None,
            None => {
                eprintln!("--no-retry only makes sense with --faults or --outage-rates");
                usage_and_exit();
            }
        }
    }
    let jobs = match flag_value(args, "--jobs") {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--jobs expects an integer, got `{v}`");
            usage_and_exit();
        }),
        None => jobs_from_env(),
    };

    println!(
        "=== Grid ({topology}): {} schemes x {} capacities x {} trials on {} worker(s), audit {} ===",
        grid.schemes.len(),
        grid.capacities.len().max(1),
        grid.trials,
        jobs,
        if grid.audit { "on" } else { "off" }
    );
    if let Some(fc) = &grid.faults {
        println!(
            "faults: outage_rate={} churn={} drop={} jitter={} grief={} retry={}{}",
            fc.channel_outage_rate,
            fc.node_churn_rate,
            fc.unit_drop_prob,
            fc.settle_jitter,
            fc.grief_prob,
            if fc.retry.is_some() { "on" } else { "off" },
            if grid.outage_rates.is_empty() {
                String::new()
            } else {
                format!(" sweeping outage rates {:?}", grid.outage_rates)
            }
        );
    }
    let t0 = std::time::Instant::now();
    let result = if let Some(dir) = trace_out {
        let (result, traces) =
            run_grid_traced(&grid, jobs).unwrap_or_else(|e| panic!("grid run failed: {e}"));
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {dir}: {e}"));
        for (i, trace) in traces.iter().enumerate() {
            match format {
                TraceFormat::Jsonl => {
                    let path = format!("{dir}/cell-{i:04}.jsonl");
                    std::fs::write(&path, trace)
                        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
                }
                TraceFormat::Bin => {
                    let path = format!("{dir}/cell-{i:04}.bin");
                    let bytes = bintrace::jsonl_to_bintrace(trace)
                        .unwrap_or_else(|(line, e)| panic!("cell {i} trace line {line}: {e}"));
                    std::fs::write(&path, bytes)
                        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
                }
            }
        }
        println!("wrote {} per-cell trace files to {dir}", traces.len());
        result
    } else {
        run_grid(&grid, jobs).unwrap_or_else(|e| panic!("grid run failed: {e}"))
    };
    let has_rates = result.summaries.iter().any(|s| s.outage_rate.is_some());
    println!(
        "{:<22} {:>9}{} {:>24} {:>24} {:>12} {:>10}",
        "scheme",
        "capacity",
        if has_rates { "  outages" } else { "" },
        "success_ratio",
        "success_volume",
        "audit_checks",
        "violations"
    );
    for s in &result.summaries {
        let rate = match s.outage_rate {
            Some(r) if has_rates => format!(" {r:>8.2}"),
            _ if has_rates => " ".repeat(9),
            _ => String::new(),
        };
        println!(
            "{:<22} {:>9.0}{rate} {:>10.3} ±{:<5.3} [{:.3}] {:>10.3} ±{:<5.3} [{:.3}] {:>12} {:>10}",
            s.scheme_name,
            s.capacity,
            s.success_ratio.mean,
            s.success_ratio.stddev,
            s.success_ratio.max - s.success_ratio.min,
            s.success_volume.mean,
            s.success_volume.stddev,
            s.success_volume.max - s.success_volume.min,
            s.audit_checks,
            s.audit_violations
        );
    }
    let violations = result.total_audit_violations();
    println!(
        "({:.1}s, {} cells, {} total audit violations)",
        t0.elapsed().as_secs_f64(),
        result.cells.len(),
        violations
    );
    if violations > 0 {
        eprintln!("WARNING: the ledger auditor found {violations} violation(s)");
    }
    out.record("grid", &result);
    println!();
}

/// `bench [--smoke] [--repeats N] [--jobs N] [--out DIR] [--floor FILE]
/// [--profile]`: runs the fixed benchmark matrix with a median-of-N
/// protocol and writes `BENCH_smoke.json` / `BENCH_full.json`. The report's
/// `results` section is byte-identical across runs, `--jobs` values, and
/// `--profile`; only `timing` varies. `--profile` attaches a per-phase
/// wall-clock breakdown to each scenario's timing and prints it. With
/// `--floor`, exits non-zero if any listed scenario's events/sec drops
/// more than 30% below its checked-in floor.
fn run_bench_command(args: &[String]) {
    let smoke = has_flag(args, "--smoke");
    let profile = has_flag(args, "--profile");
    let name = if smoke { "smoke" } else { "full" };
    let repeats: usize = match flag_value(args, "--repeats") {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--repeats expects an integer, got `{v}`");
            usage_and_exit();
        }),
        None => 3,
    };
    let jobs = match flag_value(args, "--jobs") {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--jobs expects an integer, got `{v}`");
            usage_and_exit();
        }),
        None => jobs_from_env(),
    };
    let out_dir = flag_value(args, "--out").unwrap_or_else(|| ".".into());
    let mut matrix = bench_matrix(smoke);
    if let Some(filter) = flag_value(args, "--only") {
        matrix.retain(|s| s.name.contains(&filter));
        if matrix.is_empty() {
            eprintln!("--only `{filter}` matches no scenario in the {name} matrix");
            std::process::exit(2);
        }
    }
    println!(
        "=== Bench ({name}): {} scenarios, median of {repeats}, {jobs} worker(s) ===",
        matrix.len()
    );
    let report = run_bench_profiled(&matrix, name, repeats, jobs, profile);
    println!(
        "{:<36} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "scenario", "events", "success", "wall_ms", "events/sec", ""
    );
    for (r, t) in report.results.iter().zip(&report.timing.scenarios) {
        println!(
            "{:<36} {:>12} {:>10.3} {:>10.1} {:>12.0}",
            r.name, r.events, r.success_ratio, t.median_wall_ms, t.events_per_sec
        );
    }
    if profile {
        for t in &report.timing.scenarios {
            if t.phases.is_empty() {
                continue;
            }
            println!("\nphase breakdown: {}", t.name);
            print!("{}", render_wall_breakdown(&t.phases));
        }
    }
    println!("({:.1}s total)", report.timing.total_wall_ms / 1e3);
    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| panic!("cannot create {out_dir}: {e}"));
    let path = format!("{out_dir}/BENCH_{name}.json");
    std::fs::write(&path, report.to_json()).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
    if let Some(floor_path) = flag_value(args, "--floor") {
        let text = std::fs::read_to_string(&floor_path).unwrap_or_else(|e| {
            eprintln!("--floor: cannot read {floor_path}: {e}");
            std::process::exit(2);
        });
        let floor = BenchFloor::from_json(&text).unwrap_or_else(|e| {
            eprintln!("--floor: {floor_path}: {e}");
            std::process::exit(2);
        });
        match floor.check(&report) {
            Ok(()) => println!(
                "floor check OK ({} scenario(s))",
                floor.events_per_sec.len()
            ),
            Err(e) => {
                eprintln!("FLOOR REGRESSION: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// `sharded [--shards N] [--scheme shortest|waterfilling] [--audit]
/// [--policy direct|queued] [--fees] [--congestion] [--rebalance]`:
/// one run on the partition-parallel engine, optionally with the
/// feature-parity surface (router queues, fees, congestion control,
/// rebalancing) switched on. The printed report, `--json` output, and
/// `--trace-out` trace are byte-identical for any `--shards` value — CI
/// compares shard counts 1 and 4 on the smoke scenario, plain and
/// all-features.
fn run_sharded_command(
    args: &[String],
    full: bool,
    seed: u64,
    telemetry: bool,
    trace_out: Option<&str>,
    format: TraceFormat,
    out: &mut JsonSink,
) {
    let topology = flag_value(args, "--topology").unwrap_or_else(|| "isp".into());
    let cfg = config_for(&topology, full, seed);
    let shards: usize = match flag_value(args, "--shards") {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--shards expects an integer, got `{v}`");
            usage_and_exit();
        }),
        None => 4,
    };
    let scheme = match flag_value(args, "--scheme").as_deref() {
        None | Some("waterfilling") => ShardScheme::Waterfilling,
        Some("shortest") => ShardScheme::ShortestPath,
        Some(other) => {
            eprintln!("--scheme expects shortest or waterfilling, got `{other}`");
            usage_and_exit();
        }
    };
    let audit = has_flag(args, "--audit");
    let features = ShardFeatures {
        queued: match flag_value(args, "--policy").as_deref() {
            None | Some("direct") => false,
            Some("queued") => true,
            Some(other) => {
                eprintln!("--policy expects direct or queued, got `{other}`");
                usage_and_exit();
            }
        },
        fees: has_flag(args, "--fees"),
        congestion: has_flag(args, "--congestion"),
        rebalance: has_flag(args, "--rebalance"),
    };
    println!(
        "=== Sharded ({topology}): {} txns over {:.0}s on {shards} shard(s), audit {}, \
         policy {}{}{}{} ===",
        cfg.num_transactions,
        cfg.duration,
        if audit { "on" } else { "off" },
        if features.queued { "queued" } else { "direct" },
        if features.fees { " +fees" } else { "" },
        if features.congestion {
            " +congestion"
        } else {
            ""
        },
        if features.rebalance {
            " +rebalance"
        } else {
            ""
        },
    );
    let tel = if telemetry {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let t0 = std::time::Instant::now();
    let report = run_sharded_scheme_featured(&cfg, scheme, shards, &tel, audit, features);
    print_fig6_table(std::slice::from_ref(&report));
    println!(
        "audit checks {} violations {} ({:.1}s)",
        report.audit_checks,
        report.audit_violations.len(),
        t0.elapsed().as_secs_f64()
    );
    if !report.audit_violations.is_empty() {
        eprintln!(
            "WARNING: the ledger auditor found {} violation(s)",
            report.audit_violations.len()
        );
        std::process::exit(1);
    }
    if let Some(obs) = &report.shards {
        if obs.num_shards >= 2 {
            println!("per-shard epoch metrics:");
            print!("{}", obs.render());
        }
    }
    if let Some(dir) = trace_out {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {dir}: {e}"));
        let path = write_trace(dir, &format!("sharded-{topology}"), format, &tel.events());
        println!("wrote {path}");
    }
    out.record("sharded", &report);
    println!();
}

/// `--faults` argument: a named scenario, or a path to a JSON
/// [`FaultConfig`] file (sparse files fill unspecified fields with
/// defaults).
fn parse_fault_config(arg: &str) -> FaultConfig {
    if let Some(cfg) = FaultConfig::scenario(arg) {
        return cfg;
    }
    let looks_like_path = arg.contains('/') || arg.ends_with(".json");
    if !looks_like_path {
        eprintln!(
            "--faults: unknown scenario `{arg}` \
             (use outages|churn|drops|jitter|griefing|stress, or a JSON file path)"
        );
        usage_and_exit();
    }
    let text = std::fs::read_to_string(arg).unwrap_or_else(|e| {
        eprintln!("--faults: cannot read {arg}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("--faults: {arg} is not a valid fault config: {e}");
        std::process::exit(2);
    })
}

/// CI smoke check: every `.jsonl` / `.bin` file in `dir` must be
/// non-empty, parse (or decode) as trace events, and be internally
/// consistent (payments resolve at most once; units settle or refund at
/// most once each).
fn run_trace_check(dir: &str) {
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| {
            eprintln!("trace-check: cannot read {dir}: {e}");
            std::process::exit(1);
        })
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            (path.extension().is_some_and(|x| x == "jsonl" || x == "bin")).then_some(path)
        })
        .collect();
    files.sort();
    if files.is_empty() {
        eprintln!("trace-check: no .jsonl or .bin files in {dir}");
        std::process::exit(1);
    }
    let mut total_events = 0u64;
    for path in &files {
        let name = path.display();
        let bytes = std::fs::read(path).unwrap_or_else(|e| {
            eprintln!("trace-check: cannot read {name}: {e}");
            std::process::exit(1);
        });
        let events = if bintrace::is_bintrace(&bytes) {
            match bintrace::decode(&bytes) {
                Ok(events) => events,
                Err(err) => {
                    eprintln!("trace-check: {name}: {err}");
                    std::process::exit(1);
                }
            }
        } else {
            let text = String::from_utf8(bytes).unwrap_or_else(|e| {
                eprintln!("trace-check: {name} is not UTF-8: {e}");
                std::process::exit(1);
            });
            match spider_telemetry::parse_jsonl(&text) {
                Ok(events) => events,
                Err((line, err)) => {
                    eprintln!("trace-check: {name} line {line}: {err}");
                    std::process::exit(1);
                }
            }
        };
        if events.is_empty() {
            eprintln!("trace-check: {name} contains no events");
            std::process::exit(1);
        }
        let counts = spider_telemetry::count_by_kind(&events);
        let count = |kind: &str| {
            counts
                .iter()
                .find(|(k, _)| k == kind)
                .map(|&(_, n)| n)
                .unwrap_or(0)
        };
        let arrived = count("payment_arrived");
        let resolved = count("payment_completed") + count("payment_abandoned");
        if resolved > arrived {
            eprintln!(
                "trace-check: {name}: {resolved} payments resolved but only {arrived} arrived"
            );
            std::process::exit(1);
        }
        let sent = count("unit_sent");
        let finished = count("unit_settled") + count("unit_refunded");
        if finished > sent {
            eprintln!("trace-check: {name}: {finished} units finished but only {sent} sent");
            std::process::exit(1);
        }
        total_events += events.len() as u64;
    }
    println!(
        "trace-check: OK ({} files, {} events)",
        files.len(),
        total_events
    );
}

/// `inspect FILE [--channel N] [--node N] [--payment N] [--kind K]
/// [--from T] [--to T] [--limit N] [--top K]`: queries one trace file and
/// prints the matches plus a top-K hot-channels / hot-nodes report.
/// Binary traces answer through the per-block index (the block-skip stats
/// are printed); JSONL traces fall back to a full scan, so the two paths
/// are directly comparable. A `.json` report written by `--json` or
/// `bench --profile` prints its embedded per-phase profile breakdowns
/// instead.
fn run_inspect(file: &str, args: &[String]) {
    fn num<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
        flag_value(args, flag).map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} expects a number, got `{v}`");
                std::process::exit(2);
            })
        })
    }
    let bytes = std::fs::read(file).unwrap_or_else(|e| {
        eprintln!("inspect: cannot read {file}: {e}");
        std::process::exit(1);
    });
    if file.ends_with(".json") {
        inspect_report(file, &bytes);
        return;
    }
    let q = TraceQuery {
        channel: num(args, "--channel"),
        node: num(args, "--node"),
        payment: num(args, "--payment"),
        kind: flag_value(args, "--kind"),
        from: num(args, "--from"),
        to: num(args, "--to"),
    };
    let limit: usize = num(args, "--limit").unwrap_or(20);
    let top: usize = num(args, "--top").unwrap_or(5);
    let (events, scan_note) = if bintrace::is_bintrace(&bytes) {
        let (events, stats) = bintrace::query_with_stats(&bytes, &q).unwrap_or_else(|e| {
            eprintln!("inspect: {file}: {e}");
            std::process::exit(1);
        });
        let note = format!(
            "indexed query decoded {}/{} blocks ({} events decoded, {} matched)",
            stats.blocks_scanned, stats.blocks_total, stats.events_decoded, stats.events_matched
        );
        (events, note)
    } else {
        let text = String::from_utf8(bytes).unwrap_or_else(|e| {
            eprintln!("inspect: {file} is not UTF-8 (and not a binary trace): {e}");
            std::process::exit(1);
        });
        let all = match spider_telemetry::parse_jsonl(&text) {
            Ok(events) => events,
            Err((line, err)) => {
                eprintln!("inspect: {file} line {line}: {err}");
                std::process::exit(1);
            }
        };
        let total = all.len();
        let events: Vec<TraceEvent> = all.into_iter().filter(|e| q.matches(e)).collect();
        let note = format!("full scan over {} events ({} matched)", total, events.len());
        (events, note)
    };
    println!("{file}: {scan_note}");
    let counts = spider_telemetry::count_by_kind(&events);
    if !counts.is_empty() {
        let pretty: Vec<String> = counts
            .iter()
            .map(|(kind, n)| format!("{kind}={n}"))
            .collect();
        println!("matched by kind: {}", pretty.join(" "));
    }
    let mut t_min = f64::INFINITY;
    let mut t_max = f64::NEG_INFINITY;
    for t in events.iter().filter_map(TraceEvent::time) {
        t_min = t_min.min(t);
        t_max = t_max.max(t);
    }
    if t_min.is_finite() {
        println!("sim-time span: [{t_min:.3}, {t_max:.3}]");
    }
    print_hot(
        "hot channels",
        top,
        events.iter().filter_map(TraceEvent::channel).map(u64::from),
    );
    print_hot(
        "hot nodes",
        top,
        events.iter().flat_map(|e| {
            let (a, b) = e.nodes();
            [a, b].into_iter().flatten().map(u64::from)
        }),
    );
    for e in events.iter().take(limit) {
        println!(
            "{}",
            serde_json::to_string(e).expect("trace events serialize")
        );
    }
    if events.len() > limit {
        println!("... {} more matched (raise --limit)", events.len() - limit);
    }
}

/// Prints the `top` most frequent ids in `ids` as `id xN` pairs, ties
/// broken by lower id for deterministic output.
fn print_hot(label: &str, top: usize, ids: impl Iterator<Item = u64>) {
    let mut counts: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for id in ids {
        *counts.entry(id).or_insert(0) += 1;
    }
    if counts.is_empty() || top == 0 {
        return;
    }
    let mut ranked: Vec<(u64, u64)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(top);
    let pretty: Vec<String> = ranked.iter().map(|(id, n)| format!("{id} x{n}")).collect();
    println!("{label} (top {}): {}", ranked.len(), pretty.join("  "));
}

/// Inspect mode for `.json` reports: finds every embedded `phases` array
/// (deterministic [`PhaseProfile`]s from `TelemetrySummary`, wall-clock
/// [`PhaseWallStat`]s from `bench --profile` timing) and renders each as a
/// breakdown table.
///
/// [`PhaseProfile`]: spider_telemetry::PhaseProfile
/// [`PhaseWallStat`]: spider_telemetry::PhaseWallStat
fn inspect_report(file: &str, bytes: &[u8]) {
    let text = std::str::from_utf8(bytes).unwrap_or_else(|e| {
        eprintln!("inspect: {file} is not UTF-8: {e}");
        std::process::exit(1);
    });
    let value: serde_json::Value = serde_json::from_str(text).unwrap_or_else(|e| {
        eprintln!("inspect: {file} is not valid JSON: {e:?}");
        std::process::exit(1);
    });
    let mut found = 0usize;
    walk_phases(&value, "$", &mut found);
    if found == 0 {
        println!(
            "{file}: no phase breakdowns found \
             (profiles appear under `--telemetry` summaries and `bench --profile` timing)"
        );
    }
}

fn walk_phases(value: &serde_json::Value, path: &str, found: &mut usize) {
    use serde_json::Value;
    match value {
        Value::Object(fields) => {
            for (key, child) in fields {
                let child_path = format!("{path}.{key}");
                if key == "phases" {
                    if let Some(rows) = phase_rows(child) {
                        *found += 1;
                        println!("{child_path}:");
                        print!("{rows}");
                        continue;
                    }
                }
                walk_phases(child, &child_path, found);
            }
        }
        Value::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                walk_phases(child, &format!("{path}[{i}]"), found);
            }
        }
        _ => {}
    }
}

/// Renders a `phases` array if every element looks like a phase record
/// (an object with a string `phase` and numeric `calls`).
fn phase_rows(value: &serde_json::Value) -> Option<String> {
    use serde_json::Value;
    let Value::Array(items) = value else {
        return None;
    };
    if items.is_empty() {
        return None;
    }
    let mut out = String::new();
    for item in items {
        let Some(Value::Str(phase)) = item.get_field("phase") else {
            return None;
        };
        let calls = item.get_field("calls")?.as_i64()?;
        out.push_str(&format!("  {phase:<22} calls={calls:<10}"));
        if let Some(items_n) = item.get_field("items").and_then(Value::as_i64) {
            out.push_str(&format!(" items={items_n:<10}"));
        }
        if let Some(wall) = item.get_field("wall_ms").and_then(Value::as_f64) {
            out.push_str(&format!(" wall_ms={wall:.3}"));
        }
        if let (Some(a), Some(b)) = (
            item.get_field("sim_first").and_then(Value::as_f64),
            item.get_field("sim_last").and_then(Value::as_f64),
        ) {
            out.push_str(&format!(" sim=[{a:.3}, {b:.3}]"));
        }
        out.push('\n');
    }
    Some(out)
}

/// `trace-convert IN OUT`: lossless conversion between the JSONL and
/// binary trace formats. The input format is auto-detected from the bytes;
/// the output format follows the output path's extension (`.bin` writes
/// binary, anything else JSONL).
fn run_trace_convert(input: &str, output: &str) {
    let bytes = std::fs::read(input).unwrap_or_else(|e| {
        eprintln!("trace-convert: cannot read {input}: {e}");
        std::process::exit(1);
    });
    let events = if bintrace::is_bintrace(&bytes) {
        bintrace::decode(&bytes).unwrap_or_else(|e| {
            eprintln!("trace-convert: {input}: {e}");
            std::process::exit(1);
        })
    } else {
        let text = String::from_utf8(bytes).unwrap_or_else(|e| {
            eprintln!("trace-convert: {input} is not UTF-8 (and not a binary trace): {e}");
            std::process::exit(1);
        });
        match spider_telemetry::parse_jsonl(&text) {
            Ok(events) => events,
            Err((line, err)) => {
                eprintln!("trace-convert: {input} line {line}: {err}");
                std::process::exit(1);
            }
        }
    };
    let out_bytes = if output.ends_with(".bin") {
        bintrace::encode(&events)
    } else {
        spider_telemetry::events_to_jsonl(&events).into_bytes()
    };
    std::fs::write(output, &out_bytes).unwrap_or_else(|e| {
        eprintln!("trace-convert: cannot write {output}: {e}");
        std::process::exit(1);
    });
    println!(
        "trace-convert: {input} -> {output} ({} events, {} bytes)",
        events.len(),
        out_bytes.len()
    );
}

fn run_rebalancing(out: &mut JsonSink) {
    println!("=== §5.2.3: throughput vs on-chain rebalancing budget t(B) ===");
    let budgets = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0];
    let pts = rebalancing_curve(&budgets);
    println!("{:>8} {:>12}", "B", "t(B)");
    for p in &pts {
        println!("{:>8.1} {:>12.3}", p.budget, p.throughput);
    }
    println!("(non-decreasing, concave; t(0) = ν(C*) = 8, t(∞) = total demand = 12)");
    out.record("rebalancing", &pts);
    println!();
}
