//! Experiment harness regenerating every table and figure of the paper.
//!
//! [`experiments`] defines one deterministic function per figure; the
//! `spider-experiments` binary prints paper-style rows and writes JSON
//! reports; the Criterion benches in `benches/` measure the computational
//! kernels behind each figure.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;

pub use experiments::{
    ablation_extensions, ablation_mtu, ablation_num_paths, ablation_path_strategy,
    ablation_scheduler, build_scheme, extension_schemes, fig4_fig5, fig4_network, fig6, fig7,
    lp_candidate_paths, rebalancing_curve, run_scheme, Ablation, ExperimentConfig,
    Fig4Result, RebalancingPoint, SchemeChoice, Topology,
};
