//! Experiment harness regenerating every table and figure of the paper.
//!
//! [`experiments`] defines one deterministic function per figure; the
//! [`runner`] module fans experiment grids out over worker threads with
//! per-cell derived seeds and deterministic aggregation; the
//! `spider-experiments` binary prints paper-style rows and writes JSON
//! reports; the Criterion benches in `benches/` measure the computational
//! kernels behind each figure.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod benchmarks;
pub mod experiments;
pub mod runner;

pub use benchmarks::{
    bench_matrix, event_count, run_bench, run_bench_profiled, BenchFloor, BenchReport,
    BenchScenario, BenchScenarioResult, BenchScenarioTiming, BenchTiming, BENCH_SCHEMA_VERSION,
};
pub use experiments::{
    ablation_extensions, ablation_mtu, ablation_num_paths, ablation_path_strategy,
    ablation_scheduler, build_scheme, extension_schemes, fig4_fig5, fig4_network, fig6,
    fig6_traced, fig7, lp_candidate_paths, rebalancing_curve, resume_scheme, run_scheme,
    run_scheme_checkpointed, run_scheme_traced, run_sharded_scheme, run_sharded_scheme_audited,
    run_sharded_scheme_featured, scheme_choice_by_name, sharded_scheme_for, Ablation,
    ExperimentConfig, Fig4Result, RebalancingPoint, SchemeChoice, ShardFeatures, Topology,
};
pub use runner::{
    derive_cell_seed, expand, jobs_from_env, run_grid, run_grid_traced, CellResult, GridCell,
    GridConfig, GridResult, GridSummary, MetricSummary,
};
