//! Criterion bench for the Fig. 4 / Fig. 5 analytic experiment: the exact
//! fluid LP, the circulation decomposition, and the primal-dual iteration
//! on the paper's 5-node example.
//!
//! Regenerate the figure itself with `spider-experiments fig4`.

use criterion::{criterion_group, criterion_main, Criterion};
use spider_bench::{fig4_fig5, fig4_network};
use spider_core::DemandMatrix;
use spider_opt::fluid::{enumerate_demand_paths, FluidProblem};
use spider_opt::primal_dual::{self, PrimalDualConfig};

fn bench_fig4(c: &mut Criterion) {
    let network = fig4_network();
    let demand = DemandMatrix::fig4_example();
    let paths = enumerate_demand_paths(&network, &demand, 5);

    c.bench_function("fig4/full_experiment", |b| b.iter(fig4_fig5));

    c.bench_function("fig4/simplex_balanced_lp", |b| {
        b.iter(|| FluidProblem::new(&network, &demand, &paths, 1.0).max_balanced_throughput())
    });

    c.bench_function("fig4/circulation_decomposition", |b| {
        b.iter(|| spider_opt::circulation::decompose(&demand))
    });

    c.bench_function("fig4/primal_dual_2k_iters", |b| {
        let config = PrimalDualConfig {
            max_iters: 2_000,
            tolerance: 0.0,
            ..Default::default()
        };
        b.iter(|| primal_dual::solve(&network, &demand, &paths, 1.0, &config))
    });

    c.bench_function("fig4/rebalancing_budget_lp", |b| {
        let problem = FluidProblem::new(&network, &demand, &paths, 1.0);
        b.iter(|| problem.with_rebalancing_budget(4.0))
    });
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
