//! Criterion bench for the Fig. 7 capacity sweep: simulation cost of the
//! waterfilling scheme as per-channel capacity scales. (More capacity means
//! more successful units and therefore more events.)
//!
//! Regenerate the figure itself with `spider-experiments fig7`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spider_bench::{build_scheme, ExperimentConfig, SchemeChoice};
use spider_sim::run;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_waterfilling_capacity");
    group.sample_size(10);
    for capacity in [10_000.0, 30_000.0, 100_000.0] {
        let mut cfg = ExperimentConfig::isp_quick();
        cfg.num_transactions = 2_000;
        cfg.duration = 30.0;
        cfg.capacity = capacity;
        let network = cfg.network();
        let trace = cfg.trace(&network);
        let sim_cfg = cfg.sim_config();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{capacity:.0}")),
            &capacity,
            |b, _| {
                b.iter(|| {
                    let mut scheme = build_scheme(
                        SchemeChoice::SpiderWaterfilling,
                        &network,
                        &trace,
                        cfg.duration,
                    );
                    run(&network, &trace, scheme.as_mut(), &sim_cfg)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
