//! Criterion bench for the Fig. 6 comparison: end-to-end simulation cost of
//! each routing scheme on a reduced ISP workload.
//!
//! Regenerate the figure itself with `spider-experiments fig6`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spider_bench::{build_scheme, ExperimentConfig, SchemeChoice};
use spider_sim::run;

fn bench_fig6(c: &mut Criterion) {
    let mut cfg = ExperimentConfig::isp_quick();
    cfg.num_transactions = 2_000;
    cfg.duration = 30.0;
    let network = cfg.network();
    let trace = cfg.trace(&network);
    let sim_cfg = cfg.sim_config();

    let mut group = c.benchmark_group("fig6_isp_2k_txns");
    group.sample_size(10);
    for choice in SchemeChoice::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{choice:?}")),
            &choice,
            |b, &choice| {
                b.iter(|| {
                    let mut scheme = build_scheme(choice, &network, &trace, cfg.duration);
                    run(&network, &trace, scheme.as_mut(), &sim_cfg)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
