//! Criterion bench for the optimization kernels, including the §3 overhead
//! claim: per-transaction max-flow is far more expensive than Spider's
//! waterfilling unit decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spider_core::{Amount, DemandMatrix, NodeId};
use spider_opt::maxflow::balance_limited_flow;
use spider_opt::mincostflow::MinCostFlow;
use spider_opt::simplex::{LinearProgram, Relation};
use spider_routing::{edge_disjoint_paths, k_shortest_paths, RoutingScheme, WaterfillingScheme};
use spider_topology::{isp_topology, ripple_topology_scaled};
use spider_workload::{mixed_demand, random_circulation};

fn bench_flows(c: &mut Criterion) {
    let isp = isp_topology(Amount::from_whole(30_000));
    let ripple = ripple_topology_scaled(400, Amount::from_whole(30_000), 1);

    // The §3 comparison: one max-flow routing decision vs one waterfilling
    // unit decision on the same graph.
    let mut group = c.benchmark_group("per_transaction_routing_cost");
    group.bench_function("max_flow_isp", |b| {
        b.iter(|| balance_limited_flow(&isp, &isp, NodeId(20), NodeId(27), Amount::from_whole(500)))
    });
    group.bench_function("waterfilling_unit_isp", |b| {
        let mut scheme = WaterfillingScheme::new();
        // Warm the path cache: steady-state per-unit cost is what matters.
        let _ = scheme.route_unit(&isp, &isp, NodeId(20), NodeId(27), Amount::from_whole(10));
        b.iter(|| scheme.route_unit(&isp, &isp, NodeId(20), NodeId(27), Amount::from_whole(10)))
    });
    group.bench_function("max_flow_ripple400", |b| {
        b.iter(|| {
            balance_limited_flow(
                &ripple,
                &ripple,
                NodeId(10),
                NodeId(390),
                Amount::from_whole(500),
            )
        })
    });
    group.bench_function("waterfilling_unit_ripple400", |b| {
        let mut scheme = WaterfillingScheme::new();
        let _ = scheme.route_unit(
            &ripple,
            &ripple,
            NodeId(10),
            NodeId(390),
            Amount::from_whole(10),
        );
        b.iter(|| {
            scheme.route_unit(
                &ripple,
                &ripple,
                NodeId(10),
                NodeId(390),
                Amount::from_whole(10),
            )
        })
    });
    group.finish();
}

fn bench_paths(c: &mut Criterion) {
    let isp = isp_topology(Amount::from_whole(30_000));
    let mut group = c.benchmark_group("path_discovery");
    group.bench_function("edge_disjoint_4_isp", |b| {
        b.iter(|| edge_disjoint_paths(&isp, NodeId(20), NodeId(27), 4))
    });
    group.bench_function("yen_k4_isp", |b| {
        b.iter(|| k_shortest_paths(&isp, NodeId(20), NodeId(27), 4))
    });
    group.finish();
}

fn bench_circulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("circulation_decomposition");
    for n in [20usize, 50, 100] {
        let demand = mixed_demand(n, 100.0, 0.6, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &demand, |b, d| {
            b.iter(|| spider_opt::circulation::decompose(d))
        });
    }
    group.bench_function("peel_cycles_50", |b| {
        let circ = random_circulation(50, 25, 0.5, 2.0, 3);
        b.iter(|| spider_opt::circulation::peel_cycles(&circ))
    });
    group.finish();
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    for n in [20usize, 60] {
        // Deterministic dense LP with n vars and n constraints.
        let mut lp = LinearProgram::new(n);
        let mut state = 0xfeed_beefu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (1u64 << 31) as f64
        };
        let obj: Vec<(usize, f64)> = (0..n).map(|j| (j, 0.5 + next())).collect();
        lp.set_objective(&obj);
        for _ in 0..n {
            let row: Vec<(usize, f64)> = (0..n).map(|j| (j, next())).collect();
            lp.add_constraint(&row, Relation::Le, 5.0 + 10.0 * next());
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &lp, |b, lp| {
            b.iter(|| lp.solve())
        });
    }
    group.finish();
}

fn bench_mincost(c: &mut Criterion) {
    c.bench_function("min_cost_flow_grid_10x10", |b| {
        b.iter(|| {
            let n = 100usize;
            let idx = |r: usize, c_: usize| r * 10 + c_;
            let mut g = MinCostFlow::new(n);
            for r in 0..10 {
                for c_ in 0..10 {
                    if c_ + 1 < 10 {
                        g.add_edge(idx(r, c_), idx(r, c_ + 1), 5, 1);
                    }
                    if r + 1 < 10 {
                        g.add_edge(idx(r, c_), idx(r + 1, c_), 5, 2);
                    }
                }
            }
            g.min_cost_flow(0, n - 1, 10)
        })
    });

    // Circulation via the demand-matrix API on a ring demand.
    c.bench_function("decompose_ring_demand_30", |b| {
        let mut demand = DemandMatrix::new();
        for i in 0..30u32 {
            demand.set(NodeId(i), NodeId((i + 1) % 30), 1.0 + i as f64 * 0.1);
        }
        b.iter(|| spider_opt::circulation::decompose(&demand))
    });
}

criterion_group!(
    benches,
    bench_flows,
    bench_paths,
    bench_circulation,
    bench_simplex,
    bench_mincost
);
criterion_main!(benches);
