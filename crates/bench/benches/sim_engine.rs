//! Criterion bench for the discrete-event engine itself: event queue
//! throughput, ledger lock/settle throughput, and end-to-end simulated
//! events per second.

use criterion::{criterion_group, criterion_main, Criterion};
use spider_core::{Amount, NodeId, Path, PaymentId};
use spider_routing::ShortestPathScheme;
use spider_sim::{run, EventQueue, Ledger, SimConfig};
use spider_topology::isp_topology;
use spider_workload::Transaction;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            // Deterministic scattered times.
            let mut t = 0.0f64;
            for i in 0..10_000u32 {
                t = (t + 0.618_033_988_749) % 100.0;
                q.push(t, i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v as u64;
            }
            sum
        })
    });
}

fn bench_ledger(c: &mut Criterion) {
    let network = isp_topology(Amount::from_whole(1_000_000));
    let path = {
        // A 3-hop path through the hierarchy: access 20 -> agg 8 -> core 0 -> agg 10.
        Path::new(&network, vec![NodeId(20), NodeId(8), NodeId(0), NodeId(10)])
            .expect("valid isp path")
    };
    // Lock + refund is balance-neutral, so the bench can iterate forever.
    c.bench_function("ledger/lock_refund_cycle", |b| {
        let mut ledger = Ledger::new(&network);
        let amount = Amount::from_whole(1);
        b.iter(|| {
            ledger
                .lock_path(&network, &path, amount)
                .expect("funds available");
            ledger
                .refund_path(&network, &path, amount)
                .expect("exactly the locked amount");
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let network = isp_topology(Amount::from_whole(30_000));
    // 1000 balanced payments (paired directions keep channels alive).
    let txs: Vec<Transaction> = (0..1000u64)
        .map(|i| Transaction {
            id: PaymentId(i),
            src: NodeId((i % 12) as u32 + 20),
            dst: NodeId(((i + 6) % 12) as u32 + 20),
            amount: Amount::from_whole(50),
            arrival: i as f64 * 0.01,
        })
        .collect();
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(20);
    group.bench_function("shortest_path_1k_payments", |b| {
        b.iter(|| {
            let mut scheme = ShortestPathScheme::new();
            run(&network, &txs, &mut scheme, &SimConfig::new(20.0))
        })
    });
    group.finish();
}

fn bench_queued_engine(c: &mut Criterion) {
    use spider_sim::{run_queued, QueuedConfig};
    let network = isp_topology(Amount::from_whole(30_000));
    let txs: Vec<Transaction> = (0..1000u64)
        .map(|i| Transaction {
            id: PaymentId(i),
            src: NodeId((i % 12) as u32 + 20),
            dst: NodeId(((i + 6) % 12) as u32 + 20),
            amount: Amount::from_whole(50),
            arrival: i as f64 * 0.01,
        })
        .collect();
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(20);
    group.bench_function("router_queues_1k_payments", |b| {
        b.iter(|| run_queued(&network, &txs, &QueuedConfig::new(20.0)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_ledger,
    bench_end_to_end,
    bench_queued_engine
);
criterion_main!(benches);
