//! Workload generation for payment channel network evaluation.
//!
//! - [`sizes`] — heavy-tailed transaction-size distributions calibrated to
//!   the paper's Ripple trace statistics,
//! - [`trace`] — Poisson transaction traces with skewed senders and uniform
//!   receivers (§6.1), plus demand-matrix estimation,
//! - [`demand`] — synthetic demand matrices with controlled circulation
//!   fractions (the Proposition 1 knob).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod demand;
pub mod sizes;
pub mod trace;

pub use demand::{mixed_demand, random_circulation, random_dag_demand};
pub use sizes::{isp_sizes, ripple_sizes, BoundedPareto};
pub use trace::{
    demand_matrix, generate, total_volume, ArrivalPattern, SenderDistribution, TraceConfig,
    Transaction,
};
