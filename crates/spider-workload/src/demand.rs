//! Synthetic demand-matrix generators.
//!
//! Proposition 1 makes the circulation structure of demand the fundamental
//! determinant of balanced throughput, so the evaluation needs workloads
//! with *controlled* circulation fractions: pure circulations (every unit
//! routable with perfect balance), pure DAGs (nothing routable without
//! rebalancing), and mixtures in between.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use spider_core::{DemandMatrix, NodeId};

/// Generates a random circulation: `num_cycles` directed cycles over random
/// node subsets, each carrying a random rate in `[min_rate, max_rate]`.
///
/// The result is exactly balanced at every node.
pub fn random_circulation(
    num_nodes: usize,
    num_cycles: usize,
    min_rate: f64,
    max_rate: f64,
    seed: u64,
) -> DemandMatrix {
    assert!(num_nodes >= 3, "cycles need at least 3 nodes");
    assert!(min_rate > 0.0 && max_rate >= min_rate);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = DemandMatrix::new();
    let mut nodes: Vec<u32> = (0..num_nodes as u32).collect();
    for _ in 0..num_cycles {
        let len = rng.random_range(3..=num_nodes.min(8));
        nodes.shuffle(&mut rng);
        let cycle = &nodes[..len];
        let raw = if min_rate == max_rate {
            min_rate
        } else {
            rng.random_range(min_rate..max_rate)
        };
        // Quantize to micro-units so downstream integer decompositions see
        // an exactly balanced graph.
        let rate = spider_core::Amount::from_tokens(raw).as_tokens();
        for i in 0..len {
            d.add(NodeId(cycle[i]), NodeId(cycle[(i + 1) % len]), rate);
        }
    }
    d
}

/// Generates a pure-DAG demand: edges only from lower-indexed to
/// higher-indexed nodes, so no cycle (hence zero circulation) exists.
pub fn random_dag_demand(
    num_nodes: usize,
    num_edges: usize,
    min_rate: f64,
    max_rate: f64,
    seed: u64,
) -> DemandMatrix {
    assert!(num_nodes >= 2);
    assert!(min_rate > 0.0 && max_rate >= min_rate);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = DemandMatrix::new();
    let mut guard = 0;
    while d.len() < num_edges && guard < 100 * num_edges + 100 {
        guard += 1;
        let a = rng.random_range(0..num_nodes as u32 - 1);
        let b = rng.random_range(a + 1..num_nodes as u32);
        if d.rate(NodeId(a), NodeId(b)) == 0.0 {
            let rate = if min_rate == max_rate {
                min_rate
            } else {
                rng.random_range(min_rate..max_rate)
            };
            d.set(NodeId(a), NodeId(b), rate);
        }
    }
    d
}

/// Mixes a circulation and a DAG so that the circulation carries
/// `circulation_fraction` of the total demand rate.
///
/// Lets experiments sweep the theoretical throughput ceiling of
/// Proposition 1 directly.
pub fn mixed_demand(
    num_nodes: usize,
    total_rate: f64,
    circulation_fraction: f64,
    seed: u64,
) -> DemandMatrix {
    assert!((0.0..=1.0).contains(&circulation_fraction));
    assert!(total_rate > 0.0);
    let circ_part = random_circulation(num_nodes, num_nodes.max(4), 0.5, 1.5, seed);
    let dag_part = random_dag_demand(num_nodes, num_nodes.max(4), 0.5, 1.5, seed ^ 0xabcd);
    let mut out = DemandMatrix::new();
    let circ_target = total_rate * circulation_fraction;
    let dag_target = total_rate - circ_target;
    if circ_target > 0.0 && circ_part.total() > 0.0 {
        for (s, d, r) in circ_part.scaled(circ_target / circ_part.total()).entries() {
            out.add(s, d, r);
        }
    }
    if dag_target > 0.0 && dag_part.total() > 0.0 {
        for (s, d, r) in dag_part.scaled(dag_target / dag_part.total()).entries() {
            out.add(s, d, r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_circulation_is_balanced() {
        for seed in 0..5 {
            let d = random_circulation(12, 6, 0.5, 2.0, seed);
            assert!(d.is_circulation(1e-9), "seed {seed} not balanced");
            assert!(d.total() > 0.0);
        }
    }

    #[test]
    fn random_dag_has_no_cycles() {
        let d = random_dag_demand(10, 15, 1.0, 1.0, 3);
        assert_eq!(d.len(), 15);
        // All edges go up in index -> acyclic by construction.
        for (s, t, _) in d.entries() {
            assert!(s < t);
        }
        assert!(!d.is_circulation(1e-9));
    }

    #[test]
    fn mixed_demand_hits_fraction() {
        let d = mixed_demand(12, 100.0, 0.6, 7);
        assert!((d.total() - 100.0).abs() < 1e-6);
        let dec = spider_opt_smoke_decompose(&d);
        // Circulation fraction should be at least the constructed 60%
        // (extra cycles can emerge from the overlay, never fewer).
        assert!(dec >= 0.6 - 1e-6, "circulation fraction {dec}");
    }

    // Minimal local re-implementation of the circulation value check to
    // avoid a dev-dependency cycle with spider-opt: total - sum of positive
    // node imbalances is an upper bound; for the `mixed_demand` construction
    // the circulation part is balanced, so the bound is tight from below.
    fn spider_opt_smoke_decompose(d: &DemandMatrix) -> f64 {
        let mut imbalance: std::collections::BTreeMap<NodeId, f64> = Default::default();
        for (s, t, r) in d.entries() {
            *imbalance.entry(s).or_insert(0.0) += r;
            *imbalance.entry(t).or_insert(0.0) -= r;
        }
        let positive: f64 = imbalance.values().filter(|v| **v > 0.0).sum();
        (d.total() - positive) / d.total()
    }

    #[test]
    fn mixed_extremes() {
        let pure_circ = mixed_demand(10, 50.0, 1.0, 1);
        assert!(pure_circ.is_circulation(1e-9));
        let pure_dag = mixed_demand(10, 50.0, 0.0, 1);
        assert!(!pure_dag.is_circulation(1e-6));
        assert!((pure_dag.total() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn deterministic() {
        let a = mixed_demand(10, 10.0, 0.5, 42);
        let b = mixed_demand(10, 10.0, 0.5, 42);
        assert_eq!(a, b);
    }
}
