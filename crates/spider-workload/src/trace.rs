//! Transaction trace generation (§6.1).
//!
//! The paper's workload: Poisson transaction arrivals; the sender of each
//! transaction sampled from the node set with an *exponential* distribution
//! (a few nodes originate most payments), the receiver *uniformly at
//! random*; sizes from the Ripple trace. This module reproduces that recipe
//! deterministically from a seed, plus a non-stationary variant (demand
//! pattern shifts over time) matching the Ripple experiment's description of
//! "traffic demands \[that\] vary over time".

use crate::sizes::BoundedPareto;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use spider_core::{Amount, DemandMatrix, NodeId, PaymentId};

/// One application-level payment request.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Transaction {
    /// Unique payment id (dense, in arrival order).
    pub id: PaymentId,
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Payment value.
    pub amount: Amount,
    /// Arrival time in seconds from simulation start.
    pub arrival: f64,
}

/// How senders are drawn from the node set.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SenderDistribution {
    /// Node `i` is chosen with probability ∝ `exp(-i / scale)` — the paper's
    /// skewed sender population. Smaller `scale` = more skew.
    Exponential {
        /// Decay scale in node-index units.
        scale: f64,
    },
    /// Every node equally likely.
    Uniform,
}

/// Temporal shape of the arrival process.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArrivalPattern {
    /// Homogeneous Poisson arrivals (the paper's setup).
    Poisson,
    /// Sinusoidally modulated rate, peaking mid-window: models diurnal
    /// payment activity. `peak_to_trough` ≥ 1 is the rate ratio between the
    /// busiest and quietest instants.
    Diurnal {
        /// Ratio between peak and trough arrival rates.
        peak_to_trough: f64,
    },
    /// Alternating bursts and gaps: `burst_fraction` of each cycle of
    /// `cycle` seconds carries all the traffic. Stresses transient
    /// congestion and queueing.
    Bursty {
        /// Cycle length in seconds.
        cycle: f64,
        /// Fraction of the cycle that is burst (0, 1].
        burst_fraction: f64,
    },
}

/// Configuration for trace generation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of nodes in the network (senders/receivers are `0..n`).
    pub num_nodes: usize,
    /// Number of transactions to generate.
    pub num_transactions: usize,
    /// Total arrival window in seconds; arrivals are Poisson with rate
    /// `num_transactions / duration`.
    pub duration: f64,
    /// Sender skew.
    pub senders: SenderDistribution,
    /// If `true`, the sender-identity mapping is re-randomized halfway
    /// through the trace, making the demand matrix non-stationary (the
    /// paper's Ripple workload behaviour).
    pub nonstationary: bool,
    /// RNG seed; identical configs + seeds yield identical traces.
    pub seed: u64,
    /// Temporal arrival pattern.
    pub pattern: ArrivalPattern,
}

impl TraceConfig {
    /// The paper's ISP workload shape: stationary, exponential senders.
    pub fn isp_default(num_nodes: usize, num_transactions: usize, duration: f64) -> Self {
        TraceConfig {
            num_nodes,
            num_transactions,
            duration,
            senders: SenderDistribution::Exponential {
                scale: num_nodes as f64 / 4.0,
            },
            nonstationary: false,
            seed: 0,
            pattern: ArrivalPattern::Poisson,
        }
    }

    /// The paper's Ripple workload shape: non-stationary demand.
    pub fn ripple_default(num_nodes: usize, num_transactions: usize, duration: f64) -> Self {
        TraceConfig {
            nonstationary: true,
            ..Self::isp_default(num_nodes, num_transactions, duration)
        }
    }
}

/// Generates a transaction trace, sorted by arrival time.
///
/// # Panics
/// Panics if the config has fewer than 2 nodes, zero duration, or a
/// non-positive sender scale.
pub fn generate(config: &TraceConfig, sizes: &BoundedPareto) -> Vec<Transaction> {
    assert!(config.num_nodes >= 2, "need at least 2 nodes");
    assert!(config.duration > 0.0, "duration must be positive");
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Sender CDF over node indices.
    let weights: Vec<f64> = match config.senders {
        SenderDistribution::Exponential { scale } => {
            assert!(scale > 0.0, "sender scale must be positive");
            (0..config.num_nodes)
                .map(|i| (-(i as f64) / scale).exp())
                .collect()
        }
        SenderDistribution::Uniform => vec![1.0; config.num_nodes],
    };
    let mut cdf: Vec<f64> = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cdf.push(acc);
    }
    let total_weight = acc;

    // Identity permutation of "who is a heavy sender"; reshuffled halfway
    // when non-stationary.
    let mut identity: Vec<u32> = (0..config.num_nodes as u32).collect();
    let mut shifted = false;

    let rate = config.num_transactions as f64 / config.duration;
    // Non-homogeneous patterns are sampled by thinning against the peak
    // rate; `rate_at` returns the instantaneous relative rate in (0, 1].
    let (peak_multiplier, rate_at): (f64, Box<dyn Fn(f64) -> f64>) = match config.pattern {
        ArrivalPattern::Poisson => (1.0, Box::new(|_| 1.0)),
        ArrivalPattern::Diurnal { peak_to_trough } => {
            assert!(peak_to_trough >= 1.0, "peak_to_trough must be ≥ 1");
            let duration = config.duration;
            // rate(t) ∝ trough + (1 - trough)·sin²(πt/D); normalized so the
            // *peak* is 1.
            let trough = 1.0 / peak_to_trough;
            (
                // mean of trough + (1-trough)·sin² over the window is
                // (1 + trough) / 2; peak multiplier rescales the base rate
                // so the transaction count stays on target.
                2.0 / (1.0 + trough),
                Box::new(move |t: f64| {
                    let sin = (std::f64::consts::PI * t / duration).sin();
                    trough + (1.0 - trough) * sin * sin
                }),
            )
        }
        ArrivalPattern::Bursty {
            cycle,
            burst_fraction,
        } => {
            assert!(cycle > 0.0, "cycle must be positive");
            assert!(
                burst_fraction > 0.0 && burst_fraction <= 1.0,
                "burst_fraction must be in (0, 1]"
            );
            (
                1.0 / burst_fraction,
                Box::new(move |t: f64| {
                    if (t % cycle) / cycle < burst_fraction {
                        1.0
                    } else {
                        0.0
                    }
                }),
            )
        }
    };
    let peak_rate = rate * peak_multiplier;

    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(config.num_transactions);
    for k in 0..config.num_transactions {
        // Thinning: candidate exponential steps at the peak rate, accepted
        // with probability rate_at(t). For Poisson this accepts always.
        loop {
            let u: f64 = rng.random();
            t += -u.ln() / peak_rate.max(f64::MIN_POSITIVE);
            let accept: f64 = rng.random();
            if accept < rate_at(t) {
                break;
            }
        }

        if config.nonstationary && !shifted && t > config.duration / 2.0 {
            use rand::seq::SliceRandom;
            identity.shuffle(&mut rng);
            shifted = true;
        }

        let src_rank = sample_cdf(&cdf, total_weight, &mut rng);
        let src = NodeId(identity[src_rank]);
        // Receiver: uniform over the other nodes.
        let dst = loop {
            let d = NodeId(rng.random_range(0..config.num_nodes as u32));
            if d != src {
                break d;
            }
        };
        out.push(Transaction {
            id: PaymentId(k as u64),
            src,
            dst,
            amount: sizes.sample_amount(&mut rng),
            arrival: t,
        });
    }
    out
}

fn sample_cdf<R: Rng + ?Sized>(cdf: &[f64], total: f64, rng: &mut R) -> usize {
    let u: f64 = rng.random_range(0.0..total);
    cdf.partition_point(|&c| c <= u).min(cdf.len() - 1)
}

/// Estimates the long-run demand matrix `d_{i,j}` (tokens/second) from a
/// trace window `[start, end)`.
///
/// This is what a Spider (LP) controller would measure before solving the
/// fluid LP.
pub fn demand_matrix(trace: &[Transaction], start: f64, end: f64) -> DemandMatrix {
    assert!(end > start, "empty estimation window");
    let mut d = DemandMatrix::new();
    for tx in trace {
        if tx.arrival >= start && tx.arrival < end {
            d.add(tx.src, tx.dst, tx.amount.as_tokens() / (end - start));
        }
    }
    d
}

/// Total value of all transactions in the trace.
pub fn total_volume(trace: &[Transaction]) -> Amount {
    trace.iter().map(|t| t.amount).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizes::isp_sizes;

    fn small_config() -> TraceConfig {
        TraceConfig::isp_default(32, 5_000, 100.0)
    }

    #[test]
    fn generates_requested_count_sorted() {
        let trace = generate(&small_config(), &isp_sizes());
        assert_eq!(trace.len(), 5_000);
        for w in trace.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        for (k, t) in trace.iter().enumerate() {
            assert_eq!(t.id, PaymentId(k as u64));
            assert_ne!(t.src, t.dst);
            assert!(t.amount.is_positive());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small_config(), &isp_sizes());
        let b = generate(&small_config(), &isp_sizes());
        assert_eq!(a, b);
        let mut cfg = small_config();
        cfg.seed = 1;
        let c = generate(&cfg, &isp_sizes());
        assert_ne!(a, c);
    }

    #[test]
    fn arrival_rate_close_to_target() {
        let trace = generate(&small_config(), &isp_sizes());
        let last = trace.last().unwrap().arrival;
        // 5000 arrivals at rate 50/s -> last arrival ≈ 100 s (±15%).
        assert!((last - 100.0).abs() < 15.0, "last arrival {last}");
    }

    #[test]
    fn exponential_senders_are_skewed() {
        let trace = generate(&small_config(), &isp_sizes());
        let mut counts = vec![0usize; 32];
        for t in &trace {
            counts[t.src.index()] += 1;
        }
        // Node 0 should send far more than node 31.
        assert!(counts[0] > 10 * counts[31].max(1), "counts {counts:?}");
    }

    #[test]
    fn uniform_senders_are_flat() {
        let mut cfg = small_config();
        cfg.senders = SenderDistribution::Uniform;
        cfg.num_transactions = 32_000;
        let trace = generate(&cfg, &isp_sizes());
        let mut counts = vec![0usize; 32];
        for t in &trace {
            counts[t.src.index()] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(
            *max < 2 * *min,
            "uniform counts spread too wide: {min}..{max}"
        );
    }

    #[test]
    fn receivers_cover_node_set() {
        let trace = generate(&small_config(), &isp_sizes());
        let mut seen = [false; 32];
        for t in &trace {
            seen[t.dst.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn nonstationary_shifts_heavy_senders() {
        let mut cfg = small_config();
        cfg.nonstationary = true;
        cfg.num_transactions = 20_000;
        cfg.seed = 123;
        let trace = generate(&cfg, &isp_sizes());
        let mid = cfg.duration / 2.0;
        let top_sender = |txs: &[Transaction]| -> NodeId {
            let mut counts = std::collections::BTreeMap::new();
            for t in txs {
                *counts.entry(t.src).or_insert(0usize) += 1;
            }
            counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0
        };
        let first: Vec<Transaction> = trace.iter().copied().filter(|t| t.arrival < mid).collect();
        let second: Vec<Transaction> = trace.iter().copied().filter(|t| t.arrival >= mid).collect();
        assert!(!first.is_empty() && !second.is_empty());
        // With 32 nodes the reshuffle moves the hottest sender with
        // probability 31/32; the fixed seed makes this deterministic.
        assert_ne!(top_sender(&first), top_sender(&second));
    }

    #[test]
    fn diurnal_pattern_peaks_mid_window() {
        let mut cfg = small_config();
        cfg.num_transactions = 20_000;
        cfg.pattern = ArrivalPattern::Diurnal {
            peak_to_trough: 8.0,
        };
        let trace = generate(&cfg, &isp_sizes());
        let mid = cfg.duration / 2.0;
        let band = cfg.duration / 8.0;
        let center = trace
            .iter()
            .filter(|t| (t.arrival - mid).abs() < band)
            .count();
        let edge = trace
            .iter()
            .filter(|t| t.arrival < 2.0 * band && t.arrival >= 0.0)
            .count();
        assert!(
            center as f64 > 2.0 * edge as f64,
            "mid-window should be much busier: center {center} vs edge {edge}"
        );
    }

    #[test]
    fn bursty_pattern_confines_arrivals_to_bursts() {
        let mut cfg = small_config();
        cfg.num_transactions = 5_000;
        cfg.pattern = ArrivalPattern::Bursty {
            cycle: 10.0,
            burst_fraction: 0.2,
        };
        let trace = generate(&cfg, &isp_sizes());
        for t in &trace {
            let phase = (t.arrival % 10.0) / 10.0;
            assert!(phase < 0.2 + 1e-9, "arrival at phase {phase} outside burst");
        }
    }

    #[test]
    fn patterns_preserve_transaction_count_and_rough_duration() {
        for pattern in [
            ArrivalPattern::Poisson,
            ArrivalPattern::Diurnal {
                peak_to_trough: 4.0,
            },
            ArrivalPattern::Bursty {
                cycle: 5.0,
                burst_fraction: 0.5,
            },
        ] {
            let mut cfg = small_config();
            cfg.pattern = pattern;
            let trace = generate(&cfg, &isp_sizes());
            assert_eq!(trace.len(), cfg.num_transactions);
            let last = trace.last().unwrap().arrival;
            assert!(
                (last - cfg.duration).abs() < cfg.duration * 0.25,
                "{pattern:?}: last arrival {last} vs window {}",
                cfg.duration
            );
        }
    }

    #[test]
    fn demand_matrix_estimation() {
        let trace = vec![
            Transaction {
                id: PaymentId(0),
                src: NodeId(0),
                dst: NodeId(1),
                amount: Amount::from_whole(10),
                arrival: 1.0,
            },
            Transaction {
                id: PaymentId(1),
                src: NodeId(0),
                dst: NodeId(1),
                amount: Amount::from_whole(30),
                arrival: 3.0,
            },
            Transaction {
                id: PaymentId(2),
                src: NodeId(1),
                dst: NodeId(0),
                amount: Amount::from_whole(100),
                arrival: 12.0, // outside window
            },
        ];
        let d = demand_matrix(&trace, 0.0, 10.0);
        assert!((d.rate(NodeId(0), NodeId(1)) - 4.0).abs() < 1e-9);
        assert_eq!(d.rate(NodeId(1), NodeId(0)), 0.0);
    }

    #[test]
    fn total_volume_sums() {
        let trace = generate(&small_config(), &isp_sizes());
        let v = total_volume(&trace);
        let expect: Amount = trace.iter().map(|t| t.amount).sum();
        assert_eq!(v, expect);
        assert!(v.as_tokens() > 100_000.0); // ~5000 * 170
    }
}
