//! Transaction-size distributions.
//!
//! The paper samples transaction sizes from Ripple trace data: the ISP
//! workload uses sizes with the largest 10% pruned (mean ≈ 170 XRP, max
//! 1780 XRP), the Ripple workload uses the full pruned-subgraph trace
//! (mean ≈ 345 XRP, max 2892 XRP). The raw trace is not redistributable, so
//! we model sizes with a *bounded Pareto* distribution — the standard model
//! for heavy-tailed payment sizes — with the shape parameter calibrated
//! numerically so the mean and maximum match the paper's reported values.

use rand::Rng;
use rand::RngExt;
use spider_core::Amount;

/// A bounded Pareto distribution on `[min, max]` with shape `alpha`.
#[derive(Clone, Copy, Debug)]
pub struct BoundedPareto {
    min: f64,
    max: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto with explicit parameters.
    ///
    /// # Panics
    /// Panics unless `0 < min < max` and `alpha > 0`.
    pub fn new(min: f64, max: f64, alpha: f64) -> Self {
        assert!(min > 0.0 && max > min, "need 0 < min < max");
        assert!(alpha > 0.0, "alpha must be positive");
        BoundedPareto { min, max, alpha }
    }

    /// Calibrates the shape parameter so the distribution's mean equals
    /// `target_mean`, via bisection on `alpha`.
    ///
    /// # Panics
    /// Panics if `target_mean` is not strictly between `min` and `max`.
    pub fn with_mean(min: f64, max: f64, target_mean: f64) -> Self {
        assert!(min > 0.0 && max > min);
        assert!(
            target_mean > min && target_mean < max,
            "target mean must lie strictly inside (min, max)"
        );
        // mean(alpha) is continuous and decreasing in alpha; bracket and bisect.
        let mean_of = |alpha: f64| BoundedPareto::new(min, max, alpha).mean();
        let (mut lo, mut hi) = (1e-6, 50.0);
        assert!(mean_of(lo) >= target_mean && mean_of(hi) <= target_mean);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if mean_of(mid) > target_mean {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        BoundedPareto::new(min, max, 0.5 * (lo + hi))
    }

    /// Lower bound of the support.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound of the support.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Analytic mean of the distribution.
    pub fn mean(&self) -> f64 {
        let (l, h, a) = (self.min, self.max, self.alpha);
        if (a - 1.0).abs() < 1e-12 {
            // alpha = 1 limit: L*H/(H-L) * ln(H/L).
            return l * h / (h - l) * (h / l).ln();
        }
        (l.powf(a) / (1.0 - (l / h).powf(a)))
            * (a / (a - 1.0))
            * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
    }

    /// Samples one value by inverse-CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        let (l, h, a) = (self.min, self.max, self.alpha);
        let ratio = (l / h).powf(a);
        l / (1.0 - u * (1.0 - ratio)).powf(1.0 / a)
    }

    /// Samples one value as an [`Amount`].
    pub fn sample_amount<R: Rng + ?Sized>(&self, rng: &mut R) -> Amount {
        Amount::from_tokens(self.sample(rng))
    }
}

/// Size distribution for the ISP workload: Ripple sizes with the top 10%
/// pruned — mean ≈ 170, max 1780 (paper §6.1).
pub fn isp_sizes() -> BoundedPareto {
    BoundedPareto::with_mean(1.0, 1780.0, 170.0)
}

/// Size distribution for the Ripple workload — mean ≈ 345, max 2892
/// (paper §6.1).
pub fn ripple_sizes() -> BoundedPareto {
    BoundedPareto::with_mean(1.0, 2892.0, 345.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn calibrated_mean_matches_isp_target() {
        let d = isp_sizes();
        assert!((d.mean() - 170.0).abs() < 0.5, "analytic mean {}", d.mean());
    }

    #[test]
    fn calibrated_mean_matches_ripple_target() {
        let d = ripple_sizes();
        assert!((d.mean() - 345.0).abs() < 0.5, "analytic mean {}", d.mean());
    }

    #[test]
    fn empirical_mean_close_to_analytic() {
        let d = isp_sizes();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let emp = sum / n as f64;
        assert!(
            (emp - d.mean()).abs() / d.mean() < 0.05,
            "empirical {emp} vs analytic {}",
            d.mean()
        );
    }

    #[test]
    fn samples_within_bounds() {
        let d = ripple_sizes();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!(x >= d.min() && x <= d.max(), "sample {x} out of bounds");
        }
    }

    #[test]
    fn heavy_tail_present() {
        // A nontrivial share of mass should exceed 3x the mean.
        let d = isp_sizes();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let over = (0..n)
            .filter(|_| d.sample(&mut rng) > 3.0 * d.mean())
            .count();
        let frac = over as f64 / n as f64;
        assert!(frac > 0.02 && frac < 0.25, "tail fraction {frac}");
    }

    #[test]
    fn alpha_one_mean_formula() {
        let d = BoundedPareto::new(1.0, 100.0, 1.0);
        // L*H/(H-L)*ln(H/L) = 100/99 * ln(100) ≈ 4.6517
        assert!((d.mean() - 100.0 / 99.0 * 100.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn sample_amount_is_positive() {
        let d = isp_sizes();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(d.sample_amount(&mut rng).is_positive());
        }
    }

    #[test]
    #[should_panic(expected = "strictly inside")]
    fn with_mean_rejects_out_of_range_target() {
        BoundedPareto::with_mean(1.0, 10.0, 20.0);
    }

    #[test]
    fn mean_decreases_with_alpha() {
        let lo = BoundedPareto::new(1.0, 1000.0, 0.5).mean();
        let hi = BoundedPareto::new(1.0, 1000.0, 3.0).mean();
        assert!(lo > hi);
    }
}
