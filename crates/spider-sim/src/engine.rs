//! The discrete-event simulation engine (§6.1).
//!
//! Mirrors the paper's simulator semantics:
//!
//! - transactions arrive over time and are routed by a pluggable
//!   [`RoutingScheme`];
//! - routed value is locked along its path and settles `Δ = 0.5 s` later
//!   (funds are unavailable to everyone in between);
//! - atomic schemes deliver a payment entirely at arrival or fail it;
//! - packet-switched schemes split payments into MTU-bounded transaction
//!   units; incomplete payments sit in a global queue that is polled
//!   periodically and serviced in scheduling-policy order (SRPT by
//!   default);
//! - payments that miss their deadline are abandoned — value already
//!   settled stays delivered (non-atomic transport), but the payment does
//!   not count as a success.
//!
//! The engine is single-threaded and completely deterministic: identical
//! inputs produce identical runs.

use crate::audit::{AuditViolation, LedgerAudit};
use crate::congestion::{CongestionConfig, CongestionControl};
use crate::events::EventQueue;
use crate::faults::{
    Blacklist, FaultEvent, FaultPlan, FaultState, FaultStats, FaultView, RetryPolicy, UnitFate,
};
use crate::ledger::{Ledger, LedgerView};
use crate::metrics::SimReport;
use crate::payment::{PaymentState, PaymentStatus};
use crate::rebalancer::{RebalancePolicy, RebalanceStats};
use crate::scheduler::SchedulePolicy;
use crate::snapshot::{self, CheckpointSpec, SnapshotError};
use spider_core::{crc32, Amount, ChannelId, CoreError, Dec, Enc, Network, NodeId, Path};
use spider_routing::{fees::FeeSchedule, RoutingScheme, SchemeKind, UnitDecision};
use spider_telemetry::{Histogram, NetworkSample, Phase, Telemetry, TraceEvent};
use spider_workload::Transaction;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Hard end of the measurement window (seconds); events after this are
    /// not processed.
    pub end_time: f64,
    /// Settlement delay Δ (seconds); the paper uses 0.5.
    pub delta: f64,
    /// Maximum transaction unit for packet-switched schemes.
    pub mtu: Amount,
    /// Scheduler poll interval (seconds).
    pub poll_interval: f64,
    /// Per-payment deadline window (seconds after arrival).
    pub deadline: f64,
    /// Service order for pending payments.
    pub policy: SchedulePolicy,
    /// Record a `(time, success_ratio, success_volume)` sample at every
    /// poll tick.
    pub record_series: bool,
    /// Optional on-chain rebalancing by routers (§5.2.3 / §7 extension).
    pub rebalance: Option<RebalancePolicy>,
    /// Optional AIMD congestion control at end hosts (§4.1 extension).
    pub congestion: Option<CongestionConfig>,
    /// Atomic Multi-Path mode (§4.1, AMP \[1\]): packet-switched payments
    /// become all-or-nothing — the receiver cannot unlock any unit until
    /// every unit has arrived, so settlement is deferred until the full
    /// amount is in flight at the receiver, and everything is refunded if
    /// the deadline passes first.
    pub amp: bool,
    /// Optional routing fees (§2/§7 extension, packet-switched schemes):
    /// senders pay each relay's base + proportional fee on every unit.
    pub fees: Option<FeeSchedule>,
    /// Audit the ledger after every balance-mutating event: per-channel
    /// non-negativity and exact global conservation of funds, reported as
    /// [`SimReport::audit_violations`](crate::SimReport).
    pub audit: bool,
    /// Optional deterministic fault injection: channel outages, node churn,
    /// unit drops, settlement jitter, and HTLC griefing, plus the sender
    /// retry policy carried in the plan's [`FaultConfig`](crate::faults::FaultConfig).
    pub faults: Option<FaultPlan>,
    /// Telemetry handle. Disabled by default; when enabled the engine
    /// records payment-lifecycle trace events, a completion-delay histogram,
    /// and periodic channel samples (piggybacked on scheduler ticks so the
    /// event sequence — and therefore determinism — is unchanged).
    pub telemetry: Telemetry,
}

impl SimConfig {
    /// The paper's defaults with the given measurement window.
    pub fn new(end_time: f64) -> Self {
        SimConfig {
            end_time,
            delta: 0.5,
            mtu: Amount::from_whole(10),
            poll_interval: 0.1,
            deadline: 5.0,
            policy: SchedulePolicy::Srpt,
            record_series: false,
            rebalance: None,
            congestion: None,
            amp: false,
            fees: None,
            audit: false,
            faults: None,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// How a unit was marked to fail in flight, with the blamed channel.
#[derive(Clone, Copy, Debug)]
enum UnitFault {
    /// Dropped mid-path by the per-unit loss process.
    Dropped(ChannelId),
    /// HTLC griefed at the blamed hop: funds pinned until the hold expires.
    Griefed(ChannelId),
}

/// One in-flight (or finished) transaction unit. Units live in a slab so
/// fault events can find and refund them by scanning paths; `resolved`
/// guards against double release when a refund races a scheduled settle.
struct UnitRecord {
    payment: usize,
    path: std::sync::Arc<Path>,
    amount: Amount,
    /// Per-hop locked amounts when fees apply (upstream hops carry the
    /// delivered amount plus downstream fees); `None` = uniform.
    hop_amounts: Option<Vec<Amount>>,
    fault: Option<UnitFault>,
    resolved: bool,
}

/// What a payment timer means when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum TimerKind {
    /// The payment's deadline passed: abandon it if still pending.
    Deadline,
    /// A retry backoff expired: pump the payment again.
    Retry,
}

/// Min-heap entry for deadline and retry timers, keyed
/// `(time, payment, kind)` so expiry processing is deterministic. Replaces
/// the former O(n)-per-tick scan over all pending payments.
#[derive(Debug)]
struct Timer {
    time: f64,
    payment: usize,
    kind: TimerKind,
}

impl PartialEq for Timer {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Timer {}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Times are finite simulation instants, so total_cmp is a total
        // order consistent with numeric comparison.
        self.time
            .total_cmp(&other.time)
            .then(self.payment.cmp(&other.payment))
            .then(self.kind.cmp(&other.kind))
    }
}

/// Live fault-injection state: the channel/node mask, the sender blacklist,
/// and per-payment retry accounting (vectors grow with arrivals).
struct FaultRuntime {
    state: FaultState,
    blacklist: Blacklist,
    retry: Option<RetryPolicy>,
    fail_count: Vec<u32>,
    not_before: Vec<f64>,
}

enum Event {
    Arrival(usize),
    /// A unit reaches the end of its path and settles (index into the unit
    /// slab; skipped if the unit was already refunded by a fault).
    Settle {
        unit: usize,
    },
    /// A dropped or griefed unit's failure becomes visible to the sender
    /// and its locked funds are refunded.
    FaultExpire {
        unit: usize,
    },
    /// A scheduled fault transition from the [`FaultPlan`].
    Fault(FaultEvent),
    Tick,
    /// Routers inspect channel skew (cadence: `RebalancePolicy::check_interval`).
    RebalanceCheck,
    /// A submitted on-chain rebalancing transaction confirms.
    RebalanceApply {
        channel: spider_core::ChannelId,
    },
}

/// Caps engine-recorded release violations like the auditor caps its own.
pub(crate) const MAX_RELEASE_VIOLATIONS: usize = 32;

/// Records a refused over-release (see
/// [`AuditViolationKind::ExcessRelease`](crate::audit::AuditViolationKind))
/// so it surfaces in the report even when periodic auditing is off.
pub(crate) fn record_release(
    violations: &mut Vec<AuditViolation>,
    time: f64,
    event: &str,
    err: &CoreError,
) {
    if violations.len() < MAX_RELEASE_VIOLATIONS {
        if let Some(v) = AuditViolation::from_release_error(time, event, err) {
            violations.push(v);
        }
    }
}

/// Runs one simulation of `transactions` over `network` with `scheme`.
///
/// Transactions must be sorted by arrival time; arrivals after
/// `config.end_time` are ignored.
pub fn run(
    network: &Network,
    transactions: &[Transaction],
    scheme: &mut dyn RoutingScheme,
    config: &SimConfig,
) -> SimReport {
    match run_inner(network, transactions, scheme, config, None, None) {
        Ok(report) => report,
        // No checkpoint spec and no resume state: no snapshot I/O happens,
        // so no snapshot error can arise.
        // spider-lint: allow(panic-reachability) — infallible wrapper; the Err arm is statically dead
        Err(e) => unreachable!("plain run cannot fail with a snapshot error: {e}"),
    }
}

/// Runs the simulation, writing a crash-safe snapshot into `ckpt.dir` every
/// `ckpt.every` scheduler ticks.
pub fn run_checkpointed(
    network: &Network,
    transactions: &[Transaction],
    scheme: &mut dyn RoutingScheme,
    config: &SimConfig,
    ckpt: &CheckpointSpec,
) -> Result<SimReport, SnapshotError> {
    run_inner(network, transactions, scheme, config, None, Some(ckpt))
}

/// Resumes a run from a snapshot file written by [`run_checkpointed`] and
/// carries it to completion, optionally continuing to checkpoint.
///
/// The snapshot must come from the same inputs (network, transactions,
/// scheme, config) — a recorded fingerprint guards against mixups — and the
/// completed run's report and telemetry are byte-identical to an
/// uninterrupted run.
pub fn resume(
    network: &Network,
    transactions: &[Transaction],
    scheme: &mut dyn RoutingScheme,
    config: &SimConfig,
    snapshot_path: &std::path::Path,
    ckpt: Option<&CheckpointSpec>,
) -> Result<SimReport, SnapshotError> {
    let snap = snapshot::read_snapshot(snapshot_path)?;
    let fp = fingerprint(network, transactions, config, scheme.name());
    snap.check(snapshot::ENGINE_SEQ, fp)?;
    let state = decode_seq_core(snap.section(snapshot::SEC_CORE)?, network)?;
    scheme
        .restore_state(network, snap.section(snapshot::SEC_SCHEME)?)
        .map_err(|e| SnapshotError::Unsupported {
            what: format!("scheme state restore: {e}"),
        })?;
    let tel_state =
        snapshot::decode_telemetry(snap.section_opt(snapshot::SEC_TELEMETRY).unwrap_or(&[]))?;
    // The caller's handle is restored *in place* so clones of it keep
    // visibility into the resumed run's trace. The fingerprint already pins
    // the enabled flag and sampling cadence, so presence must line up.
    if let Some(ts) = tel_state {
        config
            .telemetry
            .restore_from_state(ts)
            .map_err(|e| SnapshotError::Unsupported {
                what: format!("telemetry restore: {e}"),
            })?;
    } else if config.telemetry.is_enabled() {
        return Err(SnapshotError::Corrupt {
            what: "snapshot lacks telemetry state for an enabled handle".to_string(),
        });
    }
    run_inner(network, transactions, scheme, config, Some(state), ckpt)
}

#[allow(clippy::too_many_lines)]
fn run_inner(
    network: &Network,
    transactions: &[Transaction],
    scheme: &mut dyn RoutingScheme,
    config: &SimConfig,
    resume: Option<SeqResume>,
    ckpt: Option<&CheckpointSpec>,
) -> Result<SimReport, SnapshotError> {
    assert!(config.delta > 0.0 && config.poll_interval > 0.0 && config.deadline > 0.0);
    assert!(config.mtu.is_positive(), "MTU must be positive");

    let fp = if ckpt.is_some() {
        fingerprint(network, transactions, config, scheme.name())
    } else {
        0
    };

    let mut ledger = Ledger::new(network);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut payments: Vec<PaymentState> = Vec::with_capacity(transactions.len());
    let mut pending: Vec<usize> = Vec::new();

    // A resumed run restores the event queue (arrivals not yet processed,
    // the next tick, pending fault transitions, ...) wholesale from the
    // snapshot, so the initial pushes happen only on a fresh start.
    if resume.is_none() {
        for (i, tx) in transactions.iter().enumerate() {
            if tx.arrival <= config.end_time {
                queue.push(tx.arrival, Event::Arrival(i));
            }
        }
        queue.push(config.poll_interval, Event::Tick);
        if let Some(policy) = &config.rebalance {
            policy.validate();
            queue.push(policy.check_interval, Event::RebalanceCheck);
        }
        if let Some(plan) = &config.faults {
            for (t, ev) in &plan.events {
                if *t <= config.end_time {
                    queue.push(*t, Event::Fault(ev.clone()));
                }
            }
        }
    } else if let Some(policy) = &config.rebalance {
        policy.validate();
    }
    let mut faults: Option<FaultRuntime> = config.faults.as_ref().map(|plan| FaultRuntime {
        state: FaultState::new(plan, network),
        blacklist: Blacklist::new(network.num_channels()),
        retry: plan.config.retry.clone(),
        fail_count: Vec::new(),
        not_before: Vec::new(),
    });
    let mut rebalance_pending = vec![false; network.num_channels()];
    let mut rebalance_stats = RebalanceStats::default();
    let mut congestion = config.congestion.map(CongestionControl::new);
    // The unit slab: every sent unit, live or finished. Fault events scan
    // it for unresolved units whose paths cross a newly-down channel.
    let mut units: Vec<UnitRecord> = Vec::new();
    // Deadline + retry timers (satellite of the fault work: replaces the
    // former O(n)-per-tick deadline scan).
    let mut timers: BinaryHeap<Reverse<Timer>> = BinaryHeap::new();
    // AMP: unit indices that reached the receiver but whose keys are
    // withheld until the whole payment has arrived. Indexed by payment
    // slot, grown on demand.
    let mut amp_held: Vec<Vec<usize>> = Vec::new();
    let mut routing_fees_paid = Amount::ZERO;
    // Refused over-releases (double settle/refund), surfaced in the report
    // even when periodic auditing is off.
    let mut release_violations: Vec<AuditViolation> = Vec::new();

    let mut units_sent: u64 = 0;
    let mut series: Vec<(f64, f64, f64)> = Vec::new();
    let packet_switched = scheme.kind() == SchemeKind::PacketSwitched;
    let mut audit = config.audit.then(|| LedgerAudit::new(&ledger));

    let tel = &config.telemetry;
    let mut network_series: Vec<NetworkSample> = Vec::new();
    // Channel samples piggyback on Tick events at this cadence; no events
    // of their own are queued, so (time, sequence) ordering is untouched.
    let mut next_sample = tel.sample_interval().unwrap_or(f64::INFINITY);
    // Scheduler ticks processed so far (checkpoint cadence).
    let mut ticks: u64 = 0;

    if let Some(st) = resume {
        ticks = st.ticks;
        for (i, raw) in st.channels.into_iter().enumerate() {
            ledger.restore_channel(ChannelId::from(i), raw);
        }
        for (t, seq, event) in st.queue_entries {
            queue.push_with_seq(t, seq, event);
        }
        queue.set_next_seq(st.queue_next_seq);
        payments = st.payments;
        pending = st.pending;
        if let Some((snap, slots, fail_count, not_before)) = st.faults {
            let fr = faults.as_mut().ok_or_else(|| SnapshotError::Corrupt {
                what: "snapshot has fault state but config has no fault plan".to_string(),
            })?;
            fr.state
                .restore_state(snap)
                .map_err(|what| SnapshotError::Corrupt { what })?;
            fr.blacklist
                .restore_slots(slots)
                .map_err(|what| SnapshotError::Corrupt { what })?;
            fr.fail_count = fail_count;
            fr.not_before = not_before;
        } else if faults.is_some() {
            return Err(SnapshotError::Corrupt {
                what: "config has a fault plan but snapshot has no fault state".to_string(),
            });
        }
        rebalance_pending = st.rebalance_pending;
        rebalance_stats = st.rebalance_stats;
        if let Some(entries) = st.congestion {
            if let Some(cc) = congestion.as_mut() {
                cc.restore_state(&entries);
            }
        }
        units = st.units;
        for timer in st.timers {
            timers.push(Reverse(timer));
        }
        amp_held = st.amp_held;
        routing_fees_paid = st.routing_fees_paid;
        release_violations = st.release_violations;
        units_sent = st.units_sent;
        series = st.series;
        audit = st.audit.map(LedgerAudit::from_state);
        network_series = st.network_series;
        next_sample = st.next_sample;
    }

    while let Some((now, event)) = queue.pop() {
        if now > config.end_time {
            break;
        }
        match event {
            Event::Arrival(i) => {
                let _span = tel.span_enter(Phase::RoutingDecision);
                tel.span_sim(Phase::RoutingDecision, now);
                tel.span_items(Phase::RoutingDecision, 1);
                let tx = &transactions[i];
                let idx = payments.len();
                payments.push(PaymentState {
                    id: tx.id,
                    src: tx.src,
                    dst: tx.dst,
                    amount: tx.amount,
                    arrival: tx.arrival,
                    deadline: tx.arrival + config.deadline,
                    delivered: Amount::ZERO,
                    inflight: Amount::ZERO,
                    status: PaymentStatus::Pending,
                    completed_at: None,
                });
                if let Some(fr) = faults.as_mut() {
                    fr.fail_count.push(0);
                    fr.not_before.push(f64::NEG_INFINITY);
                }
                tel.counter_add("sim.payments.arrived", 1);
                tel.emit(|| TraceEvent::PaymentArrived {
                    t: now,
                    payment: tx.id.0,
                    src: tx.src.0,
                    dst: tx.dst.0,
                    amount: tx.amount.as_tokens(),
                });
                if packet_switched {
                    tel.emit(|| TraceEvent::PaymentSplit {
                        t: now,
                        payment: tx.id.0,
                        // ceil(amount / mtu) in exact micro-units.
                        units: ((tx.amount.micros() + config.mtu.micros() - 1)
                            / config.mtu.micros())
                        .max(0) as u64,
                    });
                    pending.push(idx);
                    timers.push(Reverse(Timer {
                        time: payments[idx].deadline,
                        payment: idx,
                        kind: TimerKind::Deadline,
                    }));
                    pump_payment(
                        network,
                        &mut ledger,
                        scheme,
                        idx,
                        &mut payments[idx],
                        config,
                        now,
                        &mut queue,
                        &mut units,
                        &mut units_sent,
                        congestion.as_mut(),
                        faults.as_mut(),
                    );
                } else {
                    attempt_atomic(
                        network,
                        &mut ledger,
                        scheme,
                        &mut payments[idx],
                        idx,
                        config,
                        now,
                        &mut queue,
                        &mut units,
                        &mut units_sent,
                        faults.as_mut(),
                        &mut release_violations,
                    );
                }
            }
            Event::Settle { unit } => {
                // A fault may have refunded this unit while its settle was
                // already scheduled.
                if units[unit].resolved {
                    continue;
                }
                let _span = tel.span_enter(Phase::SettleRefund);
                tel.span_sim(Phase::SettleRefund, now);
                tel.span_items(Phase::SettleRefund, 1);
                let payment = units[unit].payment;
                let amount = units[unit].amount;
                if let Some(cc) = congestion.as_mut() {
                    if packet_switched {
                        let p = &payments[payment];
                        cc.on_settle(p.src, p.dst);
                    }
                }
                if config.amp && packet_switched {
                    if payments[payment].status == PaymentStatus::Abandoned {
                        // Deadline already passed: the sender withholds the
                        // key, so this late unit bounces straight back.
                        let res = {
                            let u = &units[unit];
                            refund_unit(network, &mut ledger, &u.path, u.amount, &u.hop_amounts)
                        };
                        units[unit].resolved = true;
                        match res {
                            Ok(()) => {
                                payments[payment].inflight -= amount;
                                tel.counter_add("sim.units.refunded", 1);
                                tel.emit(|| TraceEvent::UnitRefunded {
                                    t: now,
                                    payment: payments[payment].id.0,
                                    amount: amount.as_tokens(),
                                });
                            }
                            Err(e) => {
                                record_release(&mut release_violations, now, "amp-bounce", &e)
                            }
                        }
                        if let Some(a) = audit.as_mut() {
                            a.check(&ledger, now, "amp-bounce");
                        }
                        continue;
                    }
                    // Withhold the key until the whole payment has arrived.
                    if payment >= amp_held.len() {
                        amp_held.resize_with(payment + 1, Vec::new);
                    }
                    amp_held[payment].push(unit);
                    let arrived: Amount = amp_held[payment]
                        .iter()
                        .filter(|&&ui| !units[ui].resolved)
                        .map(|&ui| units[ui].amount)
                        .sum();
                    if arrived >= payments[payment].amount
                        && payments[payment].status == PaymentStatus::Pending
                    {
                        for ui in std::mem::take(&mut amp_held[payment]) {
                            if units[ui].resolved {
                                continue;
                            }
                            let res = {
                                let u = &units[ui];
                                settle_unit(network, &mut ledger, &u.path, u.amount, &u.hop_amounts)
                            };
                            units[ui].resolved = true;
                            match res {
                                Ok(fee) => {
                                    routing_fees_paid += fee;
                                    let held_amount = units[ui].amount;
                                    let p = &mut payments[payment];
                                    p.inflight -= held_amount;
                                    p.delivered += held_amount;
                                    tel.counter_add("sim.units.settled", 1);
                                    tel.emit(|| TraceEvent::UnitSettled {
                                        t: now,
                                        payment: payments[payment].id.0,
                                        amount: held_amount.as_tokens(),
                                    });
                                }
                                Err(e) => {
                                    record_release(&mut release_violations, now, "settle", &e)
                                }
                            }
                        }
                        let p = &mut payments[payment];
                        if p.fully_delivered() {
                            p.status = PaymentStatus::Completed;
                            p.completed_at = Some(now);
                            let delay = now - p.arrival;
                            let pid = p.id.0;
                            tel.counter_add("sim.payments.completed", 1);
                            tel.histogram_observe(
                                "sim.completion_delay",
                                delay,
                                Histogram::latency_default,
                            );
                            tel.emit(|| TraceEvent::PaymentCompleted {
                                t: now,
                                payment: pid,
                                delay,
                            });
                        }
                    }
                } else {
                    let res = {
                        let u = &units[unit];
                        settle_unit(network, &mut ledger, &u.path, u.amount, &u.hop_amounts)
                    };
                    units[unit].resolved = true;
                    match res {
                        Ok(fee) => {
                            routing_fees_paid += fee;
                            let p = &mut payments[payment];
                            p.inflight -= amount;
                            p.delivered += amount;
                            let pid = p.id.0;
                            tel.counter_add("sim.units.settled", 1);
                            tel.emit(|| TraceEvent::UnitSettled {
                                t: now,
                                payment: pid,
                                amount: amount.as_tokens(),
                            });
                            if p.status == PaymentStatus::Pending && p.fully_delivered() {
                                p.status = PaymentStatus::Completed;
                                p.completed_at = Some(now);
                                let delay = now - p.arrival;
                                tel.counter_add("sim.payments.completed", 1);
                                tel.histogram_observe(
                                    "sim.completion_delay",
                                    delay,
                                    Histogram::latency_default,
                                );
                                tel.emit(|| TraceEvent::PaymentCompleted {
                                    t: now,
                                    payment: pid,
                                    delay,
                                });
                            }
                        }
                        Err(e) => record_release(&mut release_violations, now, "settle", &e),
                    }
                }
                if let Some(a) = audit.as_mut() {
                    a.check(&ledger, now, "settle");
                }
            }
            Event::FaultExpire { unit } => {
                if units[unit].resolved {
                    continue;
                }
                let _span = tel.span_enter(Phase::FaultProcessing);
                tel.span_sim(Phase::FaultProcessing, now);
                tel.span_items(Phase::FaultProcessing, 1);
                let payment = units[unit].payment;
                let amount = units[unit].amount;
                let Some(fault) = units[unit].fault else {
                    // FaultExpire events are only scheduled for units
                    // created with a fate; a fateless unit has nothing to
                    // expire.
                    continue;
                };
                let res = {
                    let u = &units[unit];
                    refund_unit(network, &mut ledger, &u.path, u.amount, &u.hop_amounts)
                };
                units[unit].resolved = true;
                match res {
                    Ok(()) => {
                        payments[payment].inflight -= amount;
                        let pid = payments[payment].id.0;
                        let blamed = match fault {
                            UnitFault::Dropped(c) => {
                                tel.counter_add("sim.units.dropped", 1);
                                tel.emit(|| TraceEvent::UnitDropped {
                                    t: now,
                                    payment: pid,
                                    amount: amount.as_tokens(),
                                    channel: c.index() as u32,
                                });
                                c
                            }
                            UnitFault::Griefed(c) => {
                                let hold = config
                                    .faults
                                    .as_ref()
                                    .map_or(0.0, |plan| plan.config.grief_hold);
                                tel.counter_add("sim.units.griefed", 1);
                                tel.emit(|| TraceEvent::UnitGriefed {
                                    t: now,
                                    payment: pid,
                                    amount: amount.as_tokens(),
                                    hold,
                                });
                                c
                            }
                        };
                        tel.counter_add("sim.units.refunded", 1);
                        tel.emit(|| TraceEvent::UnitRefunded {
                            t: now,
                            payment: pid,
                            amount: amount.as_tokens(),
                        });
                        if let Some(fr) = faults.as_mut() {
                            handle_unit_fault(
                                payment,
                                blamed,
                                now,
                                &mut payments,
                                fr,
                                &mut timers,
                                tel,
                                packet_switched,
                            );
                        }
                    }
                    Err(e) => record_release(&mut release_violations, now, "fault-expire", &e),
                }
                if let Some(a) = audit.as_mut() {
                    a.check(&ledger, now, "fault-expire");
                }
            }
            Event::Fault(ev) => {
                let _span = tel.span_enter(Phase::FaultProcessing);
                tel.span_sim(Phase::FaultProcessing, now);
                tel.span_items(Phase::FaultProcessing, 1);
                let Some(fr) = faults.as_mut() else {
                    // Fault events are only scheduled when a plan is
                    // installed.
                    continue;
                };
                match &ev {
                    FaultEvent::ChannelDown(c) => {
                        let ch = c.index() as u32;
                        tel.counter_add("sim.faults.outages", 1);
                        tel.emit(|| TraceEvent::ChannelOutage {
                            t: now,
                            channel: ch,
                        });
                    }
                    FaultEvent::ChannelUp(c) => {
                        let ch = c.index() as u32;
                        tel.emit(|| TraceEvent::ChannelRecovered {
                            t: now,
                            channel: ch,
                        });
                    }
                    FaultEvent::NodeDown(n) => {
                        let node = n.index() as u32;
                        tel.counter_add("sim.faults.node_crashes", 1);
                        tel.emit(|| TraceEvent::NodeCrashed { t: now, node });
                    }
                    FaultEvent::NodeUp(n) => {
                        let node = n.index() as u32;
                        tel.emit(|| TraceEvent::NodeRecovered { t: now, node });
                    }
                }
                let newly = fr.state.apply(network, &ev);
                if !newly.is_empty() {
                    // Refund every in-flight unit whose path crosses a
                    // channel that just went down — its HTLC can no longer
                    // complete, so the locked funds bounce back hop by hop.
                    for unit in units.iter_mut() {
                        if unit.resolved {
                            continue;
                        }
                        let blamed = unit
                            .path
                            .hops()
                            .iter()
                            .map(|&(c, _)| c)
                            .find(|c| newly.contains(c));
                        let Some(blamed) = blamed else { continue };
                        let res = refund_unit(
                            network,
                            &mut ledger,
                            &unit.path,
                            unit.amount,
                            &unit.hop_amounts,
                        );
                        unit.resolved = true;
                        match res {
                            Ok(()) => {
                                let amount = unit.amount;
                                let pidx = unit.payment;
                                payments[pidx].inflight -= amount;
                                fr.state.stats.units_refunded_by_outage += 1;
                                let pid = payments[pidx].id.0;
                                tel.counter_add("sim.units.refunded", 1);
                                tel.emit(|| TraceEvent::UnitRefunded {
                                    t: now,
                                    payment: pid,
                                    amount: amount.as_tokens(),
                                });
                                handle_unit_fault(
                                    pidx,
                                    blamed,
                                    now,
                                    &mut payments,
                                    fr,
                                    &mut timers,
                                    tel,
                                    packet_switched,
                                );
                            }
                            Err(e) => record_release(&mut release_violations, now, "fault", &e),
                        }
                    }
                    if let Some(a) = audit.as_mut() {
                        a.check(&ledger, now, "fault");
                    }
                }
            }
            Event::Tick => {
                let _span = tel.span_enter(Phase::QueueDrain);
                tel.span_sim(Phase::QueueDrain, now);
                tel.counter_add("sim.scheduler.polls", 1);
                // Expire deadlines and fire retry timers, in (time, payment)
                // order off the shared min-heap — O(log n) per expiry instead
                // of a scan over every pending payment per tick.
                while let Some(Reverse(t)) = timers.peek() {
                    if t.time > now {
                        break;
                    }
                    let Some(Reverse(timer)) = timers.pop() else {
                        break;
                    };
                    let i = timer.payment;
                    match timer.kind {
                        TimerKind::Deadline => {
                            let p = &mut payments[i];
                            if p.status != PaymentStatus::Pending {
                                continue;
                            }
                            p.status = PaymentStatus::Abandoned;
                            let pid = p.id.0;
                            let delivered = p.delivered.as_tokens();
                            tel.counter_add("sim.payments.abandoned", 1);
                            tel.emit(|| TraceEvent::PaymentAbandoned {
                                t: now,
                                payment: pid,
                                delivered,
                            });
                            // AMP: the sender withholds the key; everything
                            // the receiver was holding is refunded to the
                            // senders.
                            if let Some(held) = amp_held.get_mut(i).map(std::mem::take) {
                                for ui in held {
                                    if units[ui].resolved {
                                        continue;
                                    }
                                    let res = {
                                        let u = &units[ui];
                                        refund_unit(
                                            network,
                                            &mut ledger,
                                            &u.path,
                                            u.amount,
                                            &u.hop_amounts,
                                        )
                                    };
                                    units[ui].resolved = true;
                                    match res {
                                        Ok(()) => {
                                            let held_amount = units[ui].amount;
                                            payments[i].inflight -= held_amount;
                                            tel.counter_add("sim.units.refunded", 1);
                                            tel.emit(|| TraceEvent::UnitRefunded {
                                                t: now,
                                                payment: pid,
                                                amount: held_amount.as_tokens(),
                                            });
                                        }
                                        Err(e) => record_release(
                                            &mut release_violations,
                                            now,
                                            "deadline-refund",
                                            &e,
                                        ),
                                    }
                                }
                                if let Some(a) = audit.as_mut() {
                                    a.check(&ledger, now, "deadline-refund");
                                }
                            }
                        }
                        TimerKind::Retry => {
                            // Backoff expired: give the payment first shot
                            // at liquidity before the policy-ordered pump.
                            if payments[i].status == PaymentStatus::Pending {
                                pump_payment(
                                    network,
                                    &mut ledger,
                                    scheme,
                                    i,
                                    &mut payments[i],
                                    config,
                                    now,
                                    &mut queue,
                                    &mut units,
                                    &mut units_sent,
                                    congestion.as_mut(),
                                    faults.as_mut(),
                                );
                            }
                        }
                    }
                }
                pending.retain(|&i| payments[i].status == PaymentStatus::Pending);

                if packet_switched {
                    config.policy.order(&payments, &mut pending);
                    let order = pending.clone();
                    for i in order {
                        if payments[i].status != PaymentStatus::Pending {
                            continue;
                        }
                        pump_payment(
                            network,
                            &mut ledger,
                            scheme,
                            i,
                            &mut payments[i],
                            config,
                            now,
                            &mut queue,
                            &mut units,
                            &mut units_sent,
                            congestion.as_mut(),
                            faults.as_mut(),
                        );
                    }
                    pending.retain(|&i| payments[i].status == PaymentStatus::Pending);
                }

                if config.record_series {
                    let (ratio, volume) = running_metrics(&payments);
                    series.push((now, ratio, volume));
                }
                if now + 1e-12 >= next_sample {
                    sample_network(
                        network,
                        &ledger,
                        &payments,
                        now,
                        tel,
                        &mut network_series,
                        &|_| 0,
                    );
                    let interval = tel.sample_interval().unwrap_or(f64::INFINITY);
                    while next_sample <= now + 1e-12 {
                        next_sample += interval;
                    }
                }
                let next = now + config.poll_interval;
                if next <= config.end_time {
                    queue.push(next, Event::Tick);
                }
                // Checkpoint between events: the tick (including the next-
                // tick push above) has fully completed, so the captured
                // state is exactly what an uninterrupted run holds here.
                ticks += 1;
                if let Some(ck) = ckpt {
                    if ticks.is_multiple_of(ck.every) {
                        let core = encode_seq_core(
                            ticks,
                            network,
                            &ledger,
                            &queue,
                            &payments,
                            &pending,
                            &faults,
                            &rebalance_pending,
                            &rebalance_stats,
                            &congestion,
                            &units,
                            &timers,
                            &amp_held,
                            routing_fees_paid,
                            &release_violations,
                            units_sent,
                            &series,
                            &audit,
                            &network_series,
                            next_sample,
                        );
                        let scheme_bytes = scheme.checkpoint_state().unwrap_or_default();
                        let tel_bytes = snapshot::encode_telemetry(&tel.export_state());
                        snapshot::write_snapshot(
                            &ck.dir,
                            snapshot::ENGINE_SEQ,
                            fp,
                            ticks,
                            &[
                                (snapshot::SEC_CORE, core),
                                (snapshot::SEC_SCHEME, scheme_bytes),
                                (snapshot::SEC_TELEMETRY, tel_bytes),
                            ],
                        )?;
                    }
                }
            }
            Event::RebalanceCheck => {
                let Some(policy) = config.rebalance.as_ref() else {
                    // RebalanceCheck events are only seeded under a policy.
                    continue;
                };
                for ch in network.channels() {
                    if rebalance_pending[ch.id.index()] {
                        continue;
                    }
                    let (a, b) = ledger.balances(ch.id);
                    if policy.correction(a, b).is_some() {
                        rebalance_pending[ch.id.index()] = true;
                        queue.push(
                            now + policy.confirmation_delay,
                            Event::RebalanceApply { channel: ch.id },
                        );
                    }
                }
                let next = now + policy.check_interval;
                if next <= config.end_time {
                    queue.push(next, Event::RebalanceCheck);
                }
            }
            Event::RebalanceApply { channel } => {
                let Some(policy) = config.rebalance.as_ref() else {
                    // RebalanceApply events descend from RebalanceCheck,
                    // which requires a policy.
                    continue;
                };
                rebalance_pending[channel.index()] = false;
                // Re-evaluate at confirmation time: traffic in the interim
                // may have (partially) healed the skew.
                let (a, b) = ledger.balances(channel);
                if let Some(amount) = policy.correction(a, b) {
                    let ch = network.channel(channel);
                    let (rich, poor) = if a >= b { (ch.a, ch.b) } else { (ch.b, ch.a) };
                    let taken = ledger.withdraw(network, channel, rich, amount);
                    let redeposit = taken.saturating_sub(policy.fee).max(Amount::ZERO);
                    if let Err(e) = ledger.deposit(network, channel, poor, redeposit) {
                        // Redepositing funds just withdrawn from this same
                        // channel cannot overflow its capacity; count and
                        // skip rather than corrupt the ledger if it does.
                        debug_assert!(false, "rebalance redeposit refused: {e}");
                        tel.counter_add("sim.rebalance.deposit_failed", 1);
                        continue;
                    }
                    let fee_paid = taken.saturating_sub(redeposit);
                    rebalance_stats.transactions += 1;
                    rebalance_stats.moved_volume += taken.as_tokens();
                    rebalance_stats.fees_paid += fee_paid.as_tokens();
                    tel.counter_add("sim.rebalance.applied", 1);
                    tel.emit(|| TraceEvent::RebalanceApplied {
                        t: now,
                        channel: channel.index() as u32,
                        moved: taken.as_tokens(),
                        fee: fee_paid.as_tokens(),
                    });
                    if let Some(a) = audit.as_mut() {
                        a.on_withdraw(taken);
                        a.on_deposit(redeposit);
                        a.check(&ledger, now, "rebalance");
                    }
                }
            }
        }
    }

    debug_assert!(ledger.conserves_all(), "ledger must conserve funds");
    if let Some(a) = audit.as_mut() {
        a.check(&ledger, config.end_time, "final");
    }
    for (name, value) in scheme.telemetry_stats() {
        tel.counter_add(name, value);
    }
    Ok(build_report(
        scheme,
        config,
        &payments,
        &ledger,
        units_sent,
        series,
        rebalance_stats,
        routing_fees_paid,
        audit,
        network_series,
        faults.map(|fr| fr.state.stats),
        release_violations,
    ))
}

/// Sender-side reaction to one failed unit: without a retry policy the
/// payment is abandoned on its first fault failure; with one, the blamed
/// channel is blacklisted, the payment backs off exponentially, and a retry
/// timer is scheduled — until the per-payment attempt budget runs out.
#[allow(clippy::too_many_arguments)]
fn handle_unit_fault(
    pidx: usize,
    blamed: ChannelId,
    now: f64,
    payments: &mut [PaymentState],
    fr: &mut FaultRuntime,
    timers: &mut BinaryHeap<Reverse<Timer>>,
    tel: &Telemetry,
    packet_switched: bool,
) {
    let p = &mut payments[pidx];
    if p.status != PaymentStatus::Pending {
        return;
    }
    let abandon = |p: &mut PaymentState, fr: &mut FaultRuntime| {
        p.status = PaymentStatus::Abandoned;
        fr.state.stats.payments_failed += 1;
        let pid = p.id.0;
        let delivered = p.delivered.as_tokens();
        tel.counter_add("sim.payments.abandoned", 1);
        tel.emit(|| TraceEvent::PaymentAbandoned {
            t: now,
            payment: pid,
            delivered,
        });
    };
    // Atomic senders have no unit-level retry machinery: the payment's
    // all-or-nothing guarantee is already broken, so it fails outright.
    if !packet_switched {
        abandon(p, fr);
        return;
    }
    let Some(policy) = fr.retry.clone() else {
        // Retries disabled: first fault failure is fatal.
        abandon(p, fr);
        return;
    };
    let until = now + policy.blacklist_duration;
    fr.blacklist.block(blamed, until);
    fr.state.stats.blacklistings += 1;
    tel.emit(|| TraceEvent::ChannelBlacklisted {
        t: now,
        channel: blamed.index() as u32,
        until,
    });
    fr.fail_count[pidx] += 1;
    let fails = fr.fail_count[pidx];
    if fails > policy.max_attempts {
        abandon(p, fr);
        return;
    }
    let backoff = policy.backoff_base * policy.backoff_mult.powi(fails as i32 - 1);
    fr.not_before[pidx] = fr.not_before[pidx].max(now + backoff);
    timers.push(Reverse(Timer {
        time: now + backoff,
        payment: pidx,
        kind: TimerKind::Retry,
    }));
    fr.state.stats.retries += 1;
    let pid = p.id.0;
    tel.counter_add("sim.payments.retries", 1);
    tel.emit(|| TraceEvent::PaymentRetry {
        t: now,
        payment: pid,
        attempt: fails,
        backoff,
    });
}

/// Emits one `ChannelSample` per channel plus one aggregate
/// [`NetworkSample`], piggybacked on an existing scheduler tick — sampling
/// never queues events of its own, so the `(time, sequence)` order of the
/// simulation is identical with telemetry on or off.
pub(crate) fn sample_network(
    network: &Network,
    ledger: &Ledger,
    payments: &[PaymentState],
    now: f64,
    telemetry: &Telemetry,
    series: &mut Vec<NetworkSample>,
    queue_depth: &dyn Fn(spider_core::ChannelId) -> u32,
) {
    let mut max_depth: u32 = 0;
    for ch in network.channels() {
        let (a, b) = ledger.balances(ch.id);
        let total = (a + b).as_tokens();
        let imbalance = if total > 0.0 {
            (a.as_tokens() - b.as_tokens()).abs() / total
        } else {
            0.0
        };
        let depth = queue_depth(ch.id);
        max_depth = max_depth.max(depth);
        let inflight = ledger.inflight(ch.id).as_tokens();
        telemetry.emit(|| TraceEvent::ChannelSample {
            t: now,
            channel: ch.id.index() as u32,
            imbalance,
            inflight,
            queue_depth: depth,
        });
    }
    let pending = payments
        .iter()
        .filter(|p| p.status == PaymentStatus::Pending)
        .count() as u32;
    series.push(NetworkSample {
        t: now,
        mean_imbalance: ledger.mean_imbalance(),
        total_inflight: ledger.total_inflight().as_tokens(),
        pending,
        max_queue_depth: max_depth,
    });
}

/// Sends as many transaction units of one pending payment as the scheme and
/// balances allow right now. Under fault injection the scheme routes
/// against a masked view (downed + blacklisted channels read as empty), a
/// retry backoff gates the whole pump, and each sent unit draws its fate
/// (deliver / drop / grief) from the seeded fault stream.
#[allow(clippy::too_many_arguments)]
fn pump_payment(
    network: &Network,
    ledger: &mut Ledger,
    scheme: &mut dyn RoutingScheme,
    idx: usize,
    p: &mut PaymentState,
    config: &SimConfig,
    now: f64,
    queue: &mut EventQueue<Event>,
    units: &mut Vec<UnitRecord>,
    units_sent: &mut u64,
    mut congestion: Option<&mut CongestionControl>,
    mut faults: Option<&mut FaultRuntime>,
) {
    if let Some(fr) = faults.as_deref() {
        if now < fr.not_before[idx] {
            // Backing off after a fault failure.
            return;
        }
    }
    let _span = config.telemetry.span_enter(Phase::UnitDispatch);
    config.telemetry.span_sim(Phase::UnitDispatch, now);
    loop {
        let remaining = p.remaining();
        if !remaining.is_positive() {
            break;
        }
        if let Some(cc) = congestion.as_deref_mut() {
            if !cc.may_send(p.src, p.dst) {
                config.telemetry.counter_add("sim.congestion.blocked", 1);
                break;
            }
        }
        let unit = remaining.min(config.mtu);
        let view = LedgerView { network, ledger };
        let decision = match faults.as_deref() {
            Some(fr) => {
                let masked = FaultView {
                    inner: &view,
                    faults: &fr.state,
                    blacklist: &fr.blacklist,
                    now,
                };
                scheme.route_unit(network, &masked, p.src, p.dst, unit)
            }
            None => scheme.route_unit(network, &view, p.src, p.dst, unit),
        };
        match decision {
            UnitDecision::Route(path) => {
                // Defensive re-check: a scheme with cached paths may ignore
                // the masked view; never lock across a dead or blacklisted
                // channel.
                if let Some(fr) = faults.as_deref() {
                    if fr.state.path_blocked(&path) || fr.blacklist.path_blocked(&path, now) {
                        break;
                    }
                }
                // With fees, upstream hops carry the delivered amount plus
                // downstream fees; without, every hop carries the unit.
                let hop_amounts: Option<Vec<Amount>> = match &config.fees {
                    Some(f) if !f.is_free() => Some(f.path_amounts(&path, unit)),
                    _ => None,
                };
                let locked = match &hop_amounts {
                    Some(amounts) => ledger.lock_path_amounts(network, &path, amounts),
                    None => ledger.lock_path(network, &path, unit),
                };
                if locked.is_err() {
                    // Scheme raced its own view, or fees pushed a hop over
                    // its balance; treat as temporarily unavailable.
                    break;
                }
                if let Some(cc) = congestion.as_deref_mut() {
                    cc.on_send(p.src, p.dst);
                }
                p.inflight += unit;
                *units_sent += 1;
                config.telemetry.span_items(Phase::UnitDispatch, 1);
                config.telemetry.counter_add("sim.units.sent", 1);
                config.telemetry.emit(|| TraceEvent::UnitSent {
                    t: now,
                    payment: p.id.0,
                    amount: unit.as_tokens(),
                    hops: path.len() as u32,
                });
                let fate = match faults.as_deref_mut() {
                    Some(fr) => fr.state.unit_fate(&path),
                    None => UnitFate::Deliver { jitter: 0.0 },
                };
                let unit_idx = units.len();
                let (fault, fire_at) = match fate {
                    UnitFate::Deliver { jitter } => (None, now + config.delta + jitter),
                    UnitFate::Drop { at_frac, hop_index } => {
                        let blamed = path.hops()[hop_index.min(path.hops().len() - 1)].0;
                        (
                            Some(UnitFault::Dropped(blamed)),
                            now + at_frac * config.delta,
                        )
                    }
                    UnitFate::Grief { hold } => match path.hops().last() {
                        Some(&(blamed, _)) => {
                            (Some(UnitFault::Griefed(blamed)), now + config.delta + hold)
                        }
                        // An empty path has no hop to grief; fall back to a
                        // plain delivery.
                        None => (None, now + config.delta),
                    },
                };
                units.push(UnitRecord {
                    payment: idx,
                    path,
                    amount: unit,
                    hop_amounts,
                    fault,
                    resolved: false,
                });
                if fault.is_some() {
                    queue.push(fire_at, Event::FaultExpire { unit: unit_idx });
                } else {
                    queue.push(fire_at, Event::Settle { unit: unit_idx });
                }
            }
            UnitDecision::Unavailable => {
                if let Some(cc) = congestion.as_deref_mut() {
                    cc.on_unavailable(p.src, p.dst);
                }
                break;
            }
            UnitDecision::Never => {
                // Under fault injection "no path" may just mean every route
                // is currently masked out; keep the payment alive so it can
                // retry once channels recover or the blacklist expires.
                if faults.is_some() {
                    break;
                }
                p.status = PaymentStatus::Abandoned;
                config.telemetry.counter_add("sim.payments.abandoned", 1);
                config.telemetry.emit(|| TraceEvent::PaymentAbandoned {
                    t: now,
                    payment: p.id.0,
                    delivered: p.delivered.as_tokens(),
                });
                break;
            }
        }
    }
}

/// Attempts an atomic payment at arrival; fails it permanently if the
/// scheme cannot deliver the whole value now. Under fault injection the
/// scheme routes against the masked view, so it never plans across downed
/// channels.
#[allow(clippy::too_many_arguments)]
fn attempt_atomic(
    network: &Network,
    ledger: &mut Ledger,
    scheme: &mut dyn RoutingScheme,
    p: &mut PaymentState,
    idx: usize,
    config: &SimConfig,
    now: f64,
    queue: &mut EventQueue<Event>,
    units: &mut Vec<UnitRecord>,
    units_sent: &mut u64,
    faults: Option<&mut FaultRuntime>,
    release_violations: &mut Vec<AuditViolation>,
) {
    let _span = config.telemetry.span_enter(Phase::UnitDispatch);
    config.telemetry.span_sim(Phase::UnitDispatch, now);
    let view = LedgerView { network, ledger };
    let parts = match faults.as_deref() {
        Some(fr) => {
            let masked = FaultView {
                inner: &view,
                faults: &fr.state,
                blacklist: &fr.blacklist,
                now,
            };
            scheme.route_payment(network, &masked, p.src, p.dst, p.amount)
        }
        None => scheme.route_payment(network, &view, p.src, p.dst, p.amount),
    };
    let Some(parts) = parts else {
        p.status = PaymentStatus::Abandoned;
        config.telemetry.counter_add("sim.payments.abandoned", 1);
        config.telemetry.emit(|| TraceEvent::PaymentAbandoned {
            t: now,
            payment: p.id.0,
            delivered: p.delivered.as_tokens(),
        });
        return;
    };
    // Lock all parts; roll back everything if any lock fails (the schemes
    // pre-check with an overlay, so this is a defensive path).
    let mut locked: Vec<(Path, Amount)> = Vec::with_capacity(parts.len());
    for (path, amount) in parts {
        if ledger.lock_path(network, &path, amount).is_err() {
            for (done_path, done_amount) in locked.drain(..) {
                if let Err(e) = ledger.refund_path(network, &done_path, done_amount) {
                    record_release(release_violations, now, "atomic-rollback", &e);
                }
            }
            p.status = PaymentStatus::Abandoned;
            config.telemetry.counter_add("sim.payments.abandoned", 1);
            config.telemetry.emit(|| TraceEvent::PaymentAbandoned {
                t: now,
                payment: p.id.0,
                delivered: p.delivered.as_tokens(),
            });
            return;
        }
        locked.push((path, amount));
    }
    for (path, amount) in locked {
        p.inflight += amount;
        *units_sent += 1;
        config.telemetry.counter_add("sim.units.sent", 1);
        config.telemetry.emit(|| TraceEvent::UnitSent {
            t: now,
            payment: p.id.0,
            amount: amount.as_tokens(),
            hops: path.len() as u32,
        });
        let unit_idx = units.len();
        units.push(UnitRecord {
            payment: idx,
            path: std::sync::Arc::new(path),
            amount,
            hop_amounts: None,
            fault: None,
            resolved: false,
        });
        queue.push(now + config.delta, Event::Settle { unit: unit_idx });
    }
}

/// Settles one unit (fee-aware); returns the fee the sender paid, or the
/// ledger's refusal if the settle would over-release.
fn settle_unit(
    network: &Network,
    ledger: &mut Ledger,
    path: &Path,
    amount: Amount,
    hop_amounts: &Option<Vec<Amount>>,
) -> Result<Amount, CoreError> {
    match hop_amounts {
        Some(amounts) => {
            ledger.settle_path_amounts(network, path, amounts)?;
            Ok(amounts[0] - amount)
        }
        None => {
            ledger.settle_path(network, path, amount)?;
            Ok(Amount::ZERO)
        }
    }
}

/// Refunds one unit (fee-aware); propagates the ledger's refusal if the
/// refund would over-release.
fn refund_unit(
    network: &Network,
    ledger: &mut Ledger,
    path: &Path,
    amount: Amount,
    hop_amounts: &Option<Vec<Amount>>,
) -> Result<(), CoreError> {
    match hop_amounts {
        Some(amounts) => ledger.refund_path_amounts(network, path, amounts),
        None => ledger.refund_path(network, path, amount),
    }
}

fn running_metrics(payments: &[PaymentState]) -> (f64, f64) {
    let attempted = payments.len();
    if attempted == 0 {
        return (0.0, 0.0);
    }
    let completed = payments
        .iter()
        .filter(|p| p.status == PaymentStatus::Completed)
        .count();
    let attempted_volume: f64 = payments.iter().map(|p| p.amount.as_tokens()).sum();
    let delivered_volume: f64 = payments.iter().map(|p| p.delivered.as_tokens()).sum();
    (
        completed as f64 / attempted as f64,
        if attempted_volume > 0.0 {
            delivered_volume / attempted_volume
        } else {
            0.0
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn build_report(
    scheme: &dyn RoutingScheme,
    config: &SimConfig,
    payments: &[PaymentState],
    ledger: &Ledger,
    units_sent: u64,
    series: Vec<(f64, f64, f64)>,
    rebalance: RebalanceStats,
    routing_fees_paid: Amount,
    audit: Option<LedgerAudit>,
    network_series: Vec<NetworkSample>,
    fault_stats: Option<FaultStats>,
    release_violations: Vec<AuditViolation>,
) -> SimReport {
    let completed: Vec<&PaymentState> = payments
        .iter()
        .filter(|p| p.status == PaymentStatus::Completed)
        .collect();
    let mean_completion_delay = if completed.is_empty() {
        0.0
    } else {
        completed
            .iter()
            .filter_map(|p| p.completed_at.map(|t| t - p.arrival))
            .sum::<f64>()
            / completed.len() as f64
    };
    SimReport {
        scheme: scheme.name().to_string(),
        policy: if scheme.kind() == SchemeKind::PacketSwitched {
            config.policy.name().to_string()
        } else {
            "atomic".to_string()
        },
        attempted: payments.len(),
        completed: completed.len(),
        abandoned: payments
            .iter()
            .filter(|p| p.status == PaymentStatus::Abandoned)
            .count(),
        pending_at_end: payments
            .iter()
            .filter(|p| p.status == PaymentStatus::Pending)
            .count(),
        attempted_volume: payments.iter().map(|p| p.amount.as_tokens()).sum(),
        delivered_volume: payments.iter().map(|p| p.delivered.as_tokens()).sum(),
        completed_volume: completed.iter().map(|p| p.amount.as_tokens()).sum(),
        units_sent,
        mean_completion_delay,
        final_mean_imbalance: ledger.mean_imbalance(),
        rebalance,
        routing_fees_paid: routing_fees_paid.as_tokens(),
        series,
        audit_checks: audit.as_ref().map_or(0, LedgerAudit::checks),
        audit_violations: {
            let mut v = audit.map_or_else(Vec::new, LedgerAudit::into_violations);
            v.extend(release_violations);
            v
        },
        completion_delay_percentiles: config.telemetry.delay_percentiles("sim.completion_delay"),
        telemetry: config.telemetry.summarize(network_series),
        faults: fault_stats,
        shards: None,
    }
}

// ---------------------------------------------------------------------------
// Checkpoint/resume: fingerprinting and `SEC_CORE` state encoding for this
// engine. The decoder mirrors the encoder field for field; any drift is a
// format change and must bump `snapshot::FORMAT_VERSION`.

/// CRC-32 over the simulation inputs and every config field that shapes the
/// run. A resume whose recomputed fingerprint differs from the snapshot's
/// is rejected before any state is applied.
fn fingerprint(
    network: &Network,
    transactions: &[Transaction],
    config: &SimConfig,
    scheme_name: &str,
) -> u32 {
    let mut e = Enc::new();
    snapshot::enc_inputs(&mut e, network, transactions);
    e.str(scheme_name);
    e.f64(config.end_time);
    e.f64(config.delta);
    e.i64(config.mtu.micros());
    e.f64(config.poll_interval);
    e.f64(config.deadline);
    e.str(config.policy.name());
    e.bool(config.record_series);
    e.bool(config.amp);
    e.bool(config.audit);
    match &config.rebalance {
        Some(p) => {
            e.u8(1);
            e.f64(p.check_interval);
            e.f64(p.imbalance_threshold);
            e.f64(p.correction_fraction);
            e.i64(p.fee.micros());
            e.f64(p.confirmation_delay);
        }
        None => e.u8(0),
    }
    match &config.congestion {
        Some(c) => {
            e.u8(1);
            e.f64(c.initial_window);
            e.f64(c.additive_increase);
            e.f64(c.multiplicative_decrease);
            e.f64(c.min_window);
            e.f64(c.max_window);
        }
        None => e.u8(0),
    }
    match &config.fees {
        Some(f) => {
            e.u8(1);
            e.seq(&f.per_channel(), |e, (base, ppm)| {
                e.i64(base.micros());
                e.u32(*ppm);
            });
        }
        None => e.u8(0),
    }
    match &config.faults {
        Some(plan) => {
            e.u8(1);
            snapshot::enc_json(&mut e, &plan.config);
            e.seq(&plan.events, |e, (t, ev)| {
                e.f64(*t);
                enc_fault_event(e, ev);
            });
        }
        None => e.u8(0),
    }
    e.bool(config.telemetry.is_enabled());
    e.f64(config.telemetry.sample_interval().unwrap_or(f64::NAN));
    crc32(&e.into_bytes())
}

pub(crate) fn enc_fault_event(e: &mut Enc, ev: &FaultEvent) {
    match ev {
        FaultEvent::ChannelDown(c) => {
            e.u8(0);
            e.u32(c.0);
        }
        FaultEvent::ChannelUp(c) => {
            e.u8(1);
            e.u32(c.0);
        }
        FaultEvent::NodeDown(n) => {
            e.u8(2);
            e.u32(n.0);
        }
        FaultEvent::NodeUp(n) => {
            e.u8(3);
            e.u32(n.0);
        }
    }
}

pub(crate) fn dec_fault_event(d: &mut Dec) -> Result<FaultEvent, SnapshotError> {
    let tag = d.u8()?;
    let id = d.u32()?;
    match tag {
        0 => Ok(FaultEvent::ChannelDown(ChannelId(id))),
        1 => Ok(FaultEvent::ChannelUp(ChannelId(id))),
        2 => Ok(FaultEvent::NodeDown(NodeId(id))),
        3 => Ok(FaultEvent::NodeUp(NodeId(id))),
        other => Err(SnapshotError::Corrupt {
            what: format!("fault event tag {other}"),
        }),
    }
}

fn enc_event(e: &mut Enc, event: &Event) {
    match event {
        Event::Arrival(i) => {
            e.u8(0);
            e.usize(*i);
        }
        Event::Settle { unit } => {
            e.u8(1);
            e.usize(*unit);
        }
        Event::FaultExpire { unit } => {
            e.u8(2);
            e.usize(*unit);
        }
        Event::Fault(ev) => {
            e.u8(3);
            enc_fault_event(e, ev);
        }
        Event::Tick => e.u8(4),
        Event::RebalanceCheck => e.u8(5),
        Event::RebalanceApply { channel } => {
            e.u8(6);
            e.u32(channel.0);
        }
    }
}

fn dec_event(d: &mut Dec) -> Result<Event, SnapshotError> {
    match d.u8()? {
        0 => Ok(Event::Arrival(d.usize()?)),
        1 => Ok(Event::Settle { unit: d.usize()? }),
        2 => Ok(Event::FaultExpire { unit: d.usize()? }),
        3 => Ok(Event::Fault(dec_fault_event(d)?)),
        4 => Ok(Event::Tick),
        5 => Ok(Event::RebalanceCheck),
        6 => Ok(Event::RebalanceApply {
            channel: ChannelId(d.u32()?),
        }),
        other => Err(SnapshotError::Corrupt {
            what: format!("event tag {other}"),
        }),
    }
}

pub(crate) fn enc_path(e: &mut Enc, path: &Path) {
    e.seq(path.nodes(), |e, n| e.u32(n.0));
}

pub(crate) fn dec_path(
    d: &mut Dec,
    network: &Network,
) -> Result<std::sync::Arc<Path>, SnapshotError> {
    let nodes = d.seq(|d| Ok(NodeId(d.u32()?)))?;
    Path::new(network, nodes)
        .map(std::sync::Arc::new)
        .map_err(|e| SnapshotError::Corrupt {
            what: format!("unit path: {e}"),
        })
}

pub(crate) fn enc_payment(e: &mut Enc, p: &PaymentState) {
    e.u64(p.id.0);
    e.u32(p.src.0);
    e.u32(p.dst.0);
    e.i64(p.amount.micros());
    e.f64(p.arrival);
    e.f64(p.deadline);
    e.i64(p.delivered.micros());
    e.i64(p.inflight.micros());
    e.u8(match p.status {
        PaymentStatus::Pending => 0,
        PaymentStatus::Completed => 1,
        PaymentStatus::Abandoned => 2,
    });
    match p.completed_at {
        Some(t) => {
            e.u8(1);
            e.f64(t);
        }
        None => e.u8(0),
    }
}

pub(crate) fn dec_payment(d: &mut Dec) -> Result<PaymentState, SnapshotError> {
    Ok(PaymentState {
        id: spider_core::PaymentId(d.u64()?),
        src: NodeId(d.u32()?),
        dst: NodeId(d.u32()?),
        amount: Amount::from_micros(d.i64()?),
        arrival: d.f64()?,
        deadline: d.f64()?,
        delivered: Amount::from_micros(d.i64()?),
        inflight: Amount::from_micros(d.i64()?),
        status: match d.u8()? {
            0 => PaymentStatus::Pending,
            1 => PaymentStatus::Completed,
            2 => PaymentStatus::Abandoned,
            other => {
                return Err(SnapshotError::Corrupt {
                    what: format!("payment status byte {other}"),
                })
            }
        },
        completed_at: d.opt(|d| d.f64())?,
    })
}

/// Fault-runtime state in a snapshot: the fault subsystem's own snapshot,
/// plus the sender-recovery locals — per-channel blacklist expiry times,
/// per-payment failed-attempt counts, per-payment retry-backoff deadlines.
type FaultResume = (
    crate::faults::FaultStateSnapshot,
    Vec<f64>,
    Vec<u32>,
    Vec<f64>,
);

/// Sequential-engine state restored from a snapshot's `SEC_CORE` section —
/// every `run_inner` local that is not rebuilt from the config.
struct SeqResume {
    ticks: u64,
    channels: Vec<[i64; 4]>,
    queue_entries: Vec<(f64, u64, Event)>,
    queue_next_seq: u64,
    payments: Vec<PaymentState>,
    pending: Vec<usize>,
    faults: Option<FaultResume>,
    rebalance_pending: Vec<bool>,
    rebalance_stats: RebalanceStats,
    congestion: Option<Vec<(NodeId, NodeId, f64, u32)>>,
    units: Vec<UnitRecord>,
    timers: Vec<Timer>,
    amp_held: Vec<Vec<usize>>,
    routing_fees_paid: Amount,
    release_violations: Vec<AuditViolation>,
    units_sent: u64,
    series: Vec<(f64, f64, f64)>,
    audit: Option<crate::audit::AuditState>,
    network_series: Vec<NetworkSample>,
    next_sample: f64,
}

#[allow(clippy::too_many_arguments)]
fn encode_seq_core(
    ticks: u64,
    network: &Network,
    ledger: &Ledger,
    queue: &EventQueue<Event>,
    payments: &[PaymentState],
    pending: &[usize],
    faults: &Option<FaultRuntime>,
    rebalance_pending: &[bool],
    rebalance_stats: &RebalanceStats,
    congestion: &Option<CongestionControl>,
    units: &[UnitRecord],
    timers: &BinaryHeap<Reverse<Timer>>,
    amp_held: &[Vec<usize>],
    routing_fees_paid: Amount,
    release_violations: &[AuditViolation],
    units_sent: u64,
    series: &[(f64, f64, f64)],
    audit: &Option<LedgerAudit>,
    network_series: &[NetworkSample],
    next_sample: f64,
) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(ticks);
    e.usize(network.num_channels());
    for i in 0..network.num_channels() {
        for v in ledger.export_channel(ChannelId::from(i)) {
            e.i64(v);
        }
    }
    // Event-queue entries in exact pop order with their original sequence
    // numbers; re-pushing them restores identical drain order.
    let entries = queue.entries();
    e.usize(entries.len());
    for (t, seq, event) in &entries {
        e.f64(*t);
        e.u64(*seq);
        enc_event(&mut e, event);
    }
    e.u64(queue.next_seq());
    e.seq(payments, enc_payment);
    e.seq(pending, |e, &i| e.usize(i));
    match faults {
        Some(fr) => {
            e.u8(1);
            let snap = fr.state.export_state();
            e.bytes(&snap.down_causes);
            e.seq(&snap.node_down, |e, &b| e.bool(b));
            e.u64(snap.rng_state);
            snapshot::enc_json(&mut e, &snap.stats);
            e.seq(fr.blacklist.slots(), |e, &t| e.f64(t));
            e.seq(&fr.fail_count, |e, &c| e.u32(c));
            e.seq(&fr.not_before, |e, &t| e.f64(t));
        }
        None => e.u8(0),
    }
    e.seq(rebalance_pending, |e, &b| e.bool(b));
    e.usize(rebalance_stats.transactions);
    e.f64(rebalance_stats.moved_volume);
    e.f64(rebalance_stats.fees_paid);
    match congestion {
        Some(cc) => {
            e.u8(1);
            e.seq(&cc.export_state(), |e, (s, d, w, o)| {
                e.u32(s.0);
                e.u32(d.0);
                e.f64(*w);
                e.u32(*o);
            });
        }
        None => e.u8(0),
    }
    e.seq(units, |e, u| {
        e.usize(u.payment);
        enc_path(e, &u.path);
        e.i64(u.amount.micros());
        match &u.hop_amounts {
            Some(h) => {
                e.u8(1);
                e.seq(h, |e, a| e.i64(a.micros()));
            }
            None => e.u8(0),
        }
        match u.fault {
            Some(UnitFault::Dropped(c)) => {
                e.u8(1);
                e.u32(c.0);
            }
            Some(UnitFault::Griefed(c)) => {
                e.u8(2);
                e.u32(c.0);
            }
            None => e.u8(0),
        }
        e.bool(u.resolved);
    });
    // Timers in their deterministic `Ord` order — heap iteration order is
    // arbitrary, so sort the capture; re-pushing restores identical pops.
    let mut timer_list: Vec<(f64, usize, u8)> = timers
        .iter()
        .map(|Reverse(t)| {
            (
                t.time,
                t.payment,
                match t.kind {
                    TimerKind::Deadline => 0,
                    TimerKind::Retry => 1,
                },
            )
        })
        .collect();
    timer_list.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    e.seq(&timer_list, |e, (t, p, k)| {
        e.f64(*t);
        e.usize(*p);
        e.u8(*k);
    });
    e.usize(amp_held.len());
    for held in amp_held {
        e.seq(held, |e, &u| e.usize(u));
    }
    e.i64(routing_fees_paid.micros());
    snapshot::enc_json(&mut e, &release_violations.to_vec());
    e.u64(units_sent);
    e.seq(series, |e, (t, r, v)| {
        e.f64(*t);
        e.f64(*r);
        e.f64(*v);
    });
    match audit {
        Some(a) => {
            e.u8(1);
            snapshot::enc_json(&mut e, &a.export_state());
        }
        None => e.u8(0),
    }
    e.seq(network_series, |e, s| {
        e.f64(s.t);
        e.f64(s.mean_imbalance);
        e.f64(s.total_inflight);
        e.u32(s.pending);
        e.u32(s.max_queue_depth);
    });
    e.f64(next_sample);
    e.into_bytes()
}

fn decode_seq_core(bytes: &[u8], network: &Network) -> Result<SeqResume, SnapshotError> {
    let mut d = Dec::new(bytes);
    let ticks = d.u64()?;
    let num_channels = d.usize()?;
    if num_channels != network.num_channels() {
        return Err(SnapshotError::Corrupt {
            what: format!(
                "snapshot has {num_channels} channels, network has {}",
                network.num_channels()
            ),
        });
    }
    let mut channels = Vec::with_capacity(num_channels);
    for _ in 0..num_channels {
        channels.push([d.i64()?, d.i64()?, d.i64()?, d.i64()?]);
    }
    let n_entries = d.usize()?;
    let mut queue_entries = Vec::with_capacity(n_entries.min(d.remaining()));
    for _ in 0..n_entries {
        let t = d.f64()?;
        if !t.is_finite() {
            return Err(SnapshotError::Corrupt {
                what: "non-finite event time".to_string(),
            });
        }
        let seq = d.u64()?;
        queue_entries.push((t, seq, dec_event(&mut d)?));
    }
    let queue_next_seq = d.u64()?;
    let n_payments = d.usize()?;
    let mut payments = Vec::with_capacity(n_payments.min(d.remaining()));
    for _ in 0..n_payments {
        payments.push(dec_payment(&mut d)?);
    }
    let pending = d.seq(|d| d.usize())?;
    let faults = match d.u8()? {
        0 => None,
        1 => {
            let down_causes = d.bytes()?.to_vec();
            let node_down = d.seq(|d| d.bool())?;
            let rng_state = d.u64()?;
            let stats = snapshot::dec_json(&mut d)?;
            let slots = d.seq(|d| d.f64())?;
            let fail_count = d.seq(|d| d.u32())?;
            let not_before = d.seq(|d| d.f64())?;
            Some((
                crate::faults::FaultStateSnapshot {
                    down_causes,
                    node_down,
                    rng_state,
                    stats,
                },
                slots,
                fail_count,
                not_before,
            ))
        }
        other => {
            return Err(SnapshotError::Corrupt {
                what: format!("fault presence byte {other}"),
            })
        }
    };
    let rebalance_pending = d.seq(|d| d.bool())?;
    let rebalance_stats = RebalanceStats {
        transactions: d.usize()?,
        moved_volume: d.f64()?,
        fees_paid: d.f64()?,
    };
    let congestion = match d.u8()? {
        0 => None,
        1 => Some(d.seq(|d| Ok((NodeId(d.u32()?), NodeId(d.u32()?), d.f64()?, d.u32()?)))?),
        other => {
            return Err(SnapshotError::Corrupt {
                what: format!("congestion presence byte {other}"),
            })
        }
    };
    let n_units = d.usize()?;
    let mut units = Vec::with_capacity(n_units.min(d.remaining()));
    for _ in 0..n_units {
        let payment = d.usize()?;
        let path = dec_path(&mut d, network)?;
        let amount = Amount::from_micros(d.i64()?);
        let hop_amounts = d.opt(|d| d.seq(|d| Ok(Amount::from_micros(d.i64()?))))?;
        let fault = match d.u8()? {
            0 => None,
            1 => Some(UnitFault::Dropped(ChannelId(d.u32()?))),
            2 => Some(UnitFault::Griefed(ChannelId(d.u32()?))),
            other => {
                return Err(SnapshotError::Corrupt {
                    what: format!("unit fault byte {other}"),
                })
            }
        };
        let resolved = d.bool()?;
        if payment >= payments.len() {
            return Err(SnapshotError::Corrupt {
                what: format!("unit references payment {payment} of {}", payments.len()),
            });
        }
        units.push(UnitRecord {
            payment,
            path,
            amount,
            hop_amounts,
            fault,
            resolved,
        });
    }
    let timers = d.seq(|d| Ok((d.f64()?, d.usize()?, d.u8()?)))?;
    let timers: Vec<Timer> = timers
        .into_iter()
        .map(|(time, payment, kind)| {
            Ok(Timer {
                time,
                payment,
                kind: match kind {
                    0 => TimerKind::Deadline,
                    1 => TimerKind::Retry,
                    other => {
                        return Err(SnapshotError::Corrupt {
                            what: format!("timer kind byte {other}"),
                        })
                    }
                },
            })
        })
        .collect::<Result<_, SnapshotError>>()?;
    let n_held = d.usize()?;
    let mut amp_held = Vec::with_capacity(n_held.min(d.remaining()));
    for _ in 0..n_held {
        amp_held.push(d.seq(|d| d.usize())?);
    }
    let routing_fees_paid = Amount::from_micros(d.i64()?);
    let release_violations: Vec<AuditViolation> = snapshot::dec_json(&mut d)?;
    let units_sent = d.u64()?;
    let series = d.seq(|d| Ok((d.f64()?, d.f64()?, d.f64()?)))?;
    let audit = match d.u8()? {
        0 => None,
        1 => Some(snapshot::dec_json(&mut d)?),
        other => {
            return Err(SnapshotError::Corrupt {
                what: format!("audit presence byte {other}"),
            })
        }
    };
    let network_series = d.seq(|d| {
        Ok(NetworkSample {
            t: d.f64()?,
            mean_imbalance: d.f64()?,
            total_inflight: d.f64()?,
            pending: d.u32()?,
            max_queue_depth: d.u32()?,
        })
    })?;
    let next_sample = d.f64()?;
    d.expect_end()?;
    Ok(SeqResume {
        ticks,
        channels,
        queue_entries,
        queue_next_seq,
        payments,
        pending,
        faults,
        rebalance_pending,
        rebalance_stats,
        congestion,
        units,
        timers,
        amp_held,
        routing_fees_paid,
        release_violations,
        units_sent,
        series,
        audit,
        network_series,
        next_sample,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_core::{NodeId, PaymentId};
    use spider_routing::{MaxFlowScheme, ShortestPathScheme, WaterfillingScheme};

    fn line3(cap: i64) -> Network {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(cap))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(2), Amount::from_whole(cap))
            .unwrap();
        g
    }

    fn tx(id: u64, src: u32, dst: u32, amount: i64, arrival: f64) -> Transaction {
        Transaction {
            id: PaymentId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            amount: Amount::from_whole(amount),
            arrival,
        }
    }

    #[test]
    fn single_payment_completes_packet_switched() {
        let g = line3(100);
        let txs = vec![tx(0, 0, 2, 30, 0.1)];
        let mut scheme = ShortestPathScheme::new();
        let report = run(&g, &txs, &mut scheme, &SimConfig::new(10.0));
        assert_eq!(report.attempted, 1);
        assert_eq!(report.completed, 1);
        assert!((report.success_volume() - 1.0).abs() < 1e-9);
        // 30 tokens at MTU 10 = 3 units.
        assert_eq!(report.units_sent, 3);
        assert!(report.mean_completion_delay >= 0.5); // at least Δ
    }

    #[test]
    fn single_payment_completes_atomic() {
        let g = line3(100);
        let txs = vec![tx(0, 0, 2, 30, 0.1)];
        let mut scheme = MaxFlowScheme::new();
        let report = run(&g, &txs, &mut scheme, &SimConfig::new(10.0));
        assert_eq!(report.completed, 1);
        assert_eq!(report.policy, "atomic");
    }

    #[test]
    fn atomic_fails_what_packet_switching_delivers() {
        // Each channel side holds 50. Two opposing 80-token payments:
        // atomic max-flow needs 80 at once in one direction (> 50) and
        // fails both; packet switching interleaves 10-token units whose
        // settlements continually refresh the opposite direction.
        let g = line3(100);
        let txs = vec![tx(0, 0, 2, 80, 0.1), tx(1, 2, 0, 80, 0.1)];
        let atomic = run(&g, &txs, &mut MaxFlowScheme::new(), &SimConfig::new(30.0));
        assert_eq!(atomic.completed, 0);
        assert_eq!(atomic.abandoned, 2);
        let mut cfg = SimConfig::new(30.0);
        cfg.deadline = 20.0;
        let packet = run(&g, &txs, &mut ShortestPathScheme::new(), &cfg);
        assert_eq!(
            packet.completed, 2,
            "packet-switched should finish: {packet:?}"
        );
    }

    #[test]
    fn deadline_abandons_but_keeps_partial_volume() {
        // Only 20 spendable toward the destination; a 100-token payment
        // can deliver at most 20 + settled-refresh before the deadline.
        let mut g = Network::new(2);
        g.add_channel_with_balances(NodeId(0), NodeId(1), Amount::from_whole(20), Amount::ZERO)
            .unwrap();
        let txs = vec![tx(0, 0, 1, 100, 0.1)];
        let mut cfg = SimConfig::new(30.0);
        cfg.deadline = 2.0;
        let report = run(&g, &txs, &mut ShortestPathScheme::new(), &cfg);
        assert_eq!(report.completed, 0);
        assert_eq!(report.abandoned, 1);
        assert!(report.delivered_volume >= 20.0 - 1e-9, "{report:?}");
        assert!(report.success_volume() > 0.0);
        assert_eq!(report.strict_success_volume(), 0.0);
    }

    #[test]
    fn settlement_delay_gates_throughput() {
        // One channel, 10 spendable per side, MTU 10: each unit must wait
        // for the previous settle (Δ = 0.5 s) to free inflight... actually
        // lock is on sender side only, so the limit is sender balance 10 -> 1
        // unit per Δ once drained; 40 tokens need ~4 settles ≈ 2 s? No:
        // settles credit the RECEIVER, they never refresh the sender.
        // One-way flow drains after 1 unit of 10: delivered = 10 only.
        let mut g = Network::new(2);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(20))
            .unwrap();
        let txs = vec![tx(0, 0, 1, 40, 0.1)];
        let mut cfg = SimConfig::new(20.0);
        cfg.deadline = 10.0;
        let report = run(&g, &txs, &mut ShortestPathScheme::new(), &cfg);
        assert_eq!(report.delivered_volume, 10.0);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn opposing_flows_sustain_each_other() {
        // Bidirectional demand keeps the channel balanced: both complete.
        let mut g = Network::new(2);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(20))
            .unwrap();
        let txs = vec![tx(0, 0, 1, 40, 0.1), tx(1, 1, 0, 40, 0.1)];
        let mut cfg = SimConfig::new(60.0);
        cfg.deadline = 50.0;
        let report = run(&g, &txs, &mut ShortestPathScheme::new(), &cfg);
        assert_eq!(report.completed, 2, "{report:?}");
    }

    #[test]
    fn waterfilling_uses_multiple_paths() {
        // Diamond: two 2-hop paths between 0 and 3.
        let mut g = Network::new(4);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(20))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(3), Amount::from_whole(20))
            .unwrap();
        g.add_channel(NodeId(0), NodeId(2), Amount::from_whole(20))
            .unwrap();
        g.add_channel(NodeId(2), NodeId(3), Amount::from_whole(20))
            .unwrap();
        let txs = vec![tx(0, 0, 3, 20, 0.1)];
        let report = run(
            &g,
            &txs,
            &mut WaterfillingScheme::new(),
            &SimConfig::new(10.0),
        );
        assert_eq!(report.completed, 1);
        // 20 tokens across two paths of 10 spendable each: single-path
        // shortest-path in the same window would strand at 10.
        let sp = run(
            &g,
            &txs,
            &mut ShortestPathScheme::new(),
            &SimConfig::new(10.0),
        );
        assert!(sp.delivered_volume <= 10.0 + 1e-9);
    }

    #[test]
    fn arrivals_after_end_time_ignored() {
        let g = line3(100);
        let txs = vec![tx(0, 0, 2, 10, 0.1), tx(1, 0, 2, 10, 99.0)];
        let report = run(
            &g,
            &txs,
            &mut ShortestPathScheme::new(),
            &SimConfig::new(5.0),
        );
        assert_eq!(report.attempted, 1);
    }

    #[test]
    fn deterministic_runs() {
        let g = line3(50);
        let txs: Vec<Transaction> = (0..20)
            .map(|i| {
                tx(
                    i,
                    (i % 2) as u32 * 2,
                    2 - (i % 2) as u32 * 2,
                    15,
                    0.1 * i as f64,
                )
            })
            .collect();
        let a = run(
            &g,
            &txs,
            &mut WaterfillingScheme::new(),
            &SimConfig::new(10.0),
        );
        let b = run(
            &g,
            &txs,
            &mut WaterfillingScheme::new(),
            &SimConfig::new(10.0),
        );
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.units_sent, b.units_sent);
        assert_eq!(a.delivered_volume, b.delivered_volume);
    }

    #[test]
    fn series_recording() {
        let g = line3(100);
        let txs = vec![tx(0, 0, 2, 30, 0.1)];
        let mut cfg = SimConfig::new(5.0);
        cfg.record_series = true;
        let report = run(&g, &txs, &mut ShortestPathScheme::new(), &cfg);
        assert!(!report.series.is_empty());
        // Ratio eventually reaches 1.0 in the series.
        assert!(report.series.last().unwrap().1 > 0.99);
    }

    #[test]
    fn amp_payment_settles_atomically() {
        let g = line3(100);
        let txs = vec![tx(0, 0, 2, 30, 0.1)];
        let mut cfg = SimConfig::new(10.0);
        cfg.amp = true;
        let report = run(&g, &txs, &mut ShortestPathScheme::new(), &cfg);
        assert_eq!(report.completed, 1);
        assert!((report.delivered_volume - 30.0).abs() < 1e-9);
        // All three units settle at the same instant (when the last
        // arrives), so completion time equals the plain run's.
        let plain = run(
            &g,
            &txs,
            &mut ShortestPathScheme::new(),
            &SimConfig::new(10.0),
        );
        assert!((report.mean_completion_delay - plain.mean_completion_delay).abs() < 0.2);
    }

    #[test]
    fn amp_refunds_partial_payment_at_deadline() {
        // Only 20 of 100 tokens can ever move: in AMP mode the receiver
        // must not keep the partial amount — everything is refunded.
        let mut g = Network::new(2);
        g.add_channel_with_balances(NodeId(0), NodeId(1), Amount::from_whole(20), Amount::ZERO)
            .unwrap();
        let txs = vec![tx(0, 0, 1, 100, 0.1)];
        let mut cfg = SimConfig::new(30.0);
        cfg.deadline = 2.0;
        cfg.amp = true;
        let report = run(&g, &txs, &mut ShortestPathScheme::new(), &cfg);
        assert_eq!(report.completed, 0);
        assert_eq!(report.delivered_volume, 0.0, "AMP is all-or-nothing");
        // Contrast with the non-atomic default, which keeps the partial 20.
        let mut plain_cfg = SimConfig::new(30.0);
        plain_cfg.deadline = 2.0;
        let plain = run(&g, &txs, &mut ShortestPathScheme::new(), &plain_cfg);
        assert!(plain.delivered_volume >= 20.0 - 1e-9);
    }

    #[test]
    fn routing_fees_charged_per_relay() {
        use spider_routing::fees::FeeSchedule;
        let g = line3(100);
        // 10% proportional fee on every channel; the sender's first hop is
        // free per convention, so a 2-hop payment pays 10% once.
        let mut cfg = SimConfig::new(10.0);
        cfg.fees = Some(FeeSchedule::uniform(&g, Amount::ZERO, 100_000));
        let txs = vec![tx(0, 0, 2, 30, 0.1)];
        let report = run(&g, &txs, &mut ShortestPathScheme::new(), &cfg);
        assert_eq!(report.completed, 1);
        assert!(
            (report.delivered_volume - 30.0).abs() < 1e-9,
            "receiver gets face value"
        );
        assert!(
            (report.routing_fees_paid - 3.0).abs() < 1e-9,
            "10% of 30 = 3 in fees, got {}",
            report.routing_fees_paid
        );
    }

    #[test]
    fn relay_earns_its_fee() {
        use spider_routing::fees::FeeSchedule;
        let g = line3(100);
        let mut cfg = SimConfig::new(10.0);
        cfg.fees = Some(FeeSchedule::uniform(&g, Amount::from_whole(1), 0));
        let txs = vec![tx(0, 0, 2, 10, 0.1)];
        // One unit of 10 (default MTU): sender locks 11 on hop 0, the relay
        // locks 10 on hop 1. After settle the relay is up exactly the fee.
        let report = run(&g, &txs, &mut ShortestPathScheme::new(), &cfg);
        assert_eq!(report.completed, 1);
        assert!((report.routing_fees_paid - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fees_zero_schedule_equals_no_schedule() {
        use spider_routing::fees::FeeSchedule;
        let g = line3(100);
        let txs = vec![tx(0, 0, 2, 30, 0.1)];
        let plain = run(
            &g,
            &txs,
            &mut ShortestPathScheme::new(),
            &SimConfig::new(10.0),
        );
        let mut cfg = SimConfig::new(10.0);
        cfg.fees = Some(FeeSchedule::zero(&g));
        let free = run(&g, &txs, &mut ShortestPathScheme::new(), &cfg);
        assert_eq!(plain.completed, free.completed);
        assert_eq!(plain.units_sent, free.units_sent);
        assert_eq!(free.routing_fees_paid, 0.0);
    }

    #[test]
    fn rebalancing_rescues_one_way_traffic() {
        // One-way demand drains the channel; with on-chain rebalancing the
        // router keeps topping the sender side back up.
        let mut g = Network::new(2);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(40))
            .unwrap();
        let txs: Vec<Transaction> = (0..8)
            .map(|i| tx(i, 0, 1, 20, 1.0 + 4.0 * i as f64))
            .collect();
        let mut cfg = SimConfig::new(60.0);
        cfg.deadline = 30.0;
        let plain = run(&g, &txs, &mut ShortestPathScheme::new(), &cfg);

        cfg.rebalance = Some(crate::rebalancer::RebalancePolicy {
            check_interval: 1.0,
            imbalance_threshold: 0.4,
            correction_fraction: 1.0,
            fee: Amount::from_micros(100),
            confirmation_delay: 2.0,
        });
        let rebalanced = run(&g, &txs, &mut ShortestPathScheme::new(), &cfg);

        assert!(
            rebalanced.delivered_volume > 2.0 * plain.delivered_volume,
            "rebalancing should unlock one-way flow: {} vs {}",
            rebalanced.delivered_volume,
            plain.delivered_volume
        );
        assert!(rebalanced.rebalance.transactions > 0);
        assert!(rebalanced.rebalance.fees_paid > 0.0);
        assert_eq!(plain.rebalance.transactions, 0);
    }

    #[test]
    fn rebalancing_idle_on_balanced_traffic() {
        let g = line3(100);
        let txs = vec![tx(0, 0, 2, 20, 0.1), tx(1, 2, 0, 20, 0.1)];
        let mut cfg = SimConfig::new(20.0);
        cfg.rebalance = Some(crate::rebalancer::RebalancePolicy::aggressive());
        let report = run(&g, &txs, &mut ShortestPathScheme::new(), &cfg);
        assert_eq!(report.completed, 2);
        assert_eq!(
            report.rebalance.transactions, 0,
            "balanced flows must not trigger on-chain transactions"
        );
    }

    #[test]
    fn congestion_window_limits_inflight() {
        // Large payment, tiny initial window: only `initial_window` units in
        // flight per settle round-trip, so delivery is window-paced.
        let g = line3(1000);
        let txs = vec![tx(0, 0, 2, 200, 0.1)];
        let mut cfg = SimConfig::new(30.0);
        cfg.deadline = 25.0;
        let unlimited = run(&g, &txs, &mut ShortestPathScheme::new(), &cfg);

        cfg.congestion = Some(crate::congestion::CongestionConfig {
            initial_window: 1.0,
            additive_increase: 0.5,
            multiplicative_decrease: 0.5,
            min_window: 1.0,
            max_window: 4.0,
        });
        let windowed = run(&g, &txs, &mut ShortestPathScheme::new(), &cfg);

        assert_eq!(unlimited.completed, 1);
        assert_eq!(windowed.completed, 1, "windowing delays, not prevents");
        assert!(
            windowed.mean_completion_delay > 2.0 * unlimited.mean_completion_delay,
            "window pacing must slow the transfer: {} vs {}",
            windowed.mean_completion_delay,
            unlimited.mean_completion_delay
        );
    }

    #[test]
    fn congestion_backoff_under_contention() {
        // A drained channel generates Unavailable; the window must shrink
        // and the run must still terminate cleanly.
        let mut g = Network::new(2);
        g.add_channel_with_balances(NodeId(0), NodeId(1), Amount::from_whole(10), Amount::ZERO)
            .unwrap();
        let txs = vec![tx(0, 0, 1, 100, 0.1)];
        let mut cfg = SimConfig::new(10.0);
        cfg.deadline = 5.0;
        cfg.congestion = Some(crate::congestion::CongestionConfig::default());
        let report = run(&g, &txs, &mut ShortestPathScheme::new(), &cfg);
        assert_eq!(report.abandoned, 1);
        assert!(report.delivered_volume >= 10.0 - 1e-9);
    }

    #[test]
    fn audit_clean_across_features() {
        // Exercise settles, deadline refunds, AMP bounces, fees, and
        // rebalancing in one run each — the auditor must stay silent.
        let base_txs = vec![tx(0, 0, 2, 80, 0.1), tx(1, 2, 0, 80, 0.1)];
        let mut cfg = SimConfig::new(30.0);
        cfg.deadline = 20.0;
        cfg.audit = true;

        let g = line3(100);
        let plain = run(&g, &base_txs, &mut ShortestPathScheme::new(), &cfg);
        assert!(plain.audit_checks > 0);
        assert!(
            plain.audit_violations.is_empty(),
            "{:?}",
            plain.audit_violations
        );

        let mut amp_cfg = cfg.clone();
        amp_cfg.amp = true;
        amp_cfg.deadline = 2.0;
        let amp = run(&g, &base_txs, &mut ShortestPathScheme::new(), &amp_cfg);
        assert!(
            amp.audit_violations.is_empty(),
            "{:?}",
            amp.audit_violations
        );

        let mut fee_cfg = cfg.clone();
        fee_cfg.fees = Some(spider_routing::fees::FeeSchedule::uniform(
            &g,
            Amount::ZERO,
            100_000,
        ));
        let feed = run(&g, &base_txs, &mut ShortestPathScheme::new(), &fee_cfg);
        assert!(
            feed.audit_violations.is_empty(),
            "{:?}",
            feed.audit_violations
        );

        let mut reb_cfg = cfg.clone();
        reb_cfg.rebalance = Some(crate::rebalancer::RebalancePolicy {
            check_interval: 1.0,
            imbalance_threshold: 0.4,
            correction_fraction: 1.0,
            fee: Amount::from_micros(100),
            confirmation_delay: 2.0,
        });
        let mut g2 = Network::new(2);
        g2.add_channel(NodeId(0), NodeId(1), Amount::from_whole(40))
            .unwrap();
        let one_way: Vec<Transaction> = (0..8)
            .map(|i| tx(i, 0, 1, 20, 1.0 + 4.0 * i as f64))
            .collect();
        let reb = run(&g2, &one_way, &mut ShortestPathScheme::new(), &reb_cfg);
        assert!(reb.rebalance.transactions > 0, "rebalancing must fire");
        assert!(
            reb.audit_violations.is_empty(),
            "{:?}",
            reb.audit_violations
        );
    }

    #[test]
    fn audit_disabled_reports_zero_checks() {
        let g = line3(100);
        let txs = vec![tx(0, 0, 2, 30, 0.1)];
        let report = run(
            &g,
            &txs,
            &mut ShortestPathScheme::new(),
            &SimConfig::new(10.0),
        );
        assert_eq!(report.audit_checks, 0);
        assert!(report.audit_violations.is_empty());
    }

    #[test]
    fn unroutable_pair_abandons_immediately() {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(10))
            .unwrap();
        let txs = vec![tx(0, 0, 2, 5, 0.1)];
        let report = run(
            &g,
            &txs,
            &mut ShortestPathScheme::new(),
            &SimConfig::new(5.0),
        );
        assert_eq!(report.abandoned, 1);
        assert_eq!(report.units_sent, 0);
    }

    #[test]
    fn scripted_outage_refunds_inflight_then_retry_recovers() {
        use crate::faults::{FaultConfig, FaultEvent, FaultPlan};
        use spider_core::ChannelId;
        // Channel 1 (the 1–2 hop) dies at t=0.3 with three 10-token units
        // in flight (settle would land at 0.6), then recovers at 1.0. The
        // sender must refund, blacklist, back off, and resend.
        let g = line3(100);
        let txs = vec![tx(0, 0, 2, 30, 0.1)];
        let plan = FaultPlan::scripted(
            vec![
                (0.3, FaultEvent::ChannelDown(ChannelId(1))),
                (1.0, FaultEvent::ChannelUp(ChannelId(1))),
            ],
            FaultConfig::default(), // retry enabled by default
        );
        let mut cfg = SimConfig::new(15.0);
        cfg.deadline = 10.0;
        cfg.audit = true;
        cfg.faults = Some(plan);
        let report = run(&g, &txs, &mut ShortestPathScheme::new(), &cfg);
        let stats = report.faults.expect("fault stats present");
        assert_eq!(stats.outages, 1);
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.units_refunded_by_outage, 3, "{stats:?}");
        assert!(stats.retries >= 1, "{stats:?}");
        assert!(stats.blacklistings >= 1, "{stats:?}");
        assert_eq!(report.completed, 1, "retry must recover: {report:?}");
        assert!(report.audit_checks > 0);
        assert!(
            report.audit_violations.is_empty(),
            "{:?}",
            report.audit_violations
        );
    }

    #[test]
    fn node_crash_without_retry_abandons_on_first_fault() {
        use crate::faults::{FaultConfig, FaultEvent, FaultPlan};
        // Relay node 1 crashes mid-flight and the sender has no retry
        // policy: the payment is abandoned immediately (the recovery
        // baseline for the sweep in spider-experiments).
        let g = line3(100);
        let txs = vec![tx(0, 0, 2, 30, 0.1)];
        let plan = FaultPlan::scripted(
            vec![
                (0.3, FaultEvent::NodeDown(NodeId(1))),
                (1.0, FaultEvent::NodeUp(NodeId(1))),
            ],
            FaultConfig {
                retry: None,
                ..FaultConfig::default()
            },
        );
        let mut cfg = SimConfig::new(15.0);
        cfg.deadline = 10.0;
        cfg.audit = true;
        cfg.faults = Some(plan);
        let report = run(&g, &txs, &mut ShortestPathScheme::new(), &cfg);
        let stats = report.faults.expect("fault stats present");
        assert_eq!(stats.node_crashes, 1);
        assert!(stats.units_refunded_by_outage > 0, "{stats:?}");
        assert_eq!(stats.payments_failed, 1, "{stats:?}");
        assert_eq!(report.completed, 0, "{report:?}");
        assert_eq!(report.abandoned, 1, "{report:?}");
        assert_eq!(report.delivered_volume, 0.0);
        assert!(
            report.audit_violations.is_empty(),
            "{:?}",
            report.audit_violations
        );
    }

    #[test]
    fn random_fault_storm_is_audit_clean_and_deterministic() {
        use crate::faults::{FaultConfig, FaultPlan};
        // Every fault class at once: outages, churn, drops, jitter, and
        // griefing, with auditing after every balance-mutating event. Two
        // identical runs must serialize byte-identically.
        let g = line3(200);
        let txs: Vec<Transaction> = (0..24)
            .map(|i| {
                tx(
                    i,
                    (i % 2) as u32 * 2,
                    2 - (i % 2) as u32 * 2,
                    15,
                    0.1 + 0.4 * i as f64,
                )
            })
            .collect();
        let fc = FaultConfig {
            seed: 7,
            channel_outage_rate: 1.0,
            outage_duration: 1.0,
            node_churn_rate: 0.5,
            node_downtime: 1.0,
            unit_drop_prob: 0.1,
            settle_jitter: 0.3,
            grief_prob: 0.05,
            ..FaultConfig::default()
        };
        let mut cfg = SimConfig::new(20.0);
        cfg.deadline = 8.0;
        cfg.audit = true;
        cfg.faults = Some(FaultPlan::from_config(&fc, &g, 20.0));
        let a = run(&g, &txs, &mut WaterfillingScheme::new(), &cfg);
        let b = run(&g, &txs, &mut WaterfillingScheme::new(), &cfg);
        assert!(a.audit_checks > 0);
        assert!(a.audit_violations.is_empty(), "{:?}", a.audit_violations);
        let stats = a.faults.expect("fault stats present");
        assert!(stats.outages > 0, "storm must produce outages: {stats:?}");
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "fault runs must be fully deterministic"
        );
    }

    #[test]
    fn griefed_units_pin_funds_then_refund() {
        use crate::faults::{FaultConfig, FaultPlan};
        // With grief_prob = 1 every unit is griefed: nothing settles, funds
        // stay pinned for `grief_hold` past Δ, then everything refunds with
        // exact conservation.
        let g = line3(100);
        let txs = vec![tx(0, 0, 2, 30, 0.1)];
        let fc = FaultConfig {
            seed: 3,
            grief_prob: 1.0,
            grief_hold: 1.0,
            retry: None,
            ..FaultConfig::default()
        };
        let mut cfg = SimConfig::new(10.0);
        cfg.deadline = 6.0;
        cfg.audit = true;
        cfg.faults = Some(FaultPlan::from_config(&fc, &g, 10.0));
        let report = run(&g, &txs, &mut ShortestPathScheme::new(), &cfg);
        let stats = report.faults.expect("fault stats present");
        assert!(stats.units_griefed > 0, "{stats:?}");
        assert_eq!(report.completed, 0);
        assert_eq!(report.delivered_volume, 0.0);
        assert!(
            report.audit_violations.is_empty(),
            "{:?}",
            report.audit_violations
        );
    }
}
