//! Wire encoding of transaction units.
//!
//! Spider routers forward transaction units that carry, like Lightning's
//! onion packets (§4.2), a per-hop routing header plus the HTLC parameters:
//! payment id, sequence number, amount, hash-lock, and expiry. This module
//! defines that packet format with an exact, versioned binary encoding —
//! what a real Spider deployment would put on the wire, and what the
//! simulator uses to size queues and measure per-hop overhead.
//!
//! Layered (onion) encoding: each hop's header is prepended so a router
//! peels exactly one layer; the payload it forwards is what remains. The
//! privacy of real onion routing comes from per-hop encryption, which is
//! out of scope — the *structure* (fixed per-hop overhead, peeling) is
//! modeled faithfully.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use spider_core::{Amount, NodeId, PaymentId, UnitId};

/// Protocol version tag for [`UnitPacket`] encodings.
pub const WIRE_VERSION: u8 = 1;

/// Magic bytes prefixing every packet.
pub const WIRE_MAGIC: [u8; 2] = *b"SP";

/// The 32-byte hash-lock condition guarding a transaction unit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HashLock(pub [u8; 32]);

impl HashLock {
    /// Derives a deterministic hash-lock from a payment id and sequence
    /// number (a stand-in for `H(preimage)`; the simulator does not need
    /// real preimages, only distinct, reproducible lock values).
    pub fn derive(unit: UnitId) -> Self {
        let mut out = [0u8; 32];
        let mut state = unit.payment.0 ^ 0x517c_c1b7_2722_0a95;
        for (i, chunk) in out.chunks_mut(8).enumerate() {
            state = state
                .wrapping_add(unit.seq as u64 + i as u64)
                .wrapping_mul(0x2545_f491_4f6c_dd1d);
            state ^= state >> 28;
            chunk.copy_from_slice(&state.to_be_bytes());
        }
        HashLock(out)
    }
}

/// One hop's routing instruction inside the onion.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HopHeader {
    /// The next node to forward to.
    pub next: NodeId,
    /// Fee retained by this hop, in micro-units.
    pub fee_micros: u32,
}

/// A complete transaction-unit packet: HTLC parameters plus the remaining
/// onion route.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnitPacket {
    /// Which payment and unit this is.
    pub unit: UnitId,
    /// Value carried by this unit.
    pub amount: Amount,
    /// Hash-lock condition.
    pub lock: HashLock,
    /// Absolute expiry (milliseconds of simulation time).
    pub expiry_ms: u64,
    /// Remaining hops, outermost first.
    pub route: Vec<HopHeader>,
}

/// Errors from decoding a [`UnitPacket`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// Fewer bytes than the fixed header requires.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Route length field exceeds the hard cap.
    RouteTooLong(u16),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "packet truncated"),
            WireError::BadMagic => write!(f, "bad magic bytes"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::RouteTooLong(n) => write!(f, "route of {n} hops exceeds cap"),
        }
    }
}

impl std::error::Error for WireError {}

/// Hard cap on route length (trails cannot revisit channels, and no
/// realistic PCN path approaches this).
pub const MAX_ROUTE_HOPS: u16 = 64;

/// Fixed encoded size of everything except the route (magic, version,
/// payment id, seq, amount, lock, expiry, hop count).
pub const FIXED_HEADER_BYTES: usize = 2 + 1 + 8 + 4 + 8 + 32 + 8 + 2;

/// Encoded size of one hop header.
pub const HOP_BYTES: usize = 4 + 4;

impl UnitPacket {
    /// Total encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        FIXED_HEADER_BYTES + self.route.len() * HOP_BYTES
    }

    /// Encodes the packet.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_slice(&WIRE_MAGIC);
        buf.put_u8(WIRE_VERSION);
        buf.put_u64(self.unit.payment.0);
        buf.put_u32(self.unit.seq);
        buf.put_i64(self.amount.micros());
        buf.put_slice(&self.lock.0);
        buf.put_u64(self.expiry_ms);
        buf.put_u16(self.route.len() as u16);
        for hop in &self.route {
            buf.put_u32(hop.next.0);
            buf.put_u32(hop.fee_micros);
        }
        buf.freeze()
    }

    /// Decodes a packet, validating framing.
    pub fn decode(mut data: &[u8]) -> Result<UnitPacket, WireError> {
        if data.len() < FIXED_HEADER_BYTES {
            return Err(WireError::Truncated);
        }
        let mut magic = [0u8; 2];
        data.copy_to_slice(&mut magic);
        if magic != WIRE_MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = data.get_u8();
        if version != WIRE_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let payment = PaymentId(data.get_u64());
        let seq = data.get_u32();
        let amount = Amount::from_micros(data.get_i64());
        let mut lock = [0u8; 32];
        data.copy_to_slice(&mut lock);
        let expiry_ms = data.get_u64();
        let hops = data.get_u16();
        if hops > MAX_ROUTE_HOPS {
            return Err(WireError::RouteTooLong(hops));
        }
        if data.remaining() < hops as usize * HOP_BYTES {
            return Err(WireError::Truncated);
        }
        let mut route = Vec::with_capacity(hops as usize);
        for _ in 0..hops {
            route.push(HopHeader {
                next: NodeId(data.get_u32()),
                fee_micros: data.get_u32(),
            });
        }
        Ok(UnitPacket {
            unit: UnitId { payment, seq },
            amount,
            lock: HashLock(lock),
            expiry_ms,
            route,
        })
    }

    /// Peels the outermost routing layer: returns the hop a router must
    /// forward to, and the packet it forwards (one layer shorter, with this
    /// hop's fee subtracted from the carried amount).
    ///
    /// Returns `None` when the route is empty — the packet has reached its
    /// destination.
    pub fn peel(&self) -> Option<(HopHeader, UnitPacket)> {
        let (first, rest) = self.route.split_first()?;
        let mut inner = self.clone();
        inner.route = rest.to_vec();
        inner.amount -= Amount::from_micros(first.fee_micros as i64);
        Some((*first, inner))
    }
}

/// Builds the packet for a unit traveling `path_nodes` (source first), with
/// a uniform per-hop fee.
pub fn packet_for_path(
    unit: UnitId,
    amount: Amount,
    expiry_ms: u64,
    path_nodes: &[NodeId],
    fee_micros: u32,
) -> UnitPacket {
    assert!(path_nodes.len() >= 2, "a route needs at least one hop");
    let route = path_nodes[1..]
        .iter()
        .map(|&next| HopHeader { next, fee_micros })
        .collect();
    UnitPacket {
        unit,
        amount,
        lock: HashLock::derive(unit),
        expiry_ms,
        route,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> UnitPacket {
        packet_for_path(
            UnitId {
                payment: PaymentId(42),
                seq: 7,
            },
            Amount::from_tokens(12.5),
            91_500,
            &[NodeId(1), NodeId(5), NodeId(9), NodeId(3)],
            250,
        )
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = sample();
        let bytes = p.encode();
        assert_eq!(bytes.len(), p.encoded_len());
        let q = UnitPacket::decode(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn empty_route_round_trips() {
        let mut p = sample();
        p.route.clear();
        let q = UnitPacket::decode(&p.encode()).unwrap();
        assert_eq!(q.route.len(), 0);
        assert!(q.peel().is_none());
    }

    #[test]
    fn peel_walks_the_route_and_charges_fees() {
        let p = sample();
        let (hop1, p1) = p.peel().unwrap();
        assert_eq!(hop1.next, NodeId(5));
        assert_eq!(p1.route.len(), 2);
        assert_eq!(p1.amount, p.amount - Amount::from_micros(250));
        let (hop2, p2) = p1.peel().unwrap();
        assert_eq!(hop2.next, NodeId(9));
        let (hop3, p3) = p2.peel().unwrap();
        assert_eq!(hop3.next, NodeId(3));
        assert!(p3.peel().is_none());
        assert_eq!(p3.amount, p.amount - Amount::from_micros(750));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample().encode().to_vec();
        bytes[0] = b'X';
        assert_eq!(UnitPacket::decode(&bytes), Err(WireError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = sample().encode().to_vec();
        bytes[2] = 99;
        assert_eq!(UnitPacket::decode(&bytes), Err(WireError::BadVersion(99)));
    }

    #[test]
    fn rejects_truncated() {
        let bytes = sample().encode();
        assert_eq!(UnitPacket::decode(&bytes[..5]), Err(WireError::Truncated));
        // Cut inside the route section.
        assert_eq!(
            UnitPacket::decode(&bytes[..bytes.len() - 3]),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn rejects_oversized_route_claim() {
        let mut bytes = sample().encode().to_vec();
        // The hop-count field sits right before the route bytes.
        let at = FIXED_HEADER_BYTES - 2;
        bytes[at] = 0xff;
        bytes[at + 1] = 0xff;
        assert_eq!(
            UnitPacket::decode(&bytes),
            Err(WireError::RouteTooLong(0xffff))
        );
    }

    #[test]
    fn hash_locks_are_distinct_and_deterministic() {
        let a = HashLock::derive(UnitId {
            payment: PaymentId(1),
            seq: 0,
        });
        let b = HashLock::derive(UnitId {
            payment: PaymentId(1),
            seq: 1,
        });
        let c = HashLock::derive(UnitId {
            payment: PaymentId(2),
            seq: 0,
        });
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(
            a,
            HashLock::derive(UnitId {
                payment: PaymentId(1),
                seq: 0
            })
        );
    }

    #[test]
    fn per_hop_overhead_is_fixed() {
        let short = packet_for_path(
            UnitId {
                payment: PaymentId(0),
                seq: 0,
            },
            Amount::ONE,
            0,
            &[NodeId(0), NodeId(1)],
            0,
        );
        let long = packet_for_path(
            UnitId {
                payment: PaymentId(0),
                seq: 0,
            },
            Amount::ONE,
            0,
            &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            0,
        );
        assert_eq!(long.encoded_len() - short.encoded_len(), 2 * HOP_BYTES);
    }
}
