//! Deterministic fault injection and sender-side recovery.
//!
//! The paper evaluates routing on an ideal network; a production PCN must
//! keep conserving value — and degrade gracefully — when channels go down,
//! nodes churn, units are delayed or dropped in flight, and counterparties
//! grief HTLCs. This module provides:
//!
//! - [`FaultConfig`] — a seeded description of the disturbance process
//!   (channel outage rate, node churn, per-unit drop/jitter/grief
//!   probabilities) plus an optional sender [`RetryPolicy`];
//! - [`FaultPlan`] — the config expanded into an explicit, sorted schedule
//!   of [`FaultEvent`]s for one run, built either from the seeded process
//!   (SplitMix64, no wall clock) or scripted directly;
//! - [`FaultState`] — the runtime mask consumed by the engines: per-channel
//!   down-cause counts, per-node liveness, the per-unit fate RNG, and
//!   [`FaultStats`];
//! - [`FaultView`] — a [`BalanceView`] wrapper that reports zero spendable
//!   balance on downed or blacklisted channels, so every routing scheme's
//!   existing path machinery avoids dead channels without modification.
//!
//! Everything is a pure function of the seed: the same config produces the
//! same schedule, unit fates, and trace on any host or worker count.

use serde::{Deserialize, Serialize};
use spider_core::{Amount, BalanceView, ChannelId, Direction, Network, NodeId, Path};

/// SplitMix64 (Steele, Lea & Flood 2014): a tiny, high-quality,
/// fully deterministic 64-bit generator. Used for both schedule expansion
/// and per-unit fate draws.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

    /// A generator seeded at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(Self::GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `0..n` (`n` must be positive).
    pub fn next_below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// The raw generator state, for checkpointing.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// A generator resumed at a previously captured raw state. Unlike
    /// [`new`](Self::new), the argument is the internal counter itself, not
    /// a seed: `from_state(g.state())` continues `g`'s stream exactly.
    pub fn from_state(state: u64) -> Self {
        SplitMix64 { state }
    }
}

/// Sender-side recovery policy: exponential backoff with a per-payment
/// fault-failure budget and failed-hop blacklisting.
///
/// Without a retry policy, a payment is abandoned on its first fault
/// failure (the sender gives up); with one, the sender backs off, avoids
/// the blamed channel, and re-routes through the scheme's path machinery.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Fault failures tolerated per payment before it is abandoned.
    pub max_attempts: u32,
    /// First backoff delay after a fault failure (seconds).
    pub backoff_base: f64,
    /// Multiplier applied to the backoff on every subsequent failure.
    pub backoff_mult: f64,
    /// How long a blamed channel stays blacklisted (seconds).
    pub blacklist_duration: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            backoff_base: 0.2,
            backoff_mult: 2.0,
            blacklist_duration: 2.0,
        }
    }
}

/// Seeded description of the disturbance process for one run.
///
/// Rates are interpreted as follows:
///
/// - `channel_outage_rate` — expected outages *per channel* over the run
///   (fractional rates Bernoulli-round deterministically per channel);
/// - `node_churn_rate` — probability that each node crashes once during
///   the run;
/// - `unit_drop_prob` / `grief_prob` — per-unit probabilities, drawn at
///   send time from the seeded stream;
/// - `settle_jitter` — maximum extra settlement delay per unit (uniform
///   in `[0, settle_jitter]`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for schedule expansion and per-unit fate draws.
    #[serde(default)]
    pub seed: u64,
    /// Expected outages per channel over the run.
    #[serde(default)]
    pub channel_outage_rate: f64,
    /// How long each channel outage lasts (seconds).
    #[serde(default = "default_outage_duration")]
    pub outage_duration: f64,
    /// Probability that each node crashes once during the run.
    #[serde(default)]
    pub node_churn_rate: f64,
    /// How long a crashed node stays down (seconds).
    #[serde(default = "default_node_downtime")]
    pub node_downtime: f64,
    /// Per-unit probability of being dropped in flight.
    #[serde(default)]
    pub unit_drop_prob: f64,
    /// Maximum extra per-unit settlement delay (seconds).
    #[serde(default)]
    pub settle_jitter: f64,
    /// Per-unit probability of an HTLC grief (funds pinned, then refunded).
    #[serde(default)]
    pub grief_prob: f64,
    /// How long griefed funds stay pinned past the normal settle time
    /// (seconds).
    #[serde(default = "default_grief_hold")]
    pub grief_hold: f64,
    /// Sender recovery policy; `None` abandons a payment on its first
    /// fault failure.
    #[serde(default)]
    pub retry: Option<RetryPolicy>,
}

fn default_outage_duration() -> f64 {
    5.0
}

fn default_node_downtime() -> f64 {
    5.0
}

fn default_grief_hold() -> f64 {
    5.0
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            channel_outage_rate: 0.0,
            outage_duration: default_outage_duration(),
            node_churn_rate: 0.0,
            node_downtime: default_node_downtime(),
            unit_drop_prob: 0.0,
            settle_jitter: 0.0,
            grief_prob: 0.0,
            grief_hold: default_grief_hold(),
            retry: Some(RetryPolicy::default()),
        }
    }
}

impl FaultConfig {
    /// A named scenario preset, or `None` for an unknown name.
    ///
    /// - `"outages"` — one outage per channel on average;
    /// - `"churn"` — 20% of nodes crash once;
    /// - `"drops"` — 5% of units dropped in flight;
    /// - `"jitter"` — up to 0.5 s extra settlement delay per unit;
    /// - `"griefing"` — 3% of units griefed (funds pinned 5 s);
    /// - `"stress"` — all of the above at once.
    pub fn scenario(name: &str) -> Option<FaultConfig> {
        let mut cfg = FaultConfig::default();
        match name {
            "outages" => cfg.channel_outage_rate = 1.0,
            "churn" => cfg.node_churn_rate = 0.2,
            "drops" => cfg.unit_drop_prob = 0.05,
            "jitter" => cfg.settle_jitter = 0.5,
            "griefing" => cfg.grief_prob = 0.03,
            "stress" => {
                cfg.channel_outage_rate = 0.5;
                cfg.node_churn_rate = 0.1;
                cfg.unit_drop_prob = 0.02;
                cfg.settle_jitter = 0.25;
                cfg.grief_prob = 0.01;
            }
            _ => return None,
        }
        Some(cfg)
    }

    /// `true` when this config can never perturb a run.
    pub fn is_inert(&self) -> bool {
        self.channel_outage_rate <= 0.0
            && self.node_churn_rate <= 0.0
            && self.unit_drop_prob <= 0.0
            && self.settle_jitter <= 0.0
            && self.grief_prob <= 0.0
    }
}

/// One scripted fault transition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The channel goes down: capacity masked, in-flight units crossing it
    /// refunded.
    ChannelDown(ChannelId),
    /// The channel comes back up.
    ChannelUp(ChannelId),
    /// The node crashes: every incident channel goes down.
    NodeDown(NodeId),
    /// The node rejoins.
    NodeUp(NodeId),
}

/// The expanded fault schedule for one run: scripted `(time, event)` pairs
/// sorted by time, plus the per-unit disturbance parameters.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Scheduled transitions, sorted by time (ties keep insertion order).
    pub events: Vec<(f64, FaultEvent)>,
    /// The originating config (per-unit probabilities, retry policy, seed).
    pub config: FaultConfig,
}

impl FaultPlan {
    /// Expands `config` into a schedule for `network` over `[0, end_time]`
    /// using the config's SplitMix64 seed. Channels and nodes are visited
    /// in id order, so the schedule is a pure function of the inputs.
    pub fn from_config(config: &FaultConfig, network: &Network, end_time: f64) -> Self {
        assert!(end_time > 0.0, "fault plan needs a positive horizon");
        let mut rng = SplitMix64::new(config.seed);
        let mut events: Vec<(f64, FaultEvent)> = Vec::new();
        for ch in network.channels() {
            let rate = config.channel_outage_rate.max(0.0);
            let mut count = rate.floor() as u64;
            if rng.next_f64() < rate.fract() {
                count += 1;
            }
            for _ in 0..count {
                let start = rng.next_f64() * end_time;
                events.push((start, FaultEvent::ChannelDown(ch.id)));
                events.push((
                    start + config.outage_duration.max(0.0),
                    FaultEvent::ChannelUp(ch.id),
                ));
            }
        }
        for node in 0..network.num_nodes() {
            if rng.next_f64() < config.node_churn_rate {
                let id = NodeId(node as u32);
                let start = rng.next_f64() * end_time;
                events.push((start, FaultEvent::NodeDown(id)));
                events.push((
                    start + config.node_downtime.max(0.0),
                    FaultEvent::NodeUp(id),
                ));
            }
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0));
        FaultPlan {
            events,
            config: config.clone(),
        }
    }

    /// A plan from explicit scripted events (times need not be sorted).
    pub fn scripted(mut events: Vec<(f64, FaultEvent)>, config: FaultConfig) -> Self {
        events.sort_by(|a, b| a.0.total_cmp(&b.0));
        FaultPlan { events, config }
    }
}

/// Fault-injection and recovery statistics for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Channel-outage transitions applied (direct outages only).
    pub outages: u64,
    /// Channel recoveries applied.
    pub recoveries: u64,
    /// Node crashes applied.
    pub node_crashes: u64,
    /// In-flight units refunded because a channel on their path went down.
    pub units_refunded_by_outage: u64,
    /// Units dropped in flight by the per-unit drop process.
    pub units_dropped: u64,
    /// Units whose settlement was delayed by jitter.
    pub units_jittered: u64,
    /// Units griefed (funds pinned until the hold expired).
    pub units_griefed: u64,
    /// Retries scheduled by the sender recovery policy.
    pub retries: u64,
    /// Channel blacklistings applied by the recovery policy.
    pub blacklistings: u64,
    /// Payments abandoned because their fault-failure budget ran out (or,
    /// with retries disabled, on their first fault failure).
    pub payments_failed: u64,
}

/// The fate drawn for one freshly sent unit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UnitFate {
    /// Settles normally, `jitter` seconds late.
    Deliver {
        /// Extra settlement delay (seconds, `>= 0`).
        jitter: f64,
    },
    /// Dropped mid-flight: refunded at `at_frac` of the settlement delay,
    /// blaming hop `hop_index` of its path.
    Drop {
        /// Fraction of Δ after which the drop is detected, in `(0, 1)`.
        at_frac: f64,
        /// Index of the blamed hop on the unit's path.
        hop_index: usize,
    },
    /// HTLC griefed: never settles; refunded `hold` seconds after the
    /// normal settle time, pinning the locked funds in between.
    Grief {
        /// Extra pin time past the normal settle instant (seconds).
        hold: f64,
    },
}

/// Runtime fault mask consumed by the engines.
///
/// Tracks why each channel is down (a direct outage and each downed
/// endpoint are independent causes), which nodes are down, and owns the
/// per-unit fate RNG. Single-threaded, consumed strictly in event order,
/// so runs are deterministic.
#[derive(Clone, Debug)]
pub struct FaultState {
    /// Per-channel count of active down-causes (outage + downed endpoints).
    down_causes: Vec<u8>,
    node_down: Vec<bool>,
    rng: SplitMix64,
    /// Per-unit disturbance parameters (copied from the plan's config).
    unit_drop_prob: f64,
    settle_jitter: f64,
    grief_prob: f64,
    grief_hold: f64,
    /// Run statistics.
    pub stats: FaultStats,
}

impl FaultState {
    /// Fresh state for `network` from `plan`'s config. The fate RNG is
    /// decoupled from the schedule stream so adding scripted events never
    /// shifts unit fates.
    pub fn new(plan: &FaultPlan, network: &Network) -> Self {
        FaultState {
            down_causes: vec![0; network.num_channels()],
            node_down: vec![false; network.num_nodes()],
            rng: SplitMix64::new(plan.config.seed ^ 0xd1b5_4a32_d192_ed03),
            unit_drop_prob: plan.config.unit_drop_prob,
            settle_jitter: plan.config.settle_jitter,
            grief_prob: plan.config.grief_prob,
            grief_hold: plan.config.grief_hold,
            stats: FaultStats::default(),
        }
    }

    /// `true` while `channel` has at least one active down-cause.
    #[inline]
    pub fn is_channel_down(&self, channel: ChannelId) -> bool {
        self.down_causes[channel.index()] > 0
    }

    /// `true` while `node` is crashed.
    #[inline]
    pub fn is_node_down(&self, node: NodeId) -> bool {
        self.node_down[node.index()]
    }

    /// Applies one fault transition, returning the channels that just went
    /// from up to down (so the engine can refund the units crossing them).
    pub fn apply(&mut self, network: &Network, event: &FaultEvent) -> Vec<ChannelId> {
        let mut newly_down = Vec::new();
        let mut bump = |causes: &mut Vec<u8>, c: ChannelId, up: bool| {
            let n = &mut causes[c.index()];
            if up {
                *n = n.saturating_sub(1);
            } else {
                *n = n.saturating_add(1);
                if *n == 1 {
                    newly_down.push(c);
                }
            }
        };
        match event {
            FaultEvent::ChannelDown(c) => {
                self.stats.outages += 1;
                bump(&mut self.down_causes, *c, false);
            }
            FaultEvent::ChannelUp(c) => {
                self.stats.recoveries += 1;
                bump(&mut self.down_causes, *c, true);
            }
            FaultEvent::NodeDown(n) => {
                if !self.node_down[n.index()] {
                    self.stats.node_crashes += 1;
                    self.node_down[n.index()] = true;
                    for &(_, c) in network.neighbors(*n) {
                        bump(&mut self.down_causes, c, false);
                    }
                }
            }
            FaultEvent::NodeUp(n) => {
                if self.node_down[n.index()] {
                    self.node_down[n.index()] = false;
                    for &(_, c) in network.neighbors(*n) {
                        bump(&mut self.down_causes, c, true);
                    }
                }
            }
        }
        newly_down
    }

    /// Draws the fate of one freshly sent unit on `path`. Consumes a fixed
    /// two draws on the deliver path (plus one per special fate) so fates
    /// depend only on the send sequence.
    pub fn unit_fate(&mut self, path: &Path) -> UnitFate {
        let roll = self.rng.next_f64();
        if roll < self.unit_drop_prob {
            let hop_index = self.rng.next_below(path.hops().len().max(1));
            // Deterministic detection point strictly inside (0, Δ).
            let at_frac = 0.25 + 0.5 * self.rng.next_f64();
            self.stats.units_dropped += 1;
            return UnitFate::Drop { at_frac, hop_index };
        }
        if roll < self.unit_drop_prob + self.grief_prob {
            self.stats.units_griefed += 1;
            return UnitFate::Grief {
                hold: self.grief_hold,
            };
        }
        let jitter = if self.settle_jitter > 0.0 {
            let j = self.settle_jitter * self.rng.next_f64();
            if j > 0.0 {
                self.stats.units_jittered += 1;
            }
            j
        } else {
            0.0
        };
        UnitFate::Deliver { jitter }
    }

    /// `true` if any hop of `path` is currently down.
    pub fn path_blocked(&self, path: &Path) -> bool {
        path.hops().iter().any(|&(c, _)| self.is_channel_down(c))
    }

    /// Captures the mutable runtime — down-cause counts, node liveness,
    /// fate-RNG position, and stats — for a checkpoint. The per-unit
    /// probabilities are not captured; they are rebuilt from the plan's
    /// config on restore.
    pub fn export_state(&self) -> FaultStateSnapshot {
        FaultStateSnapshot {
            down_causes: self.down_causes.clone(),
            node_down: self.node_down.clone(),
            rng_state: self.rng.state(),
            stats: self.stats,
        }
    }

    /// Restores a capture from [`export_state`](Self::export_state) into a
    /// state freshly built for the same plan and network. Fails (changing
    /// nothing) when the vector lengths do not match this network.
    pub fn restore_state(&mut self, snap: FaultStateSnapshot) -> Result<(), String> {
        if snap.down_causes.len() != self.down_causes.len() {
            return Err(format!(
                "fault state has {} channels, network has {}",
                snap.down_causes.len(),
                self.down_causes.len()
            ));
        }
        if snap.node_down.len() != self.node_down.len() {
            return Err(format!(
                "fault state has {} nodes, network has {}",
                snap.node_down.len(),
                self.node_down.len()
            ));
        }
        self.down_causes = snap.down_causes;
        self.node_down = snap.node_down;
        self.rng = SplitMix64::from_state(snap.rng_state);
        self.stats = snap.stats;
        Ok(())
    }
}

/// Plain-data capture of a [`FaultState`]'s mutable runtime, produced by
/// [`FaultState::export_state`] and consumed by
/// [`FaultState::restore_state`].
#[derive(Clone, Debug, PartialEq)]
pub struct FaultStateSnapshot {
    /// Per-channel count of active down-causes.
    pub down_causes: Vec<u8>,
    /// Per-node crashed flag.
    pub node_down: Vec<bool>,
    /// Raw SplitMix64 state of the per-unit fate RNG.
    pub rng_state: u64,
    /// Run statistics so far.
    pub stats: FaultStats,
}

/// Per-channel blacklist: a sender avoids a blamed channel until the
/// recorded time.
#[derive(Clone, Debug)]
pub struct Blacklist {
    until: Vec<f64>,
}

impl Blacklist {
    /// An empty blacklist over `num_channels` channels.
    pub fn new(num_channels: usize) -> Self {
        Blacklist {
            until: vec![f64::NEG_INFINITY; num_channels],
        }
    }

    /// Blacklists `channel` until `until` (extends, never shortens).
    pub fn block(&mut self, channel: ChannelId, until: f64) {
        let slot = &mut self.until[channel.index()];
        if until > *slot {
            *slot = until;
        }
    }

    /// `true` while `channel` is blacklisted at time `now`.
    #[inline]
    pub fn blocked(&self, channel: ChannelId, now: f64) -> bool {
        self.until[channel.index()] > now
    }

    /// `true` if any hop of `path` is blacklisted at `now`.
    pub fn path_blocked(&self, path: &Path, now: f64) -> bool {
        path.hops().iter().any(|&(c, _)| self.blocked(c, now))
    }

    /// Raw per-channel expiry times (`NEG_INFINITY` = never blocked), for
    /// checkpointing.
    pub fn slots(&self) -> &[f64] {
        &self.until
    }

    /// Restores slots captured by [`slots`](Self::slots). Fails (changing
    /// nothing) when the length does not match this network.
    pub fn restore_slots(&mut self, slots: Vec<f64>) -> Result<(), String> {
        if slots.len() != self.until.len() {
            return Err(format!(
                "blacklist has {} channels, network has {}",
                slots.len(),
                self.until.len()
            ));
        }
        self.until = slots;
        Ok(())
    }
}

/// A [`BalanceView`] that reports zero spendable balance on downed or
/// blacklisted channels, so k-shortest / waterfilling / LP schemes route
/// around failures with their existing bottleneck machinery.
pub struct FaultView<'a, V: BalanceView> {
    /// The unmasked view.
    pub inner: &'a V,
    /// Live fault mask.
    pub faults: &'a FaultState,
    /// Sender blacklist.
    pub blacklist: &'a Blacklist,
    /// Current simulation time (for blacklist expiry).
    pub now: f64,
}

impl<V: BalanceView> BalanceView for FaultView<'_, V> {
    fn available(&self, channel: ChannelId, from: NodeId) -> Amount {
        if self.faults.is_channel_down(channel) || self.blacklist.blocked(channel, self.now) {
            Amount::ZERO
        } else {
            self.inner.available(channel, from)
        }
    }

    fn available_dir(&self, channel: ChannelId, from: NodeId, dir: Direction) -> Amount {
        if self.faults.is_channel_down(channel) || self.blacklist.blocked(channel, self.now) {
            Amount::ZERO
        } else {
            self.inner.available_dir(channel, from, dir)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> Network {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(10))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(2), Amount::from_whole(10))
            .unwrap();
        g
    }

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = SplitMix64::new(43);
        assert_ne!(xs[0], c.next_u64());
        for _ in 0..1000 {
            let f = c.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn plan_expansion_is_deterministic_and_sorted() {
        let g = line3();
        let cfg = FaultConfig {
            seed: 7,
            channel_outage_rate: 2.0,
            node_churn_rate: 0.5,
            ..FaultConfig::default()
        };
        let a = FaultPlan::from_config(&cfg, &g, 100.0);
        let b = FaultPlan::from_config(&cfg, &g, 100.0);
        assert_eq!(a.events.len(), b.events.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1, y.1);
        }
        for w in a.events.windows(2) {
            assert!(w[0].0 <= w[1].0, "schedule must be sorted");
        }
        // Rate 2.0 => exactly 2 outages (4 events) per channel, plus churn.
        let downs = a
            .events
            .iter()
            .filter(|(_, e)| matches!(e, FaultEvent::ChannelDown(_)))
            .count();
        assert_eq!(downs, 4, "2 channels x rate 2.0");
    }

    #[test]
    fn zero_rate_plan_is_empty() {
        let g = line3();
        let cfg = FaultConfig::default();
        assert!(cfg.is_inert());
        let plan = FaultPlan::from_config(&cfg, &g, 50.0);
        assert!(plan.events.is_empty());
    }

    #[test]
    fn down_causes_stack_outage_and_node_crash() {
        let g = line3();
        let plan = FaultPlan::scripted(Vec::new(), FaultConfig::default());
        let mut st = FaultState::new(&plan, &g);
        let c01 = g.channels()[0].id;
        let c12 = g.channels()[1].id;

        let newly = st.apply(&g, &FaultEvent::ChannelDown(c01));
        assert_eq!(newly, vec![c01]);
        assert!(st.is_channel_down(c01));

        // Node 1 crashing takes BOTH channels down; c01 is already down so
        // only c12 is newly down.
        let newly = st.apply(&g, &FaultEvent::NodeDown(NodeId(1)));
        assert_eq!(newly, vec![c12]);
        assert!(st.is_node_down(NodeId(1)));

        // Outage recovery alone does not revive c01 (node 1 still down).
        let up = st.apply(&g, &FaultEvent::ChannelUp(c01));
        assert!(up.is_empty());
        assert!(st.is_channel_down(c01));

        st.apply(&g, &FaultEvent::NodeUp(NodeId(1)));
        assert!(!st.is_channel_down(c01));
        assert!(!st.is_channel_down(c12));
        assert_eq!(st.stats.outages, 1);
        assert_eq!(st.stats.node_crashes, 1);
    }

    #[test]
    fn duplicate_node_down_is_idempotent() {
        let g = line3();
        let plan = FaultPlan::scripted(Vec::new(), FaultConfig::default());
        let mut st = FaultState::new(&plan, &g);
        st.apply(&g, &FaultEvent::NodeDown(NodeId(1)));
        st.apply(&g, &FaultEvent::NodeDown(NodeId(1)));
        st.apply(&g, &FaultEvent::NodeUp(NodeId(1)));
        assert!(!st.is_channel_down(g.channels()[0].id));
        assert_eq!(st.stats.node_crashes, 1);
    }

    #[test]
    fn unit_fates_follow_probabilities() {
        let g = line3();
        let path = Path::new(&g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        let cfg = FaultConfig {
            unit_drop_prob: 0.3,
            grief_prob: 0.2,
            settle_jitter: 0.5,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::scripted(Vec::new(), cfg);
        let mut st = FaultState::new(&plan, &g);
        let (mut drops, mut griefs, mut delivers) = (0u32, 0u32, 0u32);
        for _ in 0..2000 {
            match st.unit_fate(&path) {
                UnitFate::Drop { at_frac, hop_index } => {
                    assert!((0.0..1.0).contains(&at_frac));
                    assert!(hop_index < path.hops().len());
                    drops += 1;
                }
                UnitFate::Grief { hold } => {
                    assert_eq!(hold, plan.config.grief_hold);
                    griefs += 1;
                }
                UnitFate::Deliver { jitter } => {
                    assert!((0.0..=0.5).contains(&jitter));
                    delivers += 1;
                }
            }
        }
        assert!((500..700).contains(&drops), "drops {drops}");
        assert!((300..500).contains(&griefs), "griefs {griefs}");
        assert!(delivers > 800);
        assert_eq!(st.stats.units_dropped as u32, drops);
        assert_eq!(st.stats.units_griefed as u32, griefs);
    }

    #[test]
    fn fault_view_masks_down_and_blacklisted_channels() {
        let g = line3();
        let ledger = crate::ledger::Ledger::new(&g);
        let inner = crate::ledger::LedgerView {
            network: &g,
            ledger: &ledger,
        };
        let plan = FaultPlan::scripted(Vec::new(), FaultConfig::default());
        let mut st = FaultState::new(&plan, &g);
        let mut bl = Blacklist::new(g.num_channels());
        let c01 = g.channels()[0].id;
        let c12 = g.channels()[1].id;

        st.apply(&g, &FaultEvent::ChannelDown(c01));
        bl.block(c12, 10.0);
        let view = FaultView {
            inner: &inner,
            faults: &st,
            blacklist: &bl,
            now: 5.0,
        };
        assert_eq!(view.available(c01, NodeId(0)), Amount::ZERO);
        assert_eq!(view.available(c12, NodeId(1)), Amount::ZERO);
        // After expiry the blacklist no longer masks.
        let later = FaultView {
            inner: &inner,
            faults: &st,
            blacklist: &bl,
            now: 11.0,
        };
        assert!(later.available(c12, NodeId(1)).is_positive());
    }

    #[test]
    fn scenarios_parse() {
        for name in ["outages", "churn", "drops", "jitter", "griefing", "stress"] {
            let cfg = FaultConfig::scenario(name).unwrap_or_else(|| panic!("scenario {name}"));
            assert!(!cfg.is_inert(), "{name} must perturb something");
        }
        assert!(FaultConfig::scenario("nope").is_none());
    }

    #[test]
    fn config_round_trips_through_json() {
        let mut cfg = FaultConfig::scenario("stress").unwrap();
        cfg.seed = 99;
        cfg.retry = Some(RetryPolicy {
            max_attempts: 3,
            backoff_base: 0.1,
            backoff_mult: 1.5,
            blacklist_duration: 1.0,
        });
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FaultConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        // Sparse JSON fills defaults.
        let sparse: FaultConfig = serde_json::from_str(r#"{"channel_outage_rate":0.5}"#).unwrap();
        assert_eq!(sparse.channel_outage_rate, 0.5);
        assert_eq!(sparse.outage_duration, 5.0);
        assert!(sparse.retry.is_none());
    }
}
