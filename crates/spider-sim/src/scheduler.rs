//! Payment scheduling policies (§4.2, §6.1).
//!
//! Incomplete non-atomic payments are polled periodically and serviced in
//! policy order. The paper schedules by *shortest remaining processing
//! time* (SRPT, after pFabric \[8\]); FIFO, LIFO, and earliest-deadline-first
//! are provided for ablations.

use crate::payment::PaymentState;
use serde::{Deserialize, Serialize};

/// Order in which pending payments are serviced each scheduler tick.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulePolicy {
    /// Shortest remaining processing time (the paper's choice).
    #[default]
    Srpt,
    /// Oldest arrival first.
    Fifo,
    /// Newest arrival first.
    Lifo,
    /// Earliest deadline first.
    Edf,
}

impl SchedulePolicy {
    /// Sorts pending payment indices into service order (stable and
    /// deterministic: ties break by payment id).
    pub fn order(&self, payments: &[PaymentState], pending: &mut [usize]) {
        match self {
            SchedulePolicy::Srpt => pending.sort_by(|&a, &b| {
                payments[a]
                    .remaining()
                    .cmp(&payments[b].remaining())
                    .then(payments[a].id.cmp(&payments[b].id))
            }),
            SchedulePolicy::Fifo => pending.sort_by(|&a, &b| {
                payments[a]
                    .arrival
                    .total_cmp(&payments[b].arrival)
                    .then(payments[a].id.cmp(&payments[b].id))
            }),
            SchedulePolicy::Lifo => pending.sort_by(|&a, &b| {
                payments[b]
                    .arrival
                    .total_cmp(&payments[a].arrival)
                    .then(payments[a].id.cmp(&payments[b].id))
            }),
            SchedulePolicy::Edf => pending.sort_by(|&a, &b| {
                payments[a]
                    .deadline
                    .total_cmp(&payments[b].deadline)
                    .then(payments[a].id.cmp(&payments[b].id))
            }),
        }
    }

    /// Variant of [`order`](Self::order) for engines that quantize time to
    /// whole epochs (the sharded engine): the caller supplies integer
    /// accessors instead of a `PaymentState` slab. Ties break by payment
    /// id, so the order is a pure function of payment content.
    pub fn order_quantized(
        &self,
        pending: &mut [usize],
        remaining_micros: impl Fn(usize) -> i64,
        arrival_epoch: impl Fn(usize) -> u64,
        deadline_epoch: impl Fn(usize) -> u64,
        id: impl Fn(usize) -> u64,
    ) {
        match self {
            SchedulePolicy::Srpt => {
                pending.sort_by_key(|&i| (remaining_micros(i), id(i)));
            }
            SchedulePolicy::Fifo => {
                pending.sort_by_key(|&i| (arrival_epoch(i), id(i)));
            }
            SchedulePolicy::Lifo => {
                pending.sort_by_key(|&i| (std::cmp::Reverse(arrival_epoch(i)), id(i)));
            }
            SchedulePolicy::Edf => {
                pending.sort_by_key(|&i| (deadline_epoch(i), id(i)));
            }
        }
    }

    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulePolicy::Srpt => "srpt",
            SchedulePolicy::Fifo => "fifo",
            SchedulePolicy::Lifo => "lifo",
            SchedulePolicy::Edf => "edf",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payment::PaymentStatus;
    use spider_core::{Amount, NodeId, PaymentId};

    fn payment(id: u64, amount: i64, arrival: f64, deadline: f64) -> PaymentState {
        PaymentState {
            id: PaymentId(id),
            src: NodeId(0),
            dst: NodeId(1),
            amount: Amount::from_whole(amount),
            arrival,
            deadline,
            delivered: Amount::ZERO,
            inflight: Amount::ZERO,
            status: PaymentStatus::Pending,
            completed_at: None,
        }
    }

    fn fixture() -> Vec<PaymentState> {
        vec![
            payment(0, 50, 0.0, 9.0),
            payment(1, 10, 1.0, 3.0),
            payment(2, 30, 2.0, 6.0),
        ]
    }

    #[test]
    fn srpt_orders_by_remaining() {
        let mut payments = fixture();
        // Payment 0 has delivered most of its value: smallest remaining.
        payments[0].delivered = Amount::from_whole(45);
        let mut order = vec![0, 1, 2];
        SchedulePolicy::Srpt.order(&payments, &mut order);
        assert_eq!(order, vec![0, 1, 2]); // remaining: 5, 10, 30
    }

    #[test]
    fn fifo_and_lifo() {
        let payments = fixture();
        let mut order = vec![2, 0, 1];
        SchedulePolicy::Fifo.order(&payments, &mut order);
        assert_eq!(order, vec![0, 1, 2]);
        SchedulePolicy::Lifo.order(&payments, &mut order);
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn edf_orders_by_deadline() {
        let payments = fixture();
        let mut order = vec![0, 1, 2];
        SchedulePolicy::Edf.order(&payments, &mut order);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_by_id() {
        let payments = vec![payment(5, 10, 0.0, 1.0), payment(3, 10, 0.0, 1.0)];
        let mut order = vec![0, 1];
        SchedulePolicy::Srpt.order(&payments, &mut order);
        assert_eq!(order, vec![1, 0]); // id 3 before id 5
    }

    #[test]
    fn names() {
        assert_eq!(SchedulePolicy::default().name(), "srpt");
        assert_eq!(SchedulePolicy::Edf.name(), "edf");
    }
}
