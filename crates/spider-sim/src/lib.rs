//! Deterministic discrete-event simulator for payment channel networks.
//!
//! Reproduces the paper's evaluation substrate (§6.1):
//!
//! - [`ledger`] — live channel balances with HTLC-style in-flight locking
//!   and exact conservation of funds,
//! - [`events`] — a deterministic `(time, sequence)`-ordered event queue,
//! - [`payment`] / [`scheduler`] — pending-payment state and SRPT/FIFO/
//!   LIFO/EDF service policies,
//! - [`engine`] — the simulation loop driving any
//!   [`spider_routing::RoutingScheme`],
//! - [`engine_sharded`] — the partition-parallel engine: one simulation
//!   split across threads by a [`spider_topology::Partition`], merged
//!   byte-identically at any shard count,
//! - [`metrics`] — success ratio / success volume reporting,
//! - [`audit`] — opt-in ledger invariant checking after every
//!   balance-mutating event, reported as structured violations.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod congestion;
pub mod engine;
pub mod engine_queued;
pub mod engine_sharded;
pub mod events;
pub mod faults;
pub mod ledger;
pub mod metrics;
pub mod payment;
pub mod rebalancer;
pub mod scheduler;
pub mod snapshot;
pub mod wire;

pub use audit::{AuditViolation, AuditViolationKind, LedgerAudit};
pub use congestion::{CongestionConfig, CongestionControl};
pub use engine::{run, SimConfig};
pub use engine_queued::{run_queued, QueuePolicy, QueueStats, QueuedConfig, QueuedReport};
pub use engine_sharded::{
    resume_sharded, run_sharded, run_sharded_checkpointed, ShardEpochMetrics, ShardObservability,
    ShardPolicy, ShardScheme, ShardedConfig,
};
pub use events::{EventQueue, Time};
pub use faults::{
    Blacklist, FaultConfig, FaultEvent, FaultPlan, FaultState, FaultStats, FaultView, RetryPolicy,
    UnitFate,
};
pub use ledger::{Ledger, LedgerView};
pub use metrics::SimReport;
pub use payment::{PaymentState, PaymentStatus};
pub use rebalancer::{RebalancePolicy, RebalanceStats};
pub use scheduler::SchedulePolicy;
pub use snapshot::{latest_snapshot, CheckpointSpec, Snapshot, SnapshotError};
pub use wire::{HashLock, HopHeader, UnitPacket, WireError};
