//! The live channel ledger: spendable balances plus in-flight (HTLC-locked)
//! funds.
//!
//! Sending `m` tokens along a path locks `m` on the sender side of every hop
//! (the funds are "pending" until the receiver releases the hash-lock key,
//! §4.2 / Fig. 3). Settlement `Δ` seconds later credits the receiving side
//! of every hop. Conservation is exact: for every channel,
//! `available_a + available_b + inflight == capacity` at all times.

use spider_core::{Amount, BalanceView, ChannelId, CoreError, Direction, Network, NodeId, Path};

/// Which side (`0` = `a`, `1` = `b`) of a channel *sends* when the channel
/// is crossed in `dir`. A path hop's direction therefore resolves the
/// sender/receiver sides without touching the `Network` at all.
#[inline]
fn sender_side(dir: Direction) -> usize {
    match dir {
        Direction::AtoB => 0,
        Direction::BtoA => 1,
    }
}

/// Live balance state for one channel.
#[derive(Clone, Debug)]
struct ChannelState {
    capacity: Amount,
    /// Spendable by endpoint `a` / endpoint `b`.
    available: [Amount; 2],
    /// Funds locked in flight (sum over both directions).
    inflight: Amount,
}

impl ChannelState {
    /// Moves `amount` from `available[side]` into the in-flight pool.
    ///
    /// Callers validate `amount <= available[side]` before committing, and
    /// conservation bounds `inflight + amount` by `capacity`, so neither
    /// side can leave range; saturating arithmetic keeps a (statically
    /// impossible) overflow from wrapping silently in release builds.
    fn move_to_inflight(&mut self, side: usize, amount: Amount) {
        self.available[side] = self.available[side].saturating_sub(amount);
        self.inflight = self.inflight.saturating_add(amount);
    }

    /// Releases `amount` from the in-flight pool into `available[side]`.
    /// Same bounds argument as [`move_to_inflight`](Self::move_to_inflight),
    /// with `amount <= inflight` validated by the caller.
    fn release_from_inflight(&mut self, side: usize, amount: Amount) {
        self.available[side] = self.available[side].saturating_add(amount);
        self.inflight = self.inflight.saturating_sub(amount);
    }
}

/// The live ledger for a whole network.
///
/// Cloneable so experiments can snapshot and restart from the initial state.
#[derive(Clone, Debug)]
pub struct Ledger {
    channels: Vec<ChannelState>,
}

impl Ledger {
    /// Initializes the ledger from the network's initial balances.
    pub fn new(network: &Network) -> Self {
        let channels = network
            .channels()
            .iter()
            .map(|ch| ChannelState {
                capacity: ch.capacity(),
                available: [ch.balance_a, ch.balance_b],
                inflight: Amount::ZERO,
            })
            .collect();
        Ledger { channels }
    }

    /// Which side (`0` = `a`, `1` = `b`) of `channel` belongs to `node`,
    /// or [`CoreError::NotAnEndpoint`] when `node` is neither endpoint.
    fn try_side(network: &Network, channel: ChannelId, node: NodeId) -> Result<usize, CoreError> {
        let ch = network.channel(channel);
        if node == ch.a {
            Ok(0)
        } else if node == ch.b {
            Ok(1)
        } else {
            Err(CoreError::NotAnEndpoint { node, channel })
        }
    }

    /// Panicking variant of [`try_side`](Self::try_side), for the
    /// infallible-signature entry points ([`BalanceView`], deposits).
    fn side(network: &Network, channel: ChannelId, node: NodeId) -> usize {
        match Self::try_side(network, channel, node) {
            Ok(side) => side,
            // spider-lint: allow(panic-reachability) — documented panicking variant backing infallible BalanceView signatures; callers pass endpoints taken from the channel itself
            Err(e) => panic!("{e}"),
        }
    }

    /// Locks `amount` on the sender side of every hop of `path`, returning
    /// an error (and changing nothing) if any hop lacks funds.
    pub fn lock_path(
        &mut self,
        network: &Network,
        path: &Path,
        amount: Amount,
    ) -> Result<(), CoreError> {
        if amount.is_negative() {
            return Err(CoreError::NegativeAmount);
        }
        // Validation pass: because a trail never repeats a channel, per-hop
        // checks cannot double-count within one path. The hop direction
        // resolves the sender side directly (validated at Path construction).
        for (i, &(c, dir)) in path.hops().iter().enumerate() {
            let side = sender_side(dir);
            debug_assert_eq!(Self::try_side(network, c, path.nodes()[i]), Ok(side));
            let have = self.channels[c.index()].available[side];
            if have < amount {
                return Err(CoreError::InsufficientFunds {
                    channel: c,
                    from: path.nodes()[i],
                    available: have.micros(),
                    requested: amount.micros(),
                });
            }
        }
        // Commit pass.
        for &(c, dir) in path.hops() {
            self.channels[c.index()].move_to_inflight(sender_side(dir), amount);
            debug_assert!(self.conserves(c));
        }
        Ok(())
    }

    /// Checks that releasing `amount` from every hop of `path` stays within
    /// each channel's recorded in-flight funds. Shared validation pass for
    /// the settle/refund paths: a violation here is a double-settle /
    /// double-refund bug in the caller, and we must refuse it *before*
    /// mutating anything so release-side bugs can't corrupt balances in
    /// release builds (where `debug_assert!` compiles out).
    fn check_release(&self, path: &Path, amount: Amount) -> Result<(), CoreError> {
        if amount.is_negative() {
            return Err(CoreError::NegativeAmount);
        }
        for &(c, _) in path.hops() {
            let inflight = self.channels[c.index()].inflight;
            if inflight < amount {
                return Err(CoreError::ExcessRelease {
                    channel: c,
                    inflight: inflight.micros(),
                    requested: amount.micros(),
                });
            }
        }
        Ok(())
    }

    /// Settles a previously locked transfer: credits the receiving side of
    /// every hop and releases the in-flight funds.
    ///
    /// Returns [`CoreError::ExcessRelease`] — and changes nothing — if the
    /// settlement exceeds any hop's recorded in-flight funds (a
    /// double-settle bug in the caller).
    pub fn settle_path(
        &mut self,
        network: &Network,
        path: &Path,
        amount: Amount,
    ) -> Result<(), CoreError> {
        self.check_release(path, amount)?;
        for (i, &(c, dir)) in path.hops().iter().enumerate() {
            let side = 1 - sender_side(dir);
            debug_assert_eq!(Self::try_side(network, c, path.nodes()[i + 1]), Ok(side));
            self.channels[c.index()].release_from_inflight(side, amount);
            debug_assert!(self.conserves(c));
        }
        Ok(())
    }

    /// Cancels a previously locked transfer: refunds the sender side of
    /// every hop (an expired/failed HTLC).
    ///
    /// Returns [`CoreError::ExcessRelease`] — and changes nothing — if the
    /// refund exceeds any hop's recorded in-flight funds (a double-refund
    /// bug in the caller).
    pub fn refund_path(
        &mut self,
        network: &Network,
        path: &Path,
        amount: Amount,
    ) -> Result<(), CoreError> {
        self.check_release(path, amount)?;
        for (i, &(c, dir)) in path.hops().iter().enumerate() {
            let side = sender_side(dir);
            debug_assert_eq!(Self::try_side(network, c, path.nodes()[i]), Ok(side));
            self.channels[c.index()].release_from_inflight(side, amount);
            debug_assert!(self.conserves(c));
        }
        Ok(())
    }

    /// Locks a *per-hop* amount along `path` (`amounts[i]` on hop `i`) —
    /// the fee-bearing variant of [`lock_path`](Self::lock_path), where
    /// upstream hops carry the delivered value plus downstream fees.
    /// All-or-nothing like `lock_path`.
    pub fn lock_path_amounts(
        &mut self,
        network: &Network,
        path: &Path,
        amounts: &[Amount],
    ) -> Result<(), CoreError> {
        assert_eq!(amounts.len(), path.hops().len(), "one amount per hop");
        for (i, &(c, dir)) in path.hops().iter().enumerate() {
            if amounts[i].is_negative() {
                return Err(CoreError::NegativeAmount);
            }
            let side = sender_side(dir);
            debug_assert_eq!(Self::try_side(network, c, path.nodes()[i]), Ok(side));
            let have = self.channels[c.index()].available[side];
            if have < amounts[i] {
                return Err(CoreError::InsufficientFunds {
                    channel: c,
                    from: path.nodes()[i],
                    available: have.micros(),
                    requested: amounts[i].micros(),
                });
            }
        }
        for (i, &(c, dir)) in path.hops().iter().enumerate() {
            self.channels[c.index()].move_to_inflight(sender_side(dir), amounts[i]);
            debug_assert!(self.conserves(c));
        }
        Ok(())
    }

    /// Per-hop-amount variant of
    /// [`check_release`](Self::check_release).
    fn check_release_amounts(&self, path: &Path, amounts: &[Amount]) -> Result<(), CoreError> {
        assert_eq!(amounts.len(), path.hops().len(), "one amount per hop");
        for (i, &(c, _)) in path.hops().iter().enumerate() {
            if amounts[i].is_negative() {
                return Err(CoreError::NegativeAmount);
            }
            let inflight = self.channels[c.index()].inflight;
            if inflight < amounts[i] {
                return Err(CoreError::ExcessRelease {
                    channel: c,
                    inflight: inflight.micros(),
                    requested: amounts[i].micros(),
                });
            }
        }
        Ok(())
    }

    /// Settles a per-hop-amount transfer: hop `i`'s receiver is credited
    /// `amounts[i]` (so each router keeps its fee margin). All-or-nothing:
    /// returns [`CoreError::ExcessRelease`] and changes nothing if any hop
    /// would over-release.
    pub fn settle_path_amounts(
        &mut self,
        network: &Network,
        path: &Path,
        amounts: &[Amount],
    ) -> Result<(), CoreError> {
        self.check_release_amounts(path, amounts)?;
        for (i, &(c, dir)) in path.hops().iter().enumerate() {
            let side = 1 - sender_side(dir);
            debug_assert_eq!(Self::try_side(network, c, path.nodes()[i + 1]), Ok(side));
            self.channels[c.index()].release_from_inflight(side, amounts[i]);
            debug_assert!(self.conserves(c));
        }
        Ok(())
    }

    /// Refunds a per-hop-amount transfer back to each hop's sender.
    /// All-or-nothing like
    /// [`settle_path_amounts`](Self::settle_path_amounts).
    pub fn refund_path_amounts(
        &mut self,
        network: &Network,
        path: &Path,
        amounts: &[Amount],
    ) -> Result<(), CoreError> {
        self.check_release_amounts(path, amounts)?;
        for (i, &(c, dir)) in path.hops().iter().enumerate() {
            let side = sender_side(dir);
            debug_assert_eq!(Self::try_side(network, c, path.nodes()[i]), Ok(side));
            self.channels[c.index()].release_from_inflight(side, amounts[i]);
            debug_assert!(self.conserves(c));
        }
        Ok(())
    }

    /// Locks `amount` on `from`'s side of a single channel (hop-by-hop
    /// forwarding, used by the router-queue engine).
    pub fn lock_hop(
        &mut self,
        network: &Network,
        channel: ChannelId,
        from: NodeId,
        amount: Amount,
    ) -> Result<(), CoreError> {
        if amount.is_negative() {
            return Err(CoreError::NegativeAmount);
        }
        let side = Self::try_side(network, channel, from)?;
        let st = &mut self.channels[channel.index()];
        if st.available[side] < amount {
            return Err(CoreError::InsufficientFunds {
                channel,
                from,
                available: st.available[side].micros(),
                requested: amount.micros(),
            });
        }
        st.move_to_inflight(side, amount);
        debug_assert!(self.conserves(channel));
        Ok(())
    }

    /// `true` if `from` can currently lock `amount` on `channel`.
    pub fn can_lock_hop(
        &self,
        network: &Network,
        channel: ChannelId,
        from: NodeId,
        amount: Amount,
    ) -> bool {
        let side = Self::side(network, channel, from);
        self.channels[channel.index()].available[side] >= amount
    }

    /// Settles a single previously locked hop: credits `to`'s side.
    ///
    /// Returns [`CoreError::ExcessRelease`] — and changes nothing — if the
    /// settlement exceeds the channel's recorded in-flight funds.
    pub fn settle_hop(
        &mut self,
        network: &Network,
        channel: ChannelId,
        to: NodeId,
        amount: Amount,
    ) -> Result<(), CoreError> {
        if amount.is_negative() {
            return Err(CoreError::NegativeAmount);
        }
        let side = Self::try_side(network, channel, to)?;
        let st = &mut self.channels[channel.index()];
        if st.inflight < amount {
            return Err(CoreError::ExcessRelease {
                channel,
                inflight: st.inflight.micros(),
                requested: amount.micros(),
            });
        }
        st.release_from_inflight(side, amount);
        debug_assert!(self.conserves(channel));
        Ok(())
    }

    /// Refunds a single previously locked hop back to `from`'s side.
    /// Error behaviour matches [`settle_hop`](Self::settle_hop).
    pub fn refund_hop(
        &mut self,
        network: &Network,
        channel: ChannelId,
        from: NodeId,
        amount: Amount,
    ) -> Result<(), CoreError> {
        self.settle_hop(network, channel, from, amount)
    }

    /// Deposits `amount` of fresh on-chain funds on `node`'s side of
    /// `channel` (an on-chain rebalancing/top-up transaction; §5.2.3).
    /// Increases the channel's capacity.
    ///
    /// Unlike the lock/settle/refund family, deposits are not bounded by an
    /// existing escrow, so the additions can genuinely overflow; a deposit
    /// that would is refused with [`CoreError::Overflow`], changing nothing.
    pub fn deposit(
        &mut self,
        network: &Network,
        channel: ChannelId,
        node: NodeId,
        amount: Amount,
    ) -> Result<(), CoreError> {
        if amount.is_negative() {
            return Err(CoreError::NegativeAmount);
        }
        let side = Self::try_side(network, channel, node)?;
        let st = &mut self.channels[channel.index()];
        let overflow = CoreError::Overflow {
            channel,
            op: "deposit",
        };
        let available = st.available[side]
            .checked_add(amount)
            .ok_or(overflow.clone())?;
        let capacity = st.capacity.checked_add(amount).ok_or(overflow)?;
        st.available[side] = available;
        st.capacity = capacity;
        Ok(())
    }

    /// Withdraws up to `amount` from `node`'s side of `channel` back on
    /// chain, returning what was actually withdrawn. Decreases capacity.
    pub fn withdraw(
        &mut self,
        network: &Network,
        channel: ChannelId,
        node: NodeId,
        amount: Amount,
    ) -> Amount {
        assert!(!amount.is_negative());
        let side = Self::side(network, channel, node);
        let st = &mut self.channels[channel.index()];
        // `taken <= available[side] <= capacity` (conservation), so the
        // saturation never engages; it only keeps a bug from wrapping.
        let taken = amount.min(st.available[side]);
        st.available[side] = st.available[side].saturating_sub(taken);
        st.capacity = st.capacity.saturating_sub(taken);
        taken
    }

    /// Current spendable balances `(side_a, side_b)` of `channel`, where
    /// side `a` is the channel's lower-id endpoint.
    pub fn balances(&self, channel: ChannelId) -> (Amount, Amount) {
        let st = &self.channels[channel.index()];
        (st.available[0], st.available[1])
    }

    /// Funds currently in flight on `channel`.
    pub fn inflight(&self, channel: ChannelId) -> Amount {
        self.channels[channel.index()].inflight
    }

    /// Current capacity of `channel` (initial escrow plus net deposits).
    pub fn capacity(&self, channel: ChannelId) -> Amount {
        self.channels[channel.index()].capacity
    }

    /// `true` when `available_a + available_b + inflight == capacity`.
    /// A sum that overflows the micro-token range is reported as
    /// non-conserving rather than wrapping into a false positive.
    pub fn conserves(&self, channel: ChannelId) -> bool {
        let st = &self.channels[channel.index()];
        st.available[0]
            .checked_add(st.available[1])
            .and_then(|s| s.checked_add(st.inflight))
            == Some(st.capacity)
    }

    /// `true` when every channel conserves funds exactly.
    pub fn conserves_all(&self) -> bool {
        (0..self.channels.len()).all(|i| self.conserves(ChannelId(i as u32)))
    }

    /// Mean relative imbalance across channels:
    /// `|available_a − available_b| / capacity`, averaged.
    pub fn mean_imbalance(&self) -> f64 {
        if self.channels.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .channels
            .iter()
            .map(|st| {
                // Both sides are bounded by capacity, so the difference
                // stays in range; saturate instead of wrapping regardless.
                let diff = st.available[0].saturating_sub(st.available[1]).abs();
                diff.ratio_of(st.capacity)
            })
            .sum();
        sum / self.channels.len() as f64
    }

    /// Total funds currently locked in flight across the network.
    pub fn total_inflight(&self) -> Amount {
        self.channels.iter().map(|st| st.inflight).sum()
    }

    /// Total spendable funds across the network (both sides of every
    /// channel).
    pub fn total_available(&self) -> Amount {
        self.channels
            .iter()
            .map(|st| st.available[0].saturating_add(st.available[1]))
            .sum()
    }

    /// Total escrowed capacity across the network (initial escrow plus net
    /// on-chain deposits).
    pub fn total_capacity(&self) -> Amount {
        self.channels.iter().map(|st| st.capacity).sum()
    }

    /// Number of channels tracked by this ledger.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Copies channel `c`'s full state (balances, in-flight, capacity) from
    /// `other`. Used by the sharded engine to assemble the merged final
    /// ledger out of each owner shard's copy.
    pub(crate) fn copy_channel_state_from(&mut self, other: &Ledger, c: ChannelId) {
        self.channels[c.index()] = other.channels[c.index()].clone();
    }

    /// Raw channel state `[capacity, available_a, available_b, inflight]`
    /// in micro-tokens, for checkpointing.
    pub(crate) fn export_channel(&self, c: ChannelId) -> [i64; 4] {
        let st = &self.channels[c.index()];
        [
            st.capacity.micros(),
            st.available[0].micros(),
            st.available[1].micros(),
            st.inflight.micros(),
        ]
    }

    /// Overwrites one channel's raw state with micros captured by
    /// [`export_channel`](Self::export_channel).
    pub(crate) fn restore_channel(&mut self, c: ChannelId, raw: [i64; 4]) {
        self.channels[c.index()] = ChannelState {
            capacity: Amount::from_micros(raw[0]),
            available: [Amount::from_micros(raw[1]), Amount::from_micros(raw[2])],
            inflight: Amount::from_micros(raw[3]),
        };
    }
}

/// A [`BalanceView`] of a ledger bound to its network (needed to resolve
/// which endpoint a node is).
pub struct LedgerView<'a> {
    /// The static topology.
    pub network: &'a Network,
    /// The live ledger.
    pub ledger: &'a Ledger,
}

impl BalanceView for LedgerView<'_> {
    fn available(&self, channel: ChannelId, from: NodeId) -> Amount {
        let side = Ledger::side(self.network, channel, from);
        self.ledger.channels[channel.index()].available[side]
    }

    fn available_dir(&self, channel: ChannelId, from: NodeId, dir: Direction) -> Amount {
        let side = sender_side(dir);
        debug_assert_eq!(Ledger::try_side(self.network, channel, from), Ok(side));
        self.ledger.channels[channel.index()].available[side]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use spider_core::NodeId;

    fn line3() -> Network {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(10))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(2), Amount::from_whole(10))
            .unwrap();
        g
    }

    fn path02(g: &Network) -> Path {
        Path::new(g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap()
    }

    #[test]
    fn lock_settle_moves_funds() {
        let g = line3();
        let mut ledger = Ledger::new(&g);
        let p = path02(&g);
        ledger.lock_path(&g, &p, Amount::from_whole(3)).unwrap();
        let view = LedgerView {
            network: &g,
            ledger: &ledger,
        };
        let c01 = g.channel_between(NodeId(0), NodeId(1)).unwrap().id;
        let c12 = g.channel_between(NodeId(1), NodeId(2)).unwrap().id;
        assert_eq!(view.available(c01, NodeId(0)), Amount::from_whole(2));
        assert_eq!(view.available(c01, NodeId(1)), Amount::from_whole(5));
        assert_eq!(ledger.inflight(c01), Amount::from_whole(3));
        assert!(ledger.conserves_all());

        ledger.settle_path(&g, &p, Amount::from_whole(3)).unwrap();
        let view = LedgerView {
            network: &g,
            ledger: &ledger,
        };
        assert_eq!(view.available(c01, NodeId(1)), Amount::from_whole(8));
        assert_eq!(view.available(c12, NodeId(2)), Amount::from_whole(8));
        assert_eq!(ledger.inflight(c01), Amount::ZERO);
        assert!(ledger.conserves_all());
    }

    #[test]
    fn lock_fails_atomically_on_insufficient_hop() {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(10))
            .unwrap();
        g.add_channel_with_balances(NodeId(1), NodeId(2), Amount::from_whole(1), Amount::ZERO)
            .unwrap();
        let mut ledger = Ledger::new(&g);
        let p = Path::new(&g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        let err = ledger.lock_path(&g, &p, Amount::from_whole(3)).unwrap_err();
        assert!(matches!(err, CoreError::InsufficientFunds { .. }));
        // First hop must NOT have been debited.
        let view = LedgerView {
            network: &g,
            ledger: &ledger,
        };
        let c01 = g.channel_between(NodeId(0), NodeId(1)).unwrap().id;
        assert_eq!(view.available(c01, NodeId(0)), Amount::from_whole(5));
        assert!(ledger.conserves_all());
    }

    #[test]
    fn refund_restores_sender() {
        let g = line3();
        let mut ledger = Ledger::new(&g);
        let p = path02(&g);
        ledger.lock_path(&g, &p, Amount::from_whole(4)).unwrap();
        ledger.refund_path(&g, &p, Amount::from_whole(4)).unwrap();
        let view = LedgerView {
            network: &g,
            ledger: &ledger,
        };
        let c01 = g.channel_between(NodeId(0), NodeId(1)).unwrap().id;
        assert_eq!(view.available(c01, NodeId(0)), Amount::from_whole(5));
        assert_eq!(ledger.total_inflight(), Amount::ZERO);
        assert!(ledger.conserves_all());
    }

    #[test]
    fn deposit_and_withdraw_adjust_capacity() {
        let g = line3();
        let mut ledger = Ledger::new(&g);
        let c01 = g.channel_between(NodeId(0), NodeId(1)).unwrap().id;
        ledger
            .deposit(&g, c01, NodeId(0), Amount::from_whole(5))
            .unwrap();
        assert_eq!(ledger.capacity(c01), Amount::from_whole(15));
        assert!(ledger.conserves_all());
        let taken = ledger.withdraw(&g, c01, NodeId(0), Amount::from_whole(100));
        assert_eq!(taken, Amount::from_whole(10)); // 5 initial + 5 deposited
        assert!(ledger.conserves_all());
    }

    #[test]
    fn mean_imbalance_reflects_skew() {
        let g = line3();
        let mut ledger = Ledger::new(&g);
        assert_eq!(ledger.mean_imbalance(), 0.0);
        let p = path02(&g);
        ledger.lock_path(&g, &p, Amount::from_whole(5)).unwrap();
        ledger.settle_path(&g, &p, Amount::from_whole(5)).unwrap();
        // Both channels fully one-sided now.
        assert!((ledger.mean_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_settles_supported() {
        let g = line3();
        let mut ledger = Ledger::new(&g);
        let p = path02(&g);
        ledger.lock_path(&g, &p, Amount::from_whole(4)).unwrap();
        ledger.settle_path(&g, &p, Amount::from_whole(1)).unwrap();
        ledger.refund_path(&g, &p, Amount::from_whole(3)).unwrap();
        assert_eq!(ledger.total_inflight(), Amount::ZERO);
        assert!(ledger.conserves_all());
    }

    #[test]
    fn excess_release_is_rejected_without_corruption() {
        let g = line3();
        let mut ledger = Ledger::new(&g);
        let p = path02(&g);
        ledger.lock_path(&g, &p, Amount::from_whole(2)).unwrap();
        let before = (
            ledger.balances(g.channels()[0].id),
            ledger.balances(g.channels()[1].id),
            ledger.total_inflight(),
        );

        // Over-settling and over-refunding are both refused in full —
        // no partial hop mutation — and the ledger still conserves.
        let err = ledger
            .settle_path(&g, &p, Amount::from_whole(3))
            .unwrap_err();
        assert!(matches!(err, CoreError::ExcessRelease { .. }));
        let err = ledger
            .refund_path(&g, &p, Amount::from_whole(3))
            .unwrap_err();
        assert!(matches!(err, CoreError::ExcessRelease { .. }));
        let c01 = g.channels()[0].id;
        let err = ledger
            .settle_hop(&g, c01, NodeId(1), Amount::from_whole(3))
            .unwrap_err();
        assert!(matches!(err, CoreError::ExcessRelease { .. }));
        let err = ledger
            .refund_hop(&g, c01, NodeId(0), Amount::from_whole(3))
            .unwrap_err();
        assert!(matches!(err, CoreError::ExcessRelease { .. }));
        let err = ledger
            .settle_path_amounts(&g, &p, &[Amount::from_whole(2), Amount::from_whole(3)])
            .unwrap_err();
        assert!(matches!(err, CoreError::ExcessRelease { .. }));

        assert_eq!(
            before,
            (
                ledger.balances(g.channels()[0].id),
                ledger.balances(g.channels()[1].id),
                ledger.total_inflight(),
            ),
            "failed releases must not move any funds"
        );
        assert!(ledger.conserves_all());

        // The legitimate settle still goes through afterwards.
        ledger.settle_path(&g, &p, Amount::from_whole(2)).unwrap();
        assert_eq!(ledger.total_inflight(), Amount::ZERO);
        assert!(ledger.conserves_all());
    }

    proptest! {
        /// Conservation holds under arbitrary interleavings of lock,
        /// settle, and refund along the two directions of a line network.
        #[test]
        fn prop_conservation_under_random_ops(ops in proptest::collection::vec((0u8..4, 1i64..4), 1..60)) {
            let g = line3();
            let mut ledger = Ledger::new(&g);
            let fwd = path02(&g);
            let rev = Path::new(&g, vec![NodeId(2), NodeId(1), NodeId(0)]).unwrap();
            // Track outstanding locks so settles/refunds stay legal.
            let mut outstanding: Vec<(bool, Amount)> = Vec::new();
            for (op, amt) in ops {
                let amount = Amount::from_whole(amt);
                match op {
                    0 => {
                        if ledger.lock_path(&g, &fwd, amount).is_ok() {
                            outstanding.push((true, amount));
                        }
                    }
                    1 => {
                        if ledger.lock_path(&g, &rev, amount).is_ok() {
                            outstanding.push((false, amount));
                        }
                    }
                    2 => {
                        if let Some((is_fwd, a)) = outstanding.pop() {
                            let p = if is_fwd { &fwd } else { &rev };
                            ledger.settle_path(&g, p, a).unwrap();
                        }
                    }
                    _ => {
                        if let Some((is_fwd, a)) = outstanding.pop() {
                            let p = if is_fwd { &fwd } else { &rev };
                            ledger.refund_path(&g, p, a).unwrap();
                        }
                    }
                }
                prop_assert!(ledger.conserves_all());
            }
        }

        /// Conservation holds — exactly, globally — when random channel
        /// outages and node crashes are interleaved with lock/settle/refund.
        /// An outage or crash forces an immediate refund of every
        /// outstanding unit whose path crosses an affected channel, exactly
        /// as the engines do, and the total escrow never moves.
        #[test]
        fn prop_conservation_under_faults(
            ops in proptest::collection::vec((0u8..7, 1i64..4), 1..80),
        ) {
            use crate::faults::{FaultConfig, FaultEvent, FaultPlan, FaultState};
            let g = line3();
            let mut ledger = Ledger::new(&g);
            let total = ledger.total_capacity();
            let fwd = path02(&g);
            let rev = Path::new(&g, vec![NodeId(2), NodeId(1), NodeId(0)]).unwrap();
            let short = Path::new(&g, vec![NodeId(0), NodeId(1)]).unwrap();
            let plan = FaultPlan::scripted(Vec::new(), FaultConfig::default());
            let mut faults = FaultState::new(&plan, &g);
            // Outstanding units: (path index 0=fwd 1=rev 2=short, amount).
            let mut outstanding: Vec<(u8, Amount)> = Vec::new();
            let paths = [&fwd, &rev, &short];
            let crosses = |p: &Path, newly: &[spider_core::ChannelId]| {
                p.hops().iter().any(|(c, _)| newly.contains(c))
            };
            for (op, amt) in ops {
                let amount = Amount::from_whole(amt);
                match op {
                    0..=2 => {
                        let which = op;
                        let p = paths[which as usize];
                        // Senders refuse paths through downed channels, as
                        // the engines do via FaultView masking.
                        if !faults.path_blocked(p)
                            && ledger.lock_path(&g, p, amount).is_ok()
                        {
                            outstanding.push((which, amount));
                        }
                    }
                    3 => {
                        if let Some((which, a)) = outstanding.pop() {
                            ledger.settle_path(&g, paths[which as usize], a).unwrap();
                        }
                    }
                    4 => {
                        if let Some((which, a)) = outstanding.pop() {
                            ledger.refund_path(&g, paths[which as usize], a).unwrap();
                        }
                    }
                    5 => {
                        // Channel outage (channel picked by amount parity),
                        // followed eventually by recovery; refund every
                        // outstanding unit crossing a newly-down channel.
                        let c = g.channels()[amt as usize % 2].id;
                        let newly = faults.apply(&g, &FaultEvent::ChannelDown(c));
                        let mut kept = Vec::new();
                        for (which, a) in outstanding.drain(..) {
                            if crosses(paths[which as usize], &newly) {
                                ledger
                                    .refund_path(&g, paths[which as usize], a)
                                    .unwrap();
                            } else {
                                kept.push((which, a));
                            }
                        }
                        outstanding = kept;
                        faults.apply(&g, &FaultEvent::ChannelUp(c));
                    }
                    _ => {
                        // Node crash takes all incident channels down.
                        let n = NodeId(amt as u32 % 3);
                        let newly = faults.apply(&g, &FaultEvent::NodeDown(n));
                        let mut kept = Vec::new();
                        for (which, a) in outstanding.drain(..) {
                            if crosses(paths[which as usize], &newly) {
                                ledger
                                    .refund_path(&g, paths[which as usize], a)
                                    .unwrap();
                            } else {
                                kept.push((which, a));
                            }
                        }
                        outstanding = kept;
                        faults.apply(&g, &FaultEvent::NodeUp(n));
                    }
                }
                prop_assert!(ledger.conserves_all());
                prop_assert_eq!(
                    ledger.total_available() + ledger.total_inflight(),
                    total,
                    "global escrow must never move under faults"
                );
            }
            // Drain everything; the network must return to full liquidity.
            while let Some((which, a)) = outstanding.pop() {
                ledger.refund_path(&g, paths[which as usize], a).unwrap();
            }
            prop_assert_eq!(ledger.total_inflight(), Amount::ZERO);
            prop_assert_eq!(ledger.total_available(), total);
        }

        /// The ledger auditor finds no violations under arbitrary
        /// interleavings of lock/settle/refund plus on-chain deposits and
        /// withdrawals, as long as the on-chain moves are reported to it.
        /// Extends `prop_conservation_under_random_ops` with the capacity-
        /// changing operations and the exact global-sum invariant.
        #[test]
        fn prop_audit_is_clean_under_random_ops(ops in proptest::collection::vec((0u8..6, 1i64..4), 1..60)) {
            let g = line3();
            let mut ledger = Ledger::new(&g);
            let mut audit = crate::audit::LedgerAudit::new(&ledger);
            let fwd = path02(&g);
            let rev = Path::new(&g, vec![NodeId(2), NodeId(1), NodeId(0)]).unwrap();
            let c01 = g.channel_between(NodeId(0), NodeId(1)).unwrap().id;
            let mut outstanding: Vec<(bool, Amount)> = Vec::new();
            let mut time = 0.0;
            for (op, amt) in ops {
                let amount = Amount::from_whole(amt);
                let event = match op {
                    0 => {
                        if ledger.lock_path(&g, &fwd, amount).is_ok() {
                            outstanding.push((true, amount));
                        }
                        "lock"
                    }
                    1 => {
                        if ledger.lock_path(&g, &rev, amount).is_ok() {
                            outstanding.push((false, amount));
                        }
                        "lock"
                    }
                    2 => {
                        if let Some((is_fwd, a)) = outstanding.pop() {
                            ledger
                                .settle_path(&g, if is_fwd { &fwd } else { &rev }, a)
                                .unwrap();
                        }
                        "settle"
                    }
                    3 => {
                        if let Some((is_fwd, a)) = outstanding.pop() {
                            ledger
                                .refund_path(&g, if is_fwd { &fwd } else { &rev }, a)
                                .unwrap();
                        }
                        "refund"
                    }
                    4 => {
                        ledger.deposit(&g, c01, NodeId(amt as u32 % 2), amount).unwrap();
                        audit.on_deposit(amount);
                        "deposit"
                    }
                    _ => {
                        let taken = ledger.withdraw(&g, c01, NodeId(amt as u32 % 2), amount);
                        audit.on_withdraw(taken);
                        "withdraw"
                    }
                };
                time += 0.5;
                audit.check(&ledger, time, event);
                prop_assert!(
                    audit.violations().is_empty(),
                    "violations after {event}: {:?}",
                    audit.violations()
                );
            }
            prop_assert!(audit.checks() > 0);
            prop_assert!(audit.suppressed() == 0);
        }
    }
}
