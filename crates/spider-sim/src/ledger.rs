//! The live channel ledger: spendable balances plus in-flight (HTLC-locked)
//! funds.
//!
//! Sending `m` tokens along a path locks `m` on the sender side of every hop
//! (the funds are "pending" until the receiver releases the hash-lock key,
//! §4.2 / Fig. 3). Settlement `Δ` seconds later credits the receiving side
//! of every hop. Conservation is exact: for every channel,
//! `available_a + available_b + inflight == capacity` at all times.

use spider_core::{Amount, BalanceView, ChannelId, CoreError, Network, NodeId, Path};

/// Live balance state for one channel.
#[derive(Clone, Debug)]
struct ChannelState {
    capacity: Amount,
    /// Spendable by endpoint `a` / endpoint `b`.
    available: [Amount; 2],
    /// Funds locked in flight (sum over both directions).
    inflight: Amount,
}

/// The live ledger for a whole network.
///
/// Cloneable so experiments can snapshot and restart from the initial state.
#[derive(Clone, Debug)]
pub struct Ledger {
    channels: Vec<ChannelState>,
}

impl Ledger {
    /// Initializes the ledger from the network's initial balances.
    pub fn new(network: &Network) -> Self {
        let channels = network
            .channels()
            .iter()
            .map(|ch| ChannelState {
                capacity: ch.capacity(),
                available: [ch.balance_a, ch.balance_b],
                inflight: Amount::ZERO,
            })
            .collect();
        Ledger { channels }
    }

    fn side(network: &Network, channel: ChannelId, node: NodeId) -> usize {
        let ch = network.channel(channel);
        if node == ch.a {
            0
        } else if node == ch.b {
            1
        } else {
            panic!("{node} is not an endpoint of {channel}")
        }
    }

    /// Locks `amount` on the sender side of every hop of `path`, returning
    /// an error (and changing nothing) if any hop lacks funds.
    pub fn lock_path(
        &mut self,
        network: &Network,
        path: &Path,
        amount: Amount,
    ) -> Result<(), CoreError> {
        if amount.is_negative() {
            return Err(CoreError::NegativeAmount);
        }
        // Validation pass: because a trail never repeats a channel, per-hop
        // checks cannot double-count within one path.
        for (i, &(c, _)) in path.hops().iter().enumerate() {
            let from = path.nodes()[i];
            let side = Self::side(network, c, from);
            let have = self.channels[c.index()].available[side];
            if have < amount {
                return Err(CoreError::InsufficientFunds {
                    channel: c,
                    from,
                    available: have.micros(),
                    requested: amount.micros(),
                });
            }
        }
        // Commit pass.
        for (i, &(c, _)) in path.hops().iter().enumerate() {
            let from = path.nodes()[i];
            let side = Self::side(network, c, from);
            let st = &mut self.channels[c.index()];
            st.available[side] -= amount;
            st.inflight += amount;
            debug_assert!(self.conserves(c));
        }
        Ok(())
    }

    /// Settles a previously locked transfer: credits the receiving side of
    /// every hop and releases the in-flight funds.
    ///
    /// # Panics
    /// Panics (in debug builds) if settlement exceeds recorded in-flight
    /// funds — that indicates a double-settle bug in the caller.
    pub fn settle_path(&mut self, network: &Network, path: &Path, amount: Amount) {
        for (i, &(c, _)) in path.hops().iter().enumerate() {
            let to = path.nodes()[i + 1];
            let side = Self::side(network, c, to);
            let st = &mut self.channels[c.index()];
            debug_assert!(st.inflight >= amount, "settle exceeds inflight on {c}");
            st.available[side] += amount;
            st.inflight -= amount;
            debug_assert!(self.conserves(c));
        }
    }

    /// Cancels a previously locked transfer: refunds the sender side of
    /// every hop (an expired/failed HTLC).
    pub fn refund_path(&mut self, network: &Network, path: &Path, amount: Amount) {
        for (i, &(c, _)) in path.hops().iter().enumerate() {
            let from = path.nodes()[i];
            let side = Self::side(network, c, from);
            let st = &mut self.channels[c.index()];
            debug_assert!(st.inflight >= amount, "refund exceeds inflight on {c}");
            st.available[side] += amount;
            st.inflight -= amount;
            debug_assert!(self.conserves(c));
        }
    }

    /// Locks a *per-hop* amount along `path` (`amounts[i]` on hop `i`) —
    /// the fee-bearing variant of [`lock_path`](Self::lock_path), where
    /// upstream hops carry the delivered value plus downstream fees.
    /// All-or-nothing like `lock_path`.
    pub fn lock_path_amounts(
        &mut self,
        network: &Network,
        path: &Path,
        amounts: &[Amount],
    ) -> Result<(), CoreError> {
        assert_eq!(amounts.len(), path.hops().len(), "one amount per hop");
        for (i, &(c, _)) in path.hops().iter().enumerate() {
            if amounts[i].is_negative() {
                return Err(CoreError::NegativeAmount);
            }
            let from = path.nodes()[i];
            let side = Self::side(network, c, from);
            let have = self.channels[c.index()].available[side];
            if have < amounts[i] {
                return Err(CoreError::InsufficientFunds {
                    channel: c,
                    from,
                    available: have.micros(),
                    requested: amounts[i].micros(),
                });
            }
        }
        for (i, &(c, _)) in path.hops().iter().enumerate() {
            let from = path.nodes()[i];
            let side = Self::side(network, c, from);
            let st = &mut self.channels[c.index()];
            st.available[side] -= amounts[i];
            st.inflight += amounts[i];
            debug_assert!(self.conserves(c));
        }
        Ok(())
    }

    /// Settles a per-hop-amount transfer: hop `i`'s receiver is credited
    /// `amounts[i]` (so each router keeps its fee margin).
    pub fn settle_path_amounts(&mut self, network: &Network, path: &Path, amounts: &[Amount]) {
        assert_eq!(amounts.len(), path.hops().len(), "one amount per hop");
        for (i, &(c, _)) in path.hops().iter().enumerate() {
            let to = path.nodes()[i + 1];
            let side = Self::side(network, c, to);
            let st = &mut self.channels[c.index()];
            debug_assert!(st.inflight >= amounts[i], "settle exceeds inflight on {c}");
            st.available[side] += amounts[i];
            st.inflight -= amounts[i];
            debug_assert!(self.conserves(c));
        }
    }

    /// Refunds a per-hop-amount transfer back to each hop's sender.
    pub fn refund_path_amounts(&mut self, network: &Network, path: &Path, amounts: &[Amount]) {
        assert_eq!(amounts.len(), path.hops().len(), "one amount per hop");
        for (i, &(c, _)) in path.hops().iter().enumerate() {
            let from = path.nodes()[i];
            let side = Self::side(network, c, from);
            let st = &mut self.channels[c.index()];
            debug_assert!(st.inflight >= amounts[i], "refund exceeds inflight on {c}");
            st.available[side] += amounts[i];
            st.inflight -= amounts[i];
            debug_assert!(self.conserves(c));
        }
    }

    /// Locks `amount` on `from`'s side of a single channel (hop-by-hop
    /// forwarding, used by the router-queue engine).
    pub fn lock_hop(
        &mut self,
        network: &Network,
        channel: ChannelId,
        from: NodeId,
        amount: Amount,
    ) -> Result<(), CoreError> {
        if amount.is_negative() {
            return Err(CoreError::NegativeAmount);
        }
        let side = Self::side(network, channel, from);
        let st = &mut self.channels[channel.index()];
        if st.available[side] < amount {
            return Err(CoreError::InsufficientFunds {
                channel,
                from,
                available: st.available[side].micros(),
                requested: amount.micros(),
            });
        }
        st.available[side] -= amount;
        st.inflight += amount;
        debug_assert!(self.conserves(channel));
        Ok(())
    }

    /// `true` if `from` can currently lock `amount` on `channel`.
    pub fn can_lock_hop(
        &self,
        network: &Network,
        channel: ChannelId,
        from: NodeId,
        amount: Amount,
    ) -> bool {
        let side = Self::side(network, channel, from);
        self.channels[channel.index()].available[side] >= amount
    }

    /// Settles a single previously locked hop: credits `to`'s side.
    pub fn settle_hop(
        &mut self,
        network: &Network,
        channel: ChannelId,
        to: NodeId,
        amount: Amount,
    ) {
        let side = Self::side(network, channel, to);
        let st = &mut self.channels[channel.index()];
        debug_assert!(
            st.inflight >= amount,
            "settle exceeds inflight on {channel}"
        );
        st.available[side] += amount;
        st.inflight -= amount;
        debug_assert!(self.conserves(channel));
    }

    /// Refunds a single previously locked hop back to `from`'s side.
    pub fn refund_hop(
        &mut self,
        network: &Network,
        channel: ChannelId,
        from: NodeId,
        amount: Amount,
    ) {
        self.settle_hop(network, channel, from, amount);
    }

    /// Deposits `amount` of fresh on-chain funds on `node`'s side of
    /// `channel` (an on-chain rebalancing/top-up transaction; §5.2.3).
    /// Increases the channel's capacity.
    pub fn deposit(&mut self, network: &Network, channel: ChannelId, node: NodeId, amount: Amount) {
        assert!(!amount.is_negative());
        let side = Self::side(network, channel, node);
        let st = &mut self.channels[channel.index()];
        st.available[side] += amount;
        st.capacity += amount;
    }

    /// Withdraws up to `amount` from `node`'s side of `channel` back on
    /// chain, returning what was actually withdrawn. Decreases capacity.
    pub fn withdraw(
        &mut self,
        network: &Network,
        channel: ChannelId,
        node: NodeId,
        amount: Amount,
    ) -> Amount {
        assert!(!amount.is_negative());
        let side = Self::side(network, channel, node);
        let st = &mut self.channels[channel.index()];
        let taken = amount.min(st.available[side]);
        st.available[side] -= taken;
        st.capacity -= taken;
        taken
    }

    /// Current spendable balances `(side_a, side_b)` of `channel`, where
    /// side `a` is the channel's lower-id endpoint.
    pub fn balances(&self, channel: ChannelId) -> (Amount, Amount) {
        let st = &self.channels[channel.index()];
        (st.available[0], st.available[1])
    }

    /// Funds currently in flight on `channel`.
    pub fn inflight(&self, channel: ChannelId) -> Amount {
        self.channels[channel.index()].inflight
    }

    /// Current capacity of `channel` (initial escrow plus net deposits).
    pub fn capacity(&self, channel: ChannelId) -> Amount {
        self.channels[channel.index()].capacity
    }

    /// `true` when `available_a + available_b + inflight == capacity`.
    pub fn conserves(&self, channel: ChannelId) -> bool {
        let st = &self.channels[channel.index()];
        st.available[0] + st.available[1] + st.inflight == st.capacity
    }

    /// `true` when every channel conserves funds exactly.
    pub fn conserves_all(&self) -> bool {
        (0..self.channels.len()).all(|i| self.conserves(ChannelId(i as u32)))
    }

    /// Mean relative imbalance across channels:
    /// `|available_a − available_b| / capacity`, averaged.
    pub fn mean_imbalance(&self) -> f64 {
        if self.channels.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .channels
            .iter()
            .map(|st| {
                let diff = (st.available[0] - st.available[1]).abs();
                diff.ratio_of(st.capacity)
            })
            .sum();
        sum / self.channels.len() as f64
    }

    /// Total funds currently locked in flight across the network.
    pub fn total_inflight(&self) -> Amount {
        self.channels.iter().map(|st| st.inflight).sum()
    }

    /// Total spendable funds across the network (both sides of every
    /// channel).
    pub fn total_available(&self) -> Amount {
        self.channels
            .iter()
            .map(|st| st.available[0] + st.available[1])
            .sum()
    }

    /// Total escrowed capacity across the network (initial escrow plus net
    /// on-chain deposits).
    pub fn total_capacity(&self) -> Amount {
        self.channels.iter().map(|st| st.capacity).sum()
    }

    /// Number of channels tracked by this ledger.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }
}

/// A [`BalanceView`] of a ledger bound to its network (needed to resolve
/// which endpoint a node is).
pub struct LedgerView<'a> {
    /// The static topology.
    pub network: &'a Network,
    /// The live ledger.
    pub ledger: &'a Ledger,
}

impl BalanceView for LedgerView<'_> {
    fn available(&self, channel: ChannelId, from: NodeId) -> Amount {
        let side = Ledger::side(self.network, channel, from);
        self.ledger.channels[channel.index()].available[side]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use spider_core::NodeId;

    fn line3() -> Network {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(10))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(2), Amount::from_whole(10))
            .unwrap();
        g
    }

    fn path02(g: &Network) -> Path {
        Path::new(g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap()
    }

    #[test]
    fn lock_settle_moves_funds() {
        let g = line3();
        let mut ledger = Ledger::new(&g);
        let p = path02(&g);
        ledger.lock_path(&g, &p, Amount::from_whole(3)).unwrap();
        let view = LedgerView {
            network: &g,
            ledger: &ledger,
        };
        let c01 = g.channel_between(NodeId(0), NodeId(1)).unwrap().id;
        let c12 = g.channel_between(NodeId(1), NodeId(2)).unwrap().id;
        assert_eq!(view.available(c01, NodeId(0)), Amount::from_whole(2));
        assert_eq!(view.available(c01, NodeId(1)), Amount::from_whole(5));
        assert_eq!(ledger.inflight(c01), Amount::from_whole(3));
        assert!(ledger.conserves_all());

        ledger.settle_path(&g, &p, Amount::from_whole(3));
        let view = LedgerView {
            network: &g,
            ledger: &ledger,
        };
        assert_eq!(view.available(c01, NodeId(1)), Amount::from_whole(8));
        assert_eq!(view.available(c12, NodeId(2)), Amount::from_whole(8));
        assert_eq!(ledger.inflight(c01), Amount::ZERO);
        assert!(ledger.conserves_all());
    }

    #[test]
    fn lock_fails_atomically_on_insufficient_hop() {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(10))
            .unwrap();
        g.add_channel_with_balances(NodeId(1), NodeId(2), Amount::from_whole(1), Amount::ZERO)
            .unwrap();
        let mut ledger = Ledger::new(&g);
        let p = Path::new(&g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        let err = ledger.lock_path(&g, &p, Amount::from_whole(3)).unwrap_err();
        assert!(matches!(err, CoreError::InsufficientFunds { .. }));
        // First hop must NOT have been debited.
        let view = LedgerView {
            network: &g,
            ledger: &ledger,
        };
        let c01 = g.channel_between(NodeId(0), NodeId(1)).unwrap().id;
        assert_eq!(view.available(c01, NodeId(0)), Amount::from_whole(5));
        assert!(ledger.conserves_all());
    }

    #[test]
    fn refund_restores_sender() {
        let g = line3();
        let mut ledger = Ledger::new(&g);
        let p = path02(&g);
        ledger.lock_path(&g, &p, Amount::from_whole(4)).unwrap();
        ledger.refund_path(&g, &p, Amount::from_whole(4));
        let view = LedgerView {
            network: &g,
            ledger: &ledger,
        };
        let c01 = g.channel_between(NodeId(0), NodeId(1)).unwrap().id;
        assert_eq!(view.available(c01, NodeId(0)), Amount::from_whole(5));
        assert_eq!(ledger.total_inflight(), Amount::ZERO);
        assert!(ledger.conserves_all());
    }

    #[test]
    fn deposit_and_withdraw_adjust_capacity() {
        let g = line3();
        let mut ledger = Ledger::new(&g);
        let c01 = g.channel_between(NodeId(0), NodeId(1)).unwrap().id;
        ledger.deposit(&g, c01, NodeId(0), Amount::from_whole(5));
        assert_eq!(ledger.capacity(c01), Amount::from_whole(15));
        assert!(ledger.conserves_all());
        let taken = ledger.withdraw(&g, c01, NodeId(0), Amount::from_whole(100));
        assert_eq!(taken, Amount::from_whole(10)); // 5 initial + 5 deposited
        assert!(ledger.conserves_all());
    }

    #[test]
    fn mean_imbalance_reflects_skew() {
        let g = line3();
        let mut ledger = Ledger::new(&g);
        assert_eq!(ledger.mean_imbalance(), 0.0);
        let p = path02(&g);
        ledger.lock_path(&g, &p, Amount::from_whole(5)).unwrap();
        ledger.settle_path(&g, &p, Amount::from_whole(5));
        // Both channels fully one-sided now.
        assert!((ledger.mean_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_settles_supported() {
        let g = line3();
        let mut ledger = Ledger::new(&g);
        let p = path02(&g);
        ledger.lock_path(&g, &p, Amount::from_whole(4)).unwrap();
        ledger.settle_path(&g, &p, Amount::from_whole(1));
        ledger.refund_path(&g, &p, Amount::from_whole(3));
        assert_eq!(ledger.total_inflight(), Amount::ZERO);
        assert!(ledger.conserves_all());
    }

    proptest! {
        /// Conservation holds under arbitrary interleavings of lock,
        /// settle, and refund along the two directions of a line network.
        #[test]
        fn prop_conservation_under_random_ops(ops in proptest::collection::vec((0u8..4, 1i64..4), 1..60)) {
            let g = line3();
            let mut ledger = Ledger::new(&g);
            let fwd = path02(&g);
            let rev = Path::new(&g, vec![NodeId(2), NodeId(1), NodeId(0)]).unwrap();
            // Track outstanding locks so settles/refunds stay legal.
            let mut outstanding: Vec<(bool, Amount)> = Vec::new();
            for (op, amt) in ops {
                let amount = Amount::from_whole(amt);
                match op {
                    0 => {
                        if ledger.lock_path(&g, &fwd, amount).is_ok() {
                            outstanding.push((true, amount));
                        }
                    }
                    1 => {
                        if ledger.lock_path(&g, &rev, amount).is_ok() {
                            outstanding.push((false, amount));
                        }
                    }
                    2 => {
                        if let Some((is_fwd, a)) = outstanding.pop() {
                            let p = if is_fwd { &fwd } else { &rev };
                            ledger.settle_path(&g, p, a);
                        }
                    }
                    _ => {
                        if let Some((is_fwd, a)) = outstanding.pop() {
                            let p = if is_fwd { &fwd } else { &rev };
                            ledger.refund_path(&g, p, a);
                        }
                    }
                }
                prop_assert!(ledger.conserves_all());
            }
        }

        /// The ledger auditor finds no violations under arbitrary
        /// interleavings of lock/settle/refund plus on-chain deposits and
        /// withdrawals, as long as the on-chain moves are reported to it.
        /// Extends `prop_conservation_under_random_ops` with the capacity-
        /// changing operations and the exact global-sum invariant.
        #[test]
        fn prop_audit_is_clean_under_random_ops(ops in proptest::collection::vec((0u8..6, 1i64..4), 1..60)) {
            let g = line3();
            let mut ledger = Ledger::new(&g);
            let mut audit = crate::audit::LedgerAudit::new(&ledger);
            let fwd = path02(&g);
            let rev = Path::new(&g, vec![NodeId(2), NodeId(1), NodeId(0)]).unwrap();
            let c01 = g.channel_between(NodeId(0), NodeId(1)).unwrap().id;
            let mut outstanding: Vec<(bool, Amount)> = Vec::new();
            let mut time = 0.0;
            for (op, amt) in ops {
                let amount = Amount::from_whole(amt);
                let event = match op {
                    0 => {
                        if ledger.lock_path(&g, &fwd, amount).is_ok() {
                            outstanding.push((true, amount));
                        }
                        "lock"
                    }
                    1 => {
                        if ledger.lock_path(&g, &rev, amount).is_ok() {
                            outstanding.push((false, amount));
                        }
                        "lock"
                    }
                    2 => {
                        if let Some((is_fwd, a)) = outstanding.pop() {
                            ledger.settle_path(&g, if is_fwd { &fwd } else { &rev }, a);
                        }
                        "settle"
                    }
                    3 => {
                        if let Some((is_fwd, a)) = outstanding.pop() {
                            ledger.refund_path(&g, if is_fwd { &fwd } else { &rev }, a);
                        }
                        "refund"
                    }
                    4 => {
                        ledger.deposit(&g, c01, NodeId(amt as u32 % 2), amount);
                        audit.on_deposit(amount);
                        "deposit"
                    }
                    _ => {
                        let taken = ledger.withdraw(&g, c01, NodeId(amt as u32 % 2), amount);
                        audit.on_withdraw(taken);
                        "withdraw"
                    }
                };
                time += 0.5;
                audit.check(&ledger, time, event);
                prop_assert!(
                    audit.violations().is_empty(),
                    "violations after {event}: {:?}",
                    audit.violations()
                );
            }
            prop_assert!(audit.checks() > 0);
            prop_assert!(audit.suppressed() == 0);
        }
    }
}
