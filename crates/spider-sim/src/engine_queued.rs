//! Hop-by-hop transport with in-network router queues (Fig. 3 / §4.2).
//!
//! The paper's architecture has routers *queue* transaction units when a
//! payment channel temporarily lacks funds and forward them as settlements
//! replenish the channel — but its own evaluation "leave\[s\] implementing
//! in-network queues … to future work". This module implements that
//! architecture:
//!
//! - a unit is admitted at the source as soon as its *first* hop can be
//!   funded (downstream hops may be dry right now);
//! - at every router the unit either locks the next hop immediately or
//!   waits in that channel direction's queue;
//! - every settlement that credits a channel direction drains that
//!   direction's queue in policy order (FIFO, smallest-unit-first, or
//!   earliest-deadline-first — §4.2's service classes);
//! - a unit that outlives its payment's deadline while queued is dropped
//!   and its upstream locks refunded (the sender "withholds the key",
//!   §4.1).
//!
//! Compared to the source-queued engine in [`crate::engine`], router queues
//! admit optimistically and absorb transient imbalance in the network
//! instead of at the sender.

use crate::audit::AuditViolation;
use crate::engine::{
    dec_fault_event, dec_path, dec_payment, enc_fault_event, enc_path, enc_payment, record_release,
    sample_network,
};
use crate::events::EventQueue;
use crate::faults::{Blacklist, FaultEvent, FaultPlan, FaultState, FaultView};
use crate::ledger::Ledger;
use crate::metrics::SimReport;
use crate::payment::{PaymentState, PaymentStatus};
use crate::rebalancer::RebalanceStats;
use crate::scheduler::SchedulePolicy;
use crate::snapshot::{self, CheckpointSpec, SnapshotError};
use serde::{Deserialize, Serialize};
use spider_core::{crc32, Amount, ChannelId, Dec, Direction, Enc, Network, Path};
use spider_routing::{path_bottleneck, PathCache, PathStrategy};
use spider_telemetry::{Histogram, NetworkSample, Phase, Telemetry, TraceEvent};
use spider_workload::Transaction;
use std::collections::VecDeque;

/// Queue service order at routers (§4.2: "prioritize payments based on
/// size, deadline, or routing fees").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueuePolicy {
    /// First come, first served.
    #[default]
    Fifo,
    /// Smallest unit first (cheap to service, frees head-of-line).
    SmallestFirst,
    /// Earliest payment deadline first.
    EarliestDeadline,
}

/// Configuration for the router-queue engine.
#[derive(Clone, Debug)]
pub struct QueuedConfig {
    /// Hard end of the measurement window (seconds).
    pub end_time: f64,
    /// Per-hop propagation/processing delay (seconds).
    pub hop_delay: f64,
    /// End-to-end confirmation delay Δ before funds settle (seconds).
    pub delta: f64,
    /// Maximum transaction unit.
    pub mtu: Amount,
    /// Source scheduler poll interval (seconds).
    pub poll_interval: f64,
    /// Per-payment deadline window (seconds after arrival).
    pub deadline: f64,
    /// Source-side service order for pending payments.
    pub source_policy: SchedulePolicy,
    /// Router-side queue service order.
    pub queue_policy: QueuePolicy,
    /// Candidate paths per pair.
    pub num_paths: usize,
    /// Hard cap per channel-direction queue; beyond it units are dropped
    /// (and refunded) on arrival.
    pub max_queue_len: usize,
    /// Telemetry handle (disabled by default). Channel samples — including
    /// real router-queue depths — piggyback on scheduler ticks, so enabling
    /// telemetry never changes the event order.
    pub telemetry: Telemetry,
    /// Deterministic fault schedule (outages / node churn). Units whose
    /// locked prefix crosses a newly-downed channel are dropped and
    /// refunded; queued units simply wait for recovery (router queues
    /// absorb outages) until their payment's deadline.
    pub faults: Option<FaultPlan>,
}

impl QueuedConfig {
    /// Defaults mirroring [`crate::SimConfig::new`] plus queueing knobs.
    pub fn new(end_time: f64) -> Self {
        QueuedConfig {
            end_time,
            hop_delay: 0.05,
            delta: 0.5,
            mtu: Amount::from_whole(10),
            poll_interval: 0.1,
            deadline: 5.0,
            source_policy: SchedulePolicy::Srpt,
            queue_policy: QueuePolicy::Fifo,
            num_paths: 4,
            max_queue_len: 4_096,
            telemetry: Telemetry::disabled(),
            faults: None,
        }
    }
}

/// Router-queue statistics for a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Units that ever waited in a router queue.
    pub units_queued: usize,
    /// Units dropped from queues (deadline or overflow).
    pub units_dropped: usize,
    /// Largest queue length observed on any channel direction.
    pub max_queue_len: usize,
    /// Mean time units spent waiting in queues (seconds, over dequeues).
    pub mean_wait: f64,
}

/// Result of a router-queue run: the standard report plus queue statistics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QueuedReport {
    /// The standard metrics.
    pub report: SimReport,
    /// Router-queue behaviour.
    pub queues: QueueStats,
}

#[derive(Clone, Debug)]
struct UnitState {
    payment: usize,
    amount: Amount,
    path: std::sync::Arc<Path>,
    /// Hops 0..locked are locked; the unit currently sits at
    /// `path.nodes()[locked]`.
    locked: usize,
    /// When the unit entered its current queue (NaN when not queued).
    queued_at: f64,
    dropped: bool,
}

enum Event {
    Arrival(usize),
    Tick,
    /// Unit finished traversing its most recently locked hop.
    HopArrive {
        unit: usize,
    },
    /// The receiver released the key; settle every locked hop.
    SettleUnit {
        unit: usize,
    },
    /// A scheduled fault (outage / recovery / node churn) fires.
    Fault(FaultEvent),
}

/// Runs the router-queue transport over `transactions`.
///
/// Routing is waterfilling-style over `num_paths` edge-disjoint shortest
/// paths, but a unit is admitted when its *first hop* can be funded.
pub fn run_queued(
    network: &Network,
    transactions: &[Transaction],
    config: &QueuedConfig,
) -> QueuedReport {
    match run_queued_inner(network, transactions, config, None, None) {
        Ok(out) => out,
        // No checkpoint spec and no resume state: no snapshot I/O happens,
        // so no snapshot error can arise.
        // spider-lint: allow(panic-reachability) — infallible wrapper; the Err arm is statically dead
        Err(e) => unreachable!("plain run cannot fail with a snapshot error: {e}"),
    }
}

/// Runs the router-queue transport, writing a crash-safe snapshot into
/// `ckpt.dir` every `ckpt.every` scheduler ticks.
pub fn run_queued_checkpointed(
    network: &Network,
    transactions: &[Transaction],
    config: &QueuedConfig,
    ckpt: &CheckpointSpec,
) -> Result<QueuedReport, SnapshotError> {
    run_queued_inner(network, transactions, config, None, Some(ckpt))
}

/// Resumes a router-queue run from a snapshot written by
/// [`run_queued_checkpointed`] and carries it to completion, optionally
/// continuing to checkpoint. The completed run is byte-identical to an
/// uninterrupted one.
pub fn resume_queued(
    network: &Network,
    transactions: &[Transaction],
    config: &QueuedConfig,
    snapshot_path: &std::path::Path,
    ckpt: Option<&CheckpointSpec>,
) -> Result<QueuedReport, SnapshotError> {
    let snap = snapshot::read_snapshot(snapshot_path)?;
    let fp = fingerprint_queued(network, transactions, config);
    snap.check(snapshot::ENGINE_QUEUED, fp)?;
    let state = decode_queued_core(snap.section(snapshot::SEC_CORE)?, network)?;
    let tel_state =
        snapshot::decode_telemetry(snap.section_opt(snapshot::SEC_TELEMETRY).unwrap_or(&[]))?;
    if let Some(ts) = tel_state {
        config
            .telemetry
            .restore_from_state(ts)
            .map_err(|e| SnapshotError::Unsupported {
                what: format!("telemetry restore: {e}"),
            })?;
    } else if config.telemetry.is_enabled() {
        return Err(SnapshotError::Corrupt {
            what: "snapshot lacks telemetry state for an enabled handle".to_string(),
        });
    }
    run_queued_inner(network, transactions, config, Some(state), ckpt)
}

#[allow(clippy::too_many_lines)]
fn run_queued_inner(
    network: &Network,
    transactions: &[Transaction],
    config: &QueuedConfig,
    resume: Option<QueuedResume>,
    ckpt: Option<&CheckpointSpec>,
) -> Result<QueuedReport, SnapshotError> {
    assert!(config.hop_delay > 0.0 && config.delta > 0.0 && config.poll_interval > 0.0);
    assert!(config.mtu.is_positive());
    assert!(config.num_paths >= 1);
    let fp = if ckpt.is_some() {
        fingerprint_queued(network, transactions, config)
    } else {
        0
    };

    let mut ledger = Ledger::new(network);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut payments: Vec<PaymentState> = Vec::new();
    let mut pending: Vec<usize> = Vec::new();
    let mut units: Vec<UnitState> = Vec::new();
    let mut paths = PathCache::new(PathStrategy::EdgeDisjoint(config.num_paths));

    // One queue per (channel, direction).
    let nq = network.num_channels();
    let mut router_queues: Vec<[VecDeque<usize>; 2]> = (0..nq)
        .map(|_| [VecDeque::new(), VecDeque::new()])
        .collect();
    let slot = |d: Direction| match d {
        Direction::AtoB => 0usize,
        Direction::BtoA => 1usize,
    };

    let mut stats = QueueStats::default();
    let mut total_wait = 0.0f64;
    let mut dequeues = 0usize;
    let mut units_sent: u64 = 0;

    let mut faults: Option<FaultState> = config
        .faults
        .as_ref()
        .map(|plan| FaultState::new(plan, network));
    // This engine has no sender blacklist (routers absorb outages in their
    // queues); an always-empty blacklist satisfies the masked view.
    let blacklist = Blacklist::new(nq);
    let mut release_violations: Vec<AuditViolation> = Vec::new();

    let tel = &config.telemetry;
    let mut network_series: Vec<NetworkSample> = Vec::new();
    // Sampling piggybacks on Tick events; see `sample_network`.
    let mut next_sample = tel.sample_interval().unwrap_or(f64::INFINITY);

    let mut ticks: u64 = 0;
    if let Some(st) = resume {
        // Every local above is overwritten from the snapshot; the event
        // queue is restored wholesale (with original sequence numbers), so
        // none of the initial pushes happen here.
        ticks = st.ticks;
        for (i, raw) in st.channels.into_iter().enumerate() {
            ledger.restore_channel(ChannelId::from(i), raw);
        }
        for (t, seq, event) in st.queue_entries {
            queue.push_with_seq(t, seq, event);
        }
        queue.set_next_seq(st.queue_next_seq);
        payments = st.payments;
        pending = st.pending;
        if let Some(snap) = st.faults {
            let fs = faults.as_mut().ok_or_else(|| SnapshotError::Corrupt {
                what: "snapshot has fault state but config has no fault plan".to_string(),
            })?;
            fs.restore_state(snap)
                .map_err(|what| SnapshotError::Corrupt { what })?;
        } else if faults.is_some() {
            return Err(SnapshotError::Corrupt {
                what: "config has a fault plan but snapshot has no fault state".to_string(),
            });
        }
        units = st.units;
        paths
            .restore(network, &st.path_cache)
            .map_err(|e| SnapshotError::Corrupt {
                what: format!("path cache: {e}"),
            })?;
        if st.router_queues.len() != nq {
            return Err(SnapshotError::Corrupt {
                what: format!(
                    "snapshot has {} router queues, network has {nq} channels",
                    st.router_queues.len()
                ),
            });
        }
        router_queues = st
            .router_queues
            .into_iter()
            .map(|[a, b]| [VecDeque::from(a), VecDeque::from(b)])
            .collect();
        stats = st.stats;
        total_wait = st.total_wait;
        dequeues = st.dequeues;
        units_sent = st.units_sent;
        release_violations = st.release_violations;
        network_series = st.network_series;
        next_sample = st.next_sample;
    } else {
        for (i, tx) in transactions.iter().enumerate() {
            if tx.arrival <= config.end_time {
                queue.push(tx.arrival, Event::Arrival(i));
            }
        }
        queue.push(config.poll_interval, Event::Tick);
        if let Some(plan) = &config.faults {
            for (t, ev) in &plan.events {
                if *t <= config.end_time {
                    queue.push(*t, Event::Fault(ev.clone()));
                }
            }
        }
    }

    while let Some((now, event)) = queue.pop() {
        if now > config.end_time {
            break;
        }
        match event {
            Event::Arrival(i) => {
                let _span = tel.span_enter(Phase::RoutingDecision);
                tel.span_sim(Phase::RoutingDecision, now);
                tel.span_items(Phase::RoutingDecision, 1);
                let tx = &transactions[i];
                let idx = payments.len();
                payments.push(PaymentState {
                    id: tx.id,
                    src: tx.src,
                    dst: tx.dst,
                    amount: tx.amount,
                    arrival: tx.arrival,
                    deadline: tx.arrival + config.deadline,
                    delivered: Amount::ZERO,
                    inflight: Amount::ZERO,
                    status: PaymentStatus::Pending,
                    completed_at: None,
                });
                tel.counter_add("sim.payments.arrived", 1);
                tel.emit(|| TraceEvent::PaymentArrived {
                    t: now,
                    payment: tx.id.0,
                    src: tx.src.0,
                    dst: tx.dst.0,
                    amount: tx.amount.as_tokens(),
                });
                tel.emit(|| TraceEvent::PaymentSplit {
                    t: now,
                    payment: tx.id.0,
                    // ceil(amount / mtu) in exact micro-units.
                    units: ((tx.amount.micros() + config.mtu.micros() - 1) / config.mtu.micros())
                        .max(0) as u64,
                });
                pending.push(idx);
                pump_source(
                    network,
                    &mut ledger,
                    &mut paths,
                    config,
                    idx,
                    &mut payments,
                    &mut units,
                    &mut queue,
                    now,
                    &mut units_sent,
                    faults.as_ref(),
                    &blacklist,
                );
            }
            Event::Tick => {
                let _span = tel.span_enter(Phase::QueueDrain);
                tel.span_sim(Phase::QueueDrain, now);
                tel.counter_add("sim.scheduler.polls", 1);
                for &i in &pending {
                    let p = &mut payments[i];
                    if p.status == PaymentStatus::Pending && now >= p.deadline {
                        p.status = PaymentStatus::Abandoned;
                        tel.counter_add("sim.payments.abandoned", 1);
                        tel.emit(|| TraceEvent::PaymentAbandoned {
                            t: now,
                            payment: p.id.0,
                            delivered: p.delivered.as_tokens(),
                        });
                    }
                }
                pending.retain(|&i| payments[i].status == PaymentStatus::Pending);
                // Sweep expired units out of router queues so their upstream
                // locks are refunded promptly (not only when a settlement
                // happens to poke the queue).
                for queues in router_queues.iter_mut() {
                    for q in queues.iter_mut() {
                        let expired: Vec<usize> = q
                            .iter()
                            .copied()
                            .filter(|&u| {
                                !units[u].dropped && payments[units[u].payment].deadline <= now
                            })
                            .collect();
                        if expired.is_empty() {
                            continue;
                        }
                        q.retain(|u| !expired.contains(u));
                        for u in expired {
                            drop_unit(
                                network,
                                &mut ledger,
                                u,
                                &mut units,
                                &mut payments,
                                &mut stats,
                                tel,
                                now,
                                &mut release_violations,
                            );
                        }
                    }
                }
                config.source_policy.order(&payments, &mut pending);
                let order = pending.clone();
                for i in order {
                    if payments[i].status == PaymentStatus::Pending {
                        pump_source(
                            network,
                            &mut ledger,
                            &mut paths,
                            config,
                            i,
                            &mut payments,
                            &mut units,
                            &mut queue,
                            now,
                            &mut units_sent,
                            faults.as_ref(),
                            &blacklist,
                        );
                    }
                }
                pending.retain(|&i| payments[i].status == PaymentStatus::Pending);
                if now + 1e-12 >= next_sample {
                    sample_network(
                        network,
                        &ledger,
                        &payments,
                        now,
                        tel,
                        &mut network_series,
                        &|c| {
                            (router_queues[c.index()][0].len() + router_queues[c.index()][1].len())
                                as u32
                        },
                    );
                    // Sampling only runs on enabled handles, which always
                    // carry an interval; fall back to the poll cadence.
                    let interval = tel.sample_interval().unwrap_or(config.poll_interval);
                    while next_sample <= now + 1e-12 {
                        next_sample += interval;
                    }
                }
                let next = now + config.poll_interval;
                if next <= config.end_time {
                    queue.push(next, Event::Tick);
                }
                ticks += 1;
                if let Some(ck) = ckpt {
                    if ticks.is_multiple_of(ck.every) {
                        let core = encode_queued_core(
                            ticks,
                            network,
                            &ledger,
                            &queue,
                            &payments,
                            &pending,
                            &units,
                            &paths,
                            &router_queues,
                            &stats,
                            total_wait,
                            dequeues,
                            units_sent,
                            &faults,
                            &release_violations,
                            &network_series,
                            next_sample,
                        );
                        let tel_bytes = snapshot::encode_telemetry(&tel.export_state());
                        snapshot::write_snapshot(
                            &ck.dir,
                            snapshot::ENGINE_QUEUED,
                            fp,
                            ticks,
                            &[
                                (snapshot::SEC_CORE, core),
                                (snapshot::SEC_TELEMETRY, tel_bytes),
                            ],
                        )?;
                    }
                }
            }
            Event::HopArrive { unit } => {
                let u = &units[unit];
                if u.dropped {
                    continue;
                }
                let _span = tel.span_enter(Phase::QueueDrain);
                tel.span_sim(Phase::QueueDrain, now);
                tel.span_items(Phase::QueueDrain, 1);
                if u.locked == u.path.len() {
                    // Reached the destination; key released after Δ.
                    queue.push(now + config.delta, Event::SettleUnit { unit });
                    continue;
                }
                try_forward(
                    network,
                    &mut ledger,
                    config,
                    unit,
                    &mut units,
                    &mut router_queues,
                    &mut queue,
                    &mut payments,
                    now,
                    &mut stats,
                    slot,
                    faults.as_ref(),
                    &mut release_violations,
                );
            }
            Event::SettleUnit { unit } => {
                if units[unit].dropped {
                    // An outage refunded this unit during its Δ-wait; the
                    // receiver never got the key.
                    continue;
                }
                let _span = tel.span_enter(Phase::SettleRefund);
                tel.span_sim(Phase::SettleRefund, now);
                tel.span_items(Phase::SettleRefund, 1);
                let u = units[unit].clone();
                debug_assert_eq!(u.locked, u.path.len());
                for (i, &(c, _)) in u.path.hops().iter().enumerate() {
                    let to = u.path.nodes()[i + 1];
                    if let Err(err) = ledger.settle_hop(network, c, to, u.amount) {
                        record_release(&mut release_violations, now, "queued-settle", &err);
                    }
                }
                let p = &mut payments[u.payment];
                p.inflight -= u.amount;
                p.delivered += u.amount;
                let pid = p.id.0;
                tel.counter_add("sim.units.settled", 1);
                tel.emit(|| TraceEvent::UnitSettled {
                    t: now,
                    payment: pid,
                    amount: u.amount.as_tokens(),
                });
                if p.status == PaymentStatus::Pending && p.fully_delivered() {
                    p.status = PaymentStatus::Completed;
                    p.completed_at = Some(now);
                    let delay = now - p.arrival;
                    tel.counter_add("sim.payments.completed", 1);
                    tel.histogram_observe(
                        "sim.completion_delay",
                        delay,
                        Histogram::latency_default,
                    );
                    tel.emit(|| TraceEvent::PaymentCompleted {
                        t: now,
                        payment: pid,
                        delay,
                    });
                }
                // Every hop's receiving side gained funds: drain the queues
                // that send *from* those sides.
                for (i, &(c, d)) in u.path.hops().iter().enumerate() {
                    let _ = i;
                    let rev = slot(d.reverse());
                    drain_queue(
                        network,
                        &mut ledger,
                        config,
                        c,
                        rev,
                        &mut units,
                        &mut router_queues,
                        &mut queue,
                        &mut payments,
                        now,
                        &mut stats,
                        &mut total_wait,
                        &mut dequeues,
                        faults.as_ref(),
                        &mut release_violations,
                    );
                }
            }
            Event::Fault(ev) => {
                let _span = tel.span_enter(Phase::FaultProcessing);
                tel.span_sim(Phase::FaultProcessing, now);
                tel.span_items(Phase::FaultProcessing, 1);
                let Some(fs) = faults.as_mut() else {
                    // Fault events are only scheduled when a plan is
                    // installed.
                    continue;
                };
                match &ev {
                    FaultEvent::ChannelDown(c) => {
                        let ch = c.index() as u32;
                        tel.counter_add("sim.faults.outages", 1);
                        tel.emit(|| TraceEvent::ChannelOutage {
                            t: now,
                            channel: ch,
                        });
                    }
                    FaultEvent::ChannelUp(c) => {
                        let ch = c.index() as u32;
                        tel.emit(|| TraceEvent::ChannelRecovered {
                            t: now,
                            channel: ch,
                        });
                    }
                    FaultEvent::NodeDown(n) => {
                        tel.counter_add("sim.faults.node_crashes", 1);
                        tel.emit(|| TraceEvent::NodeCrashed { t: now, node: n.0 });
                    }
                    FaultEvent::NodeUp(n) => {
                        tel.emit(|| TraceEvent::NodeRecovered { t: now, node: n.0 });
                    }
                }
                let newly_down = fs.apply(network, &ev);
                if !newly_down.is_empty() {
                    // Drop every unit whose *locked prefix* crosses a downed
                    // channel: those in-flight locks can no longer settle and
                    // must be refunded to conserve funds. Units merely queued
                    // at the downed channel keep waiting for recovery.
                    for u in 0..units.len() {
                        if units[u].dropped {
                            continue;
                        }
                        let crosses = units[u]
                            .path
                            .hops()
                            .iter()
                            .take(units[u].locked)
                            .any(|(c, _)| newly_down.contains(c));
                        if crosses {
                            drop_unit(
                                network,
                                &mut ledger,
                                u,
                                &mut units,
                                &mut payments,
                                &mut stats,
                                tel,
                                now,
                                &mut release_violations,
                            );
                            fs.stats.units_refunded_by_outage += 1;
                        }
                    }
                    // Purge dropped units from router queues so they never
                    // block a head-of-line drain.
                    for queues in router_queues.iter_mut() {
                        for q in queues.iter_mut() {
                            q.retain(|&u| !units[u].dropped);
                        }
                    }
                }
                // A recovery re-opens the channel: service its queues now.
                let mut revived: Vec<ChannelId> = Vec::new();
                match &ev {
                    FaultEvent::ChannelUp(c) if !fs.is_channel_down(*c) => revived.push(*c),
                    FaultEvent::NodeUp(n) => {
                        for &(_, c) in network.neighbors(*n) {
                            if !fs.is_channel_down(c) {
                                revived.push(c);
                            }
                        }
                    }
                    _ => {}
                }
                for c in revived {
                    for s in 0..2 {
                        drain_queue(
                            network,
                            &mut ledger,
                            config,
                            c,
                            s,
                            &mut units,
                            &mut router_queues,
                            &mut queue,
                            &mut payments,
                            now,
                            &mut stats,
                            &mut total_wait,
                            &mut dequeues,
                            faults.as_ref(),
                            &mut release_violations,
                        );
                    }
                }
            }
        }
    }

    stats.mean_wait = if dequeues > 0 {
        total_wait / dequeues as f64
    } else {
        0.0
    };
    debug_assert!(ledger.conserves_all());

    let path_stats = paths.stats();
    tel.counter_add("routing.paths.lookups", path_stats.lookups);
    tel.counter_add("routing.paths.computed_pairs", path_stats.computed_pairs);
    tel.counter_add("routing.paths.computed", path_stats.computed_paths);

    let completed: Vec<&PaymentState> = payments
        .iter()
        .filter(|p| p.status == PaymentStatus::Completed)
        .collect();
    let report = SimReport {
        scheme: "queued-waterfilling".to_string(),
        policy: format!("{}+{:?}", config.source_policy.name(), config.queue_policy),
        attempted: payments.len(),
        completed: completed.len(),
        abandoned: payments
            .iter()
            .filter(|p| p.status == PaymentStatus::Abandoned)
            .count(),
        pending_at_end: payments
            .iter()
            .filter(|p| p.status == PaymentStatus::Pending)
            .count(),
        attempted_volume: payments.iter().map(|p| p.amount.as_tokens()).sum(),
        delivered_volume: payments.iter().map(|p| p.delivered.as_tokens()).sum(),
        completed_volume: completed.iter().map(|p| p.amount.as_tokens()).sum(),
        units_sent,
        mean_completion_delay: if completed.is_empty() {
            0.0
        } else {
            completed
                .iter()
                .filter_map(|p| p.completed_at.map(|t| t - p.arrival))
                .sum::<f64>()
                / completed.len() as f64
        },
        final_mean_imbalance: ledger.mean_imbalance(),
        rebalance: RebalanceStats::default(),
        routing_fees_paid: 0.0,
        series: Vec::new(),
        audit_checks: 0,
        audit_violations: release_violations,
        completion_delay_percentiles: tel.delay_percentiles("sim.completion_delay"),
        telemetry: tel.summarize(network_series),
        faults: faults.map(|fs| fs.stats),
        shards: None,
    };
    Ok(QueuedReport {
        report,
        queues: stats,
    })
}

fn fingerprint_queued(
    network: &Network,
    transactions: &[Transaction],
    config: &QueuedConfig,
) -> u32 {
    let mut e = Enc::new();
    snapshot::enc_inputs(&mut e, network, transactions);
    e.str("queued-waterfilling");
    e.f64(config.end_time);
    e.f64(config.hop_delay);
    e.f64(config.delta);
    e.i64(config.mtu.micros());
    e.f64(config.poll_interval);
    e.f64(config.deadline);
    e.str(config.source_policy.name());
    e.u8(match config.queue_policy {
        QueuePolicy::Fifo => 0,
        QueuePolicy::SmallestFirst => 1,
        QueuePolicy::EarliestDeadline => 2,
    });
    e.usize(config.num_paths);
    e.usize(config.max_queue_len);
    match &config.faults {
        Some(plan) => {
            e.u8(1);
            snapshot::enc_json(&mut e, &plan.config);
            e.seq(&plan.events, |e, (t, ev)| {
                e.f64(*t);
                enc_fault_event(e, ev);
            });
        }
        None => e.u8(0),
    }
    e.bool(config.telemetry.is_enabled());
    e.f64(config.telemetry.sample_interval().unwrap_or(f64::NAN));
    crc32(&e.into_bytes())
}

fn enc_event(e: &mut Enc, event: &Event) {
    match event {
        Event::Arrival(i) => {
            e.u8(0);
            e.usize(*i);
        }
        Event::Tick => e.u8(1),
        Event::HopArrive { unit } => {
            e.u8(2);
            e.usize(*unit);
        }
        Event::SettleUnit { unit } => {
            e.u8(3);
            e.usize(*unit);
        }
        Event::Fault(ev) => {
            e.u8(4);
            enc_fault_event(e, ev);
        }
    }
}

fn dec_event(d: &mut Dec) -> Result<Event, SnapshotError> {
    match d.u8()? {
        0 => Ok(Event::Arrival(d.usize()?)),
        1 => Ok(Event::Tick),
        2 => Ok(Event::HopArrive { unit: d.usize()? }),
        3 => Ok(Event::SettleUnit { unit: d.usize()? }),
        4 => Ok(Event::Fault(dec_fault_event(d)?)),
        other => Err(SnapshotError::Corrupt {
            what: format!("queued event tag {other}"),
        }),
    }
}

/// Router-queue engine state restored from a snapshot's `SEC_CORE` section.
struct QueuedResume {
    ticks: u64,
    channels: Vec<[i64; 4]>,
    queue_entries: Vec<(f64, u64, Event)>,
    queue_next_seq: u64,
    payments: Vec<PaymentState>,
    pending: Vec<usize>,
    units: Vec<UnitState>,
    path_cache: Vec<u8>,
    router_queues: Vec<[Vec<usize>; 2]>,
    stats: QueueStats,
    total_wait: f64,
    dequeues: usize,
    units_sent: u64,
    faults: Option<crate::faults::FaultStateSnapshot>,
    release_violations: Vec<AuditViolation>,
    network_series: Vec<spider_telemetry::NetworkSample>,
    next_sample: f64,
}

#[allow(clippy::too_many_arguments)]
fn encode_queued_core(
    ticks: u64,
    network: &Network,
    ledger: &Ledger,
    queue: &EventQueue<Event>,
    payments: &[PaymentState],
    pending: &[usize],
    units: &[UnitState],
    paths: &PathCache,
    router_queues: &[[VecDeque<usize>; 2]],
    stats: &QueueStats,
    total_wait: f64,
    dequeues: usize,
    units_sent: u64,
    faults: &Option<FaultState>,
    release_violations: &[AuditViolation],
    network_series: &[NetworkSample],
    next_sample: f64,
) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(ticks);
    e.usize(network.num_channels());
    for i in 0..network.num_channels() {
        for v in ledger.export_channel(ChannelId::from(i)) {
            e.i64(v);
        }
    }
    let entries = queue.entries();
    e.usize(entries.len());
    for (t, seq, event) in &entries {
        e.f64(*t);
        e.u64(*seq);
        enc_event(&mut e, event);
    }
    e.u64(queue.next_seq());
    e.seq(payments, enc_payment);
    e.seq(pending, |e, &i| e.usize(i));
    e.seq(units, |e, u| {
        e.usize(u.payment);
        e.i64(u.amount.micros());
        enc_path(e, &u.path);
        e.usize(u.locked);
        e.f64(u.queued_at);
        e.bool(u.dropped);
    });
    e.bytes(&paths.checkpoint());
    e.usize(router_queues.len());
    for [a, b] in router_queues {
        e.seq(&a.iter().copied().collect::<Vec<_>>(), |e, &u| e.usize(u));
        e.seq(&b.iter().copied().collect::<Vec<_>>(), |e, &u| e.usize(u));
    }
    e.usize(stats.units_queued);
    e.usize(stats.units_dropped);
    e.usize(stats.max_queue_len);
    e.f64(total_wait);
    e.usize(dequeues);
    e.u64(units_sent);
    match faults {
        Some(fs) => {
            e.u8(1);
            let snap = fs.export_state();
            e.bytes(&snap.down_causes);
            e.seq(&snap.node_down, |e, &b| e.bool(b));
            e.u64(snap.rng_state);
            snapshot::enc_json(&mut e, &snap.stats);
        }
        None => e.u8(0),
    }
    snapshot::enc_json(&mut e, &release_violations.to_vec());
    e.seq(network_series, |e, s| {
        e.f64(s.t);
        e.f64(s.mean_imbalance);
        e.f64(s.total_inflight);
        e.u32(s.pending);
        e.u32(s.max_queue_depth);
    });
    e.f64(next_sample);
    e.into_bytes()
}

fn decode_queued_core(bytes: &[u8], network: &Network) -> Result<QueuedResume, SnapshotError> {
    let mut d = Dec::new(bytes);
    let ticks = d.u64()?;
    let num_channels = d.usize()?;
    if num_channels != network.num_channels() {
        return Err(SnapshotError::Corrupt {
            what: format!(
                "snapshot covers {num_channels} channels, network has {}",
                network.num_channels()
            ),
        });
    }
    let mut channels = Vec::with_capacity(num_channels);
    for _ in 0..num_channels {
        channels.push([d.i64()?, d.i64()?, d.i64()?, d.i64()?]);
    }
    let n_entries = d.usize()?;
    let mut queue_entries = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        let t = d.f64()?;
        if !t.is_finite() {
            return Err(SnapshotError::Corrupt {
                what: format!("non-finite event time {t}"),
            });
        }
        let seq = d.u64()?;
        let event = dec_event(&mut d)?;
        queue_entries.push((t, seq, event));
    }
    let queue_next_seq = d.u64()?;
    let n_payments = d.usize()?;
    let mut payments = Vec::with_capacity(n_payments);
    for _ in 0..n_payments {
        payments.push(dec_payment(&mut d)?);
    }
    let pending = d.seq(|d| d.usize())?;
    let n_units = d.usize()?;
    let mut units = Vec::with_capacity(n_units);
    for _ in 0..n_units {
        let payment = d.usize()?;
        if payment >= payments.len() {
            return Err(SnapshotError::Corrupt {
                what: format!("unit references payment {payment} of {}", payments.len()),
            });
        }
        let amount = Amount::from_micros(d.i64()?);
        let path = dec_path(&mut d, network)?;
        let locked = d.usize()?;
        if locked > path.len() {
            return Err(SnapshotError::Corrupt {
                what: format!("unit locked {locked} hops of a {}-hop path", path.len()),
            });
        }
        let queued_at = d.f64()?;
        let dropped = d.bool()?;
        units.push(UnitState {
            payment,
            amount,
            path,
            locked,
            queued_at,
            dropped,
        });
    }
    let path_cache = d.bytes()?.to_vec();
    let n_queues = d.usize()?;
    let mut router_queues = Vec::with_capacity(n_queues);
    for _ in 0..n_queues {
        let a = d.seq(|d| d.usize())?;
        let b = d.seq(|d| d.usize())?;
        for &u in a.iter().chain(b.iter()) {
            if u >= units.len() {
                return Err(SnapshotError::Corrupt {
                    what: format!("router queue references unit {u} of {}", units.len()),
                });
            }
        }
        router_queues.push([a, b]);
    }
    let stats = QueueStats {
        units_queued: d.usize()?,
        units_dropped: d.usize()?,
        max_queue_len: d.usize()?,
        mean_wait: 0.0,
    };
    let total_wait = d.f64()?;
    let dequeues = d.usize()?;
    let units_sent = d.u64()?;
    let faults = match d.u8()? {
        0 => None,
        1 => {
            let down_causes = d.bytes()?.to_vec();
            let node_down = d.seq(|d| d.bool())?;
            let rng_state = d.u64()?;
            let stats = snapshot::dec_json(&mut d)?;
            Some(crate::faults::FaultStateSnapshot {
                down_causes,
                node_down,
                rng_state,
                stats,
            })
        }
        other => {
            return Err(SnapshotError::Corrupt {
                what: format!("fault presence byte {other}"),
            })
        }
    };
    let release_violations = snapshot::dec_json(&mut d)?;
    let network_series = d.seq(|d| {
        Ok(NetworkSample {
            t: d.f64()?,
            mean_imbalance: d.f64()?,
            total_inflight: d.f64()?,
            pending: d.u32()?,
            max_queue_depth: d.u32()?,
        })
    })?;
    let next_sample = d.f64()?;
    d.expect_end()?;
    Ok(QueuedResume {
        ticks,
        channels,
        queue_entries,
        queue_next_seq,
        payments,
        pending,
        units,
        path_cache,
        router_queues,
        stats,
        total_wait,
        dequeues,
        units_sent,
        faults,
        release_violations,
        network_series,
        next_sample,
    })
}

/// Sends as many units of one pending payment as first-hop funding allows.
#[allow(clippy::too_many_arguments)]
fn pump_source(
    network: &Network,
    ledger: &mut Ledger,
    paths: &mut PathCache,
    config: &QueuedConfig,
    idx: usize,
    payments: &mut [PaymentState],
    units: &mut Vec<UnitState>,
    queue: &mut EventQueue<Event>,
    now: f64,
    units_sent: &mut u64,
    faults: Option<&FaultState>,
    blacklist: &Blacklist,
) {
    let _span = config.telemetry.span_enter(Phase::UnitDispatch);
    config.telemetry.span_sim(Phase::UnitDispatch, now);
    loop {
        let p = &payments[idx];
        let remaining = p.remaining();
        if !remaining.is_positive() {
            break;
        }
        let unit_amount = remaining.min(config.mtu);
        let (src, dst) = (p.src, p.dst);
        let candidates = paths.paths(network, src, dst);
        if candidates.is_empty() {
            payments[idx].status = PaymentStatus::Abandoned;
            let p = &payments[idx];
            config.telemetry.counter_add("sim.payments.abandoned", 1);
            config.telemetry.emit(|| TraceEvent::PaymentAbandoned {
                t: now,
                payment: p.id.0,
                delivered: p.delivered.as_tokens(),
            });
            break;
        }
        // Waterfilling preference by full-path bottleneck (fault-masked so
        // downed channels look empty), but admission only requires the
        // first hop to be fundable: downstream dry spells are absorbed by
        // router queues.
        let view = crate::ledger::LedgerView { network, ledger };
        let best = match faults {
            Some(fs) => best_path(
                candidates,
                &FaultView {
                    inner: &view,
                    faults: fs,
                    blacklist,
                    now,
                },
            ),
            None => best_path(candidates, &view),
        };
        let Some(best) = best else {
            break;
        };
        let (c0, _) = best.hops()[0];
        if faults.is_some_and(|fs| fs.is_channel_down(c0)) {
            break;
        }
        if ledger.lock_hop(network, c0, src, unit_amount).is_err() {
            break;
        }
        let unit_id = units.len();
        units.push(UnitState {
            payment: idx,
            amount: unit_amount,
            path: best,
            locked: 1,
            queued_at: f64::NAN,
            dropped: false,
        });
        payments[idx].inflight += unit_amount;
        *units_sent += 1;
        config.telemetry.counter_add("sim.units.sent", 1);
        config.telemetry.emit(|| TraceEvent::UnitSent {
            t: now,
            payment: payments[idx].id.0,
            amount: unit_amount.as_tokens(),
            hops: units[unit_id].path.len() as u32,
        });
        queue.push(now + config.hop_delay, Event::HopArrive { unit: unit_id });
    }
}

/// Waterfilling path preference: max bottleneck, shorter path on ties.
/// `None` only for an empty candidate set (callers check first).
fn best_path<V: spider_core::BalanceView>(
    candidates: &[std::sync::Arc<Path>],
    view: &V,
) -> Option<std::sync::Arc<Path>> {
    candidates
        .iter()
        .map(|path| (path_bottleneck(view, path), path))
        .max_by(|a, b| a.0.cmp(&b.0).then(b.1.len().cmp(&a.1.len())))
        .map(|(_, path)| std::sync::Arc::clone(path))
}

/// A unit at an intermediate router tries to lock its next hop; otherwise
/// it joins the channel direction's queue.
#[allow(clippy::too_many_arguments)]
fn try_forward(
    network: &Network,
    ledger: &mut Ledger,
    config: &QueuedConfig,
    unit: usize,
    units: &mut [UnitState],
    router_queues: &mut [[VecDeque<usize>; 2]],
    queue: &mut EventQueue<Event>,
    payments: &mut [PaymentState],
    now: f64,
    stats: &mut QueueStats,
    slot: impl Fn(Direction) -> usize,
    faults: Option<&FaultState>,
    violations: &mut Vec<AuditViolation>,
) {
    let (c, d) = units[unit].path.hops()[units[unit].locked];
    let from = units[unit].path.nodes()[units[unit].locked];
    let amount = units[unit].amount;
    let down = faults.is_some_and(|fs| fs.is_channel_down(c));
    if !down && ledger.lock_hop(network, c, from, amount).is_ok() {
        units[unit].locked += 1;
        queue.push(now + config.hop_delay, Event::HopArrive { unit });
        return;
    }
    // Queue at this router (downed next hop queues too: the unit waits for
    // recovery, bounded by its payment's deadline).
    let q = &mut router_queues[c.index()][slot(d)];
    if q.len() >= config.max_queue_len {
        drop_unit(
            network,
            ledger,
            unit,
            units,
            payments,
            stats,
            &config.telemetry,
            now,
            violations,
        );
        return;
    }
    units[unit].queued_at = now;
    let pos = insert_position(q, units, payments, config.queue_policy, unit);
    q.insert(pos, unit);
    stats.units_queued += 1;
    stats.max_queue_len = stats.max_queue_len.max(q.len());
    let depth = q.len() as u32;
    config.telemetry.counter_add("sim.units.queued", 1);
    config.telemetry.emit(|| TraceEvent::UnitQueued {
        t: now,
        payment: payments[units[unit].payment].id.0,
        channel: c.index() as u32,
        depth,
    });
}

/// Position a newly queued unit according to the queue policy.
fn insert_position(
    q: &VecDeque<usize>,
    units: &[UnitState],
    payments: &[PaymentState],
    policy: QueuePolicy,
    unit: usize,
) -> usize {
    match policy {
        QueuePolicy::Fifo => q.len(),
        QueuePolicy::SmallestFirst => q
            .iter()
            .position(|&other| units[other].amount > units[unit].amount)
            .unwrap_or(q.len()),
        QueuePolicy::EarliestDeadline => q
            .iter()
            .position(|&other| {
                payments[units[other].payment].deadline > payments[units[unit].payment].deadline
            })
            .unwrap_or(q.len()),
    }
}

/// Services a channel direction's queue after its sending side gained funds.
#[allow(clippy::too_many_arguments)]
fn drain_queue(
    network: &Network,
    ledger: &mut Ledger,
    config: &QueuedConfig,
    channel: ChannelId,
    slot_idx: usize,
    units: &mut [UnitState],
    router_queues: &mut [[VecDeque<usize>; 2]],
    queue: &mut EventQueue<Event>,
    payments: &mut [PaymentState],
    now: f64,
    stats: &mut QueueStats,
    total_wait: &mut f64,
    dequeues: &mut usize,
    faults: Option<&FaultState>,
    violations: &mut Vec<AuditViolation>,
) {
    if faults.is_some_and(|fs| fs.is_channel_down(channel)) {
        return; // nothing forwards over a downed channel
    }
    while let Some(&head) = router_queues[channel.index()][slot_idx].front() {
        // Expired while waiting?
        if payments[units[head].payment].deadline <= now || units[head].dropped {
            router_queues[channel.index()][slot_idx].pop_front();
            if !units[head].dropped {
                drop_unit(
                    network,
                    ledger,
                    head,
                    units,
                    payments,
                    stats,
                    &config.telemetry,
                    now,
                    violations,
                );
            }
            continue;
        }
        let from = units[head].path.nodes()[units[head].locked];
        let amount = units[head].amount;
        if ledger.lock_hop(network, channel, from, amount).is_err() {
            break; // head blocked; policy order preserved (no bypass)
        }
        router_queues[channel.index()][slot_idx].pop_front();
        *total_wait += now - units[head].queued_at;
        *dequeues += 1;
        units[head].queued_at = f64::NAN;
        units[head].locked += 1;
        queue.push(now + config.hop_delay, Event::HopArrive { unit: head });
    }
}

/// Drops a unit: refunds every upstream lock. The payment's in-flight value
/// shrinks so the source may retry (until its deadline).
#[allow(clippy::too_many_arguments)]
fn drop_unit(
    network: &Network,
    ledger: &mut Ledger,
    unit: usize,
    units: &mut [UnitState],
    payments: &mut [PaymentState],
    stats: &mut QueueStats,
    telemetry: &Telemetry,
    now: f64,
    violations: &mut Vec<AuditViolation>,
) {
    let u = &mut units[unit];
    debug_assert!(!u.dropped);
    for (i, &(c, _)) in u.path.hops().iter().take(u.locked).enumerate() {
        let from = u.path.nodes()[i];
        if let Err(err) = ledger.refund_hop(network, c, from, u.amount) {
            record_release(violations, now, "queued-drop", &err);
        }
    }
    u.dropped = true;
    stats.units_dropped += 1;
    telemetry.counter_add("sim.units.refunded", 1);
    telemetry.emit(|| TraceEvent::UnitRefunded {
        t: now,
        payment: payments[u.payment].id.0,
        amount: u.amount.as_tokens(),
    });
    // The value returns to "remaining" so the source can resend it (until
    // the payment's own deadline).
    payments[u.payment].inflight -= u.amount;
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_core::{NodeId, PaymentId};

    fn line3(cap: i64) -> Network {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(cap))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(2), Amount::from_whole(cap))
            .unwrap();
        g
    }

    fn tx(id: u64, src: u32, dst: u32, amount: i64, arrival: f64) -> Transaction {
        Transaction {
            id: PaymentId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            amount: Amount::from_whole(amount),
            arrival,
        }
    }

    #[test]
    fn simple_payment_completes() {
        let g = line3(100);
        let txs = vec![tx(0, 0, 2, 30, 0.1)];
        let out = run_queued(&g, &txs, &QueuedConfig::new(10.0));
        assert_eq!(out.report.completed, 1);
        assert_eq!(out.report.units_sent, 3);
        assert_eq!(out.queues.units_dropped, 0);
    }

    #[test]
    fn optimistic_admission_uses_router_queue() {
        // Second hop starts empty toward node 2: units are admitted on hop
        // one and must WAIT at router 1 until opposing traffic arrives.
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(100))
            .unwrap();
        g.add_channel_with_balances(NodeId(1), NodeId(2), Amount::ZERO, Amount::from_whole(50))
            .unwrap();
        let txs = vec![
            tx(0, 0, 2, 20, 0.1), // must queue at router 1
            tx(1, 2, 0, 20, 1.0), // opposing flow refills 1->2 side at settle
        ];
        let mut cfg = QueuedConfig::new(30.0);
        cfg.deadline = 20.0;
        let out = run_queued(&g, &txs, &cfg);
        assert!(
            out.queues.units_queued > 0,
            "units should queue: {:?}",
            out.queues
        );
        assert_eq!(out.report.completed, 2, "{:?}", out.report);
        assert!(out.queues.mean_wait > 0.0);
    }

    #[test]
    fn queued_units_expire_and_refund() {
        // Downstream never refills; queued units must drop and refund their
        // first-hop locks (conservation holds, delivered = 0).
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(100))
            .unwrap();
        g.add_channel_with_balances(NodeId(1), NodeId(2), Amount::ZERO, Amount::from_whole(50))
            .unwrap();
        let txs = vec![tx(0, 0, 2, 20, 0.1)];
        let mut cfg = QueuedConfig::new(30.0);
        cfg.deadline = 2.0;
        let out = run_queued(&g, &txs, &cfg);
        assert_eq!(out.report.completed, 0);
        assert_eq!(out.report.delivered_volume, 0.0);
        // The Tick sweep must refund expired queued units even with no
        // opposing traffic to poke the queue.
        assert!(out.queues.units_dropped > 0, "{:?}", out.queues);
    }

    #[test]
    fn queue_beats_source_queueing_under_transient_imbalance() {
        // Bursty opposing flows: optimistic admission pipelines better than
        // full-bottleneck gating. Both must complete everything eventually;
        // the queued engine should not be slower.
        let g = line3(60);
        let mut txs = Vec::new();
        for i in 0..10u64 {
            txs.push(tx(2 * i, 0, 2, 25, 0.1 + i as f64));
            txs.push(tx(2 * i + 1, 2, 0, 25, 0.6 + i as f64));
        }
        let mut cfg = QueuedConfig::new(60.0);
        cfg.deadline = 30.0;
        let queued = run_queued(&g, &txs, &cfg);
        assert!(
            queued.report.success_ratio() > 0.9,
            "queued transport should deliver nearly everything: {}",
            queued.report.summary()
        );
    }

    #[test]
    fn policies_order_queues_differently() {
        // Inspect insert_position directly.
        let units = vec![
            UnitState {
                payment: 0,
                amount: Amount::from_whole(5),
                path: {
                    let g = line3(10);
                    std::sync::Arc::new(Path::new(&g, vec![NodeId(0), NodeId(1)]).unwrap())
                },
                locked: 1,
                queued_at: 0.0,
                dropped: false,
            },
            UnitState {
                payment: 1,
                amount: Amount::from_whole(1),
                path: {
                    let g = line3(10);
                    std::sync::Arc::new(Path::new(&g, vec![NodeId(0), NodeId(1)]).unwrap())
                },
                locked: 1,
                queued_at: 0.0,
                dropped: false,
            },
        ];
        let payments = vec![
            PaymentState {
                id: PaymentId(0),
                src: NodeId(0),
                dst: NodeId(1),
                amount: Amount::from_whole(5),
                arrival: 0.0,
                deadline: 9.0,
                delivered: Amount::ZERO,
                inflight: Amount::ZERO,
                status: PaymentStatus::Pending,
                completed_at: None,
            },
            PaymentState {
                id: PaymentId(1),
                src: NodeId(0),
                dst: NodeId(1),
                amount: Amount::from_whole(1),
                arrival: 0.0,
                deadline: 2.0,
                delivered: Amount::ZERO,
                inflight: Amount::ZERO,
                status: PaymentStatus::Pending,
                completed_at: None,
            },
        ];
        let q: VecDeque<usize> = VecDeque::from([0]);
        // FIFO appends.
        assert_eq!(
            insert_position(&q, &units, &payments, QueuePolicy::Fifo, 1),
            1
        );
        // Smallest-first puts the 1-token unit ahead of the 5-token one.
        assert_eq!(
            insert_position(&q, &units, &payments, QueuePolicy::SmallestFirst, 1),
            0
        );
        // EDF puts the tighter deadline first.
        assert_eq!(
            insert_position(&q, &units, &payments, QueuePolicy::EarliestDeadline, 1),
            0
        );
    }

    #[test]
    fn outage_drops_locked_units_and_queues_absorb_recovery() {
        use crate::faults::{FaultConfig, FaultEvent, FaultPlan};
        use spider_core::ChannelId;
        // Channel 1 dies while units are mid-path: locked prefixes crossing
        // it are refunded. After recovery the source re-sends and the
        // payment still completes — router queues plus source re-pumping
        // absorb the outage.
        let g = line3(100);
        let txs = vec![tx(0, 0, 2, 30, 0.1)];
        let plan = FaultPlan::scripted(
            vec![
                (0.3, FaultEvent::ChannelDown(ChannelId(1))),
                (1.0, FaultEvent::ChannelUp(ChannelId(1))),
            ],
            FaultConfig::default(),
        );
        let mut cfg = QueuedConfig::new(20.0);
        cfg.deadline = 15.0;
        cfg.faults = Some(plan);
        let out = run_queued(&g, &txs, &cfg);
        let stats = out.report.faults.expect("fault stats present");
        assert_eq!(stats.outages, 1);
        assert_eq!(stats.recoveries, 1);
        assert_eq!(out.report.completed, 1, "{:?}", out.report);
        assert!(
            out.report.audit_violations.is_empty(),
            "{:?}",
            out.report.audit_violations
        );
        // Determinism under faults.
        let again = run_queued(&g, &txs, &cfg);
        assert_eq!(
            serde_json::to_string(&out.report).unwrap(),
            serde_json::to_string(&again.report).unwrap()
        );
    }

    #[test]
    fn deterministic() {
        let g = line3(50);
        let txs: Vec<Transaction> = (0..20)
            .map(|i| {
                tx(
                    i,
                    (i % 2) as u32 * 2,
                    2 - (i % 2) as u32 * 2,
                    15,
                    0.1 * i as f64,
                )
            })
            .collect();
        let a = run_queued(&g, &txs, &QueuedConfig::new(15.0));
        let b = run_queued(&g, &txs, &QueuedConfig::new(15.0));
        assert_eq!(a.report.completed, b.report.completed);
        assert_eq!(a.report.units_sent, b.report.units_sent);
        assert_eq!(a.queues.units_queued, b.queues.units_queued);
    }
}
