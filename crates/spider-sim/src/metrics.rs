//! Evaluation metrics (§6.1): success ratio and success volume, plus
//! supporting detail.

use crate::audit::AuditViolation;
use crate::faults::FaultStats;
use crate::rebalancer::RebalanceStats;
use serde::{Deserialize, Serialize};
use spider_telemetry::{DelayPercentiles, TelemetrySummary};

/// Result of one simulation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimReport {
    /// Routing scheme name.
    pub scheme: String,
    /// Scheduling policy name (packet-switched schemes only; "atomic" otherwise).
    pub policy: String,
    /// Payments that arrived during the run.
    pub attempted: usize,
    /// Payments fully delivered before their deadline.
    pub completed: usize,
    /// Payments abandoned (atomic failure, unroutable, or deadline).
    pub abandoned: usize,
    /// Payments still pending when the run ended.
    pub pending_at_end: usize,
    /// Total value of attempted payments (tokens).
    pub attempted_volume: f64,
    /// Value actually settled at receivers, including partial deliveries.
    pub delivered_volume: f64,
    /// Value of fully completed payments only.
    pub completed_volume: f64,
    /// Transaction units transmitted.
    pub units_sent: u64,
    /// Mean time from arrival to completion, over completed payments.
    pub mean_completion_delay: f64,
    /// Mean relative channel imbalance at the end of the run.
    pub final_mean_imbalance: f64,
    /// On-chain rebalancing activity (zeros when rebalancing is disabled).
    #[serde(default)]
    pub rebalance: RebalanceStats,
    /// Total routing fees paid by senders (tokens; zero without a fee
    /// schedule).
    #[serde(default)]
    pub routing_fees_paid: f64,
    /// Sampled time series of `(time, success_ratio, success_volume)`.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub series: Vec<(f64, f64, f64)>,
    /// Ledger invariant checks performed (zero when auditing is disabled).
    #[serde(default)]
    pub audit_checks: u64,
    /// Ledger invariant violations found by the auditor (always empty on a
    /// correct engine; capped at 32 entries per run).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub audit_violations: Vec<AuditViolation>,
    /// Completion-delay percentiles from the telemetry latency histogram
    /// (present only when telemetry was enabled, so reports from
    /// telemetry-off runs serialize byte-identically to older builds).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub completion_delay_percentiles: Option<DelayPercentiles>,
    /// Full telemetry summary: event counts, network time series, metrics
    /// snapshot (present only when telemetry was enabled).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub telemetry: Option<TelemetrySummary>,
    /// Fault-injection statistics (present only when a fault plan was
    /// configured, so fault-off reports serialize byte-identically to
    /// older builds).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub faults: Option<FaultStats>,
    /// Per-shard epoch observability from the sharded engine (barrier
    /// waits, cross-shard message counts, load imbalance). **Never
    /// serialized**: per-shard detail necessarily differs across shard
    /// counts while report JSON must stay byte-identical at any shard
    /// count — consumers read it in memory (CLI `sharded` printout).
    #[serde(skip, default)]
    pub shards: Option<crate::engine_sharded::ShardObservability>,
}

impl SimReport {
    /// `completed / attempted` — the paper's *success ratio*.
    pub fn success_ratio(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.completed as f64 / self.attempted as f64
        }
    }

    /// `delivered volume / attempted volume` — the paper's *success
    /// volume* (non-atomic partial deliveries count as delivered).
    pub fn success_volume(&self) -> f64 {
        if self.attempted_volume <= 0.0 {
            0.0
        } else {
            self.delivered_volume / self.attempted_volume
        }
    }

    /// `completed volume / attempted volume` — a stricter volume metric
    /// counting only fully completed payments.
    pub fn strict_success_volume(&self) -> f64 {
        if self.attempted_volume <= 0.0 {
            0.0
        } else {
            self.completed_volume / self.attempted_volume
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<22} {:<8} success_ratio={:>6.3} success_volume={:>6.3} (strict {:>6.3}) completed={}/{} abandoned={} pending={} units={}",
            self.scheme,
            self.policy,
            self.success_ratio(),
            self.success_volume(),
            self.strict_success_volume(),
            self.completed,
            self.attempted,
            self.abandoned,
            self.pending_at_end,
            self.units_sent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            scheme: "test".into(),
            policy: "srpt".into(),
            attempted: 10,
            completed: 7,
            abandoned: 2,
            pending_at_end: 1,
            attempted_volume: 1000.0,
            delivered_volume: 800.0,
            completed_volume: 700.0,
            units_sent: 42,
            mean_completion_delay: 0.9,
            final_mean_imbalance: 0.3,
            rebalance: RebalanceStats::default(),
            routing_fees_paid: 0.0,
            series: vec![],
            audit_checks: 0,
            audit_violations: vec![],
            completion_delay_percentiles: None,
            telemetry: None,
            faults: None,
            shards: None,
        }
    }

    #[test]
    fn ratios() {
        let r = report();
        assert!((r.success_ratio() - 0.7).abs() < 1e-12);
        assert!((r.success_volume() - 0.8).abs() < 1e-12);
        assert!((r.strict_success_volume() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn zero_attempts_are_safe() {
        let mut r = report();
        r.attempted = 0;
        r.attempted_volume = 0.0;
        assert_eq!(r.success_ratio(), 0.0);
        assert_eq!(r.success_volume(), 0.0);
        assert_eq!(r.strict_success_volume(), 0.0);
    }

    #[test]
    fn summary_contains_key_numbers() {
        let s = report().summary();
        assert!(s.contains("test"));
        assert!(s.contains("srpt"), "summary must show the policy: {s}");
        assert!(s.contains("0.700"));
        assert!(s.contains("7/10"));
        assert!(
            s.contains("abandoned=2"),
            "summary must show abandoned: {s}"
        );
        assert!(s.contains("pending=1"), "summary must show pending: {s}");
    }

    #[test]
    fn telemetry_fields_absent_from_json_when_disabled() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        assert!(!json.contains("completion_delay_percentiles"));
        assert!(!json.contains("telemetry"));
        assert!(!json.contains("faults"), "fault-off reports stay unchanged");
        let mut with = report();
        with.completion_delay_percentiles = Some(DelayPercentiles {
            p50: 0.5,
            p95: 1.0,
            p99: 2.0,
            saturated: false,
        });
        let json = serde_json::to_string(&with).unwrap();
        assert!(json.contains("completion_delay_percentiles"));
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(
            back.completion_delay_percentiles,
            with.completion_delay_percentiles
        );
    }

    #[test]
    fn serializes_to_json() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"attempted\":10"));
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.attempted, r.attempted);
    }
}
