//! Ledger invariant auditing: an always-on-when-enabled checker that
//! verifies, after every balance-mutating event, that the ledger still
//! conserves funds **exactly** in fixed-point [`Amount`] arithmetic.
//!
//! Two layers of invariants:
//!
//! - **per channel**: both spendable sides and the in-flight pool are
//!   non-negative, and `available_a + available_b + inflight == capacity`;
//! - **global**: `Σ available + Σ inflight` equals the initial total escrow
//!   adjusted by on-chain deposits and withdrawals. Routing fees move value
//!   between participants but never create or destroy it, so they cancel
//!   out of the global sum; rebalancing's on-chain fee shows up as the gap
//!   between what was withdrawn and what was re-deposited.
//!
//! Violations are recorded as structured [`AuditViolation`] values and
//! surfaced in [`SimReport`](crate::SimReport) rather than panicking, so a
//! broken invariant in a long experiment grid produces a diagnosable report
//! row instead of tearing down the whole run.

use crate::ledger::Ledger;
use serde::{Deserialize, Serialize};
use spider_core::{Amount, ChannelId, CoreError};

/// What exactly went wrong, with enough context to locate the bug.
/// All amounts are in exact fixed-point micro-tokens.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AuditViolationKind {
    /// A channel side's spendable balance went negative.
    NegativeBalance {
        /// The offending channel.
        channel: ChannelId,
        /// Which side (0 = lower-id endpoint `a`, 1 = endpoint `b`).
        side: u8,
        /// The negative balance, in micro-tokens.
        micros: i64,
    },
    /// A channel's in-flight pool went negative (double settle/refund).
    NegativeInflight {
        /// The offending channel.
        channel: ChannelId,
        /// The negative in-flight total, in micro-tokens.
        micros: i64,
    },
    /// `available_a + available_b + inflight != capacity` on one channel.
    ChannelImbalance {
        /// The offending channel.
        channel: ChannelId,
        /// `available_a + available_b + inflight`, in micro-tokens.
        actual_micros: i64,
        /// The channel's recorded capacity, in micro-tokens.
        capacity_micros: i64,
    },
    /// The network-wide sum drifted from the deposit/withdrawal-adjusted
    /// escrow total.
    GlobalImbalance {
        /// `Σ available + Σ inflight` over all channels, in micro-tokens.
        actual_micros: i64,
        /// The expected total, in micro-tokens.
        expected_micros: i64,
    },
    /// A settle/refund tried to release more than the channel's recorded
    /// in-flight funds and was refused by the ledger. Unlike the other
    /// kinds, the ledger stays uncorrupted — the violation records the
    /// caller-side double-release bug itself. Recorded even when periodic
    /// auditing is off, so release builds can't lose it.
    ExcessRelease {
        /// The channel whose in-flight pool would have gone negative.
        channel: ChannelId,
        /// Micro-tokens actually in flight at the time.
        inflight_micros: i64,
        /// Micro-tokens the caller tried to release.
        requested_micros: i64,
    },
    /// A channel's ledger slots were about to be mutated by a shard that
    /// does not own the channel — a breach of the sharded engine's
    /// ownership discipline. The mutation is refused, so the ledger stays
    /// uncorrupted; the violation records the engine bug itself. Checked in
    /// debug *and* release builds.
    ForeignSlotMutation {
        /// The channel whose slots were touched.
        channel: ChannelId,
        /// The shard that owns the channel's ledger slots.
        owner_shard: u32,
        /// The shard that attempted the mutation.
        mutating_shard: u32,
    },
}

/// One failed invariant check: when, after what, and what broke.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AuditViolation {
    /// Simulation time of the check.
    pub time: f64,
    /// The event that was just processed (`"settle"`, `"refund"`,
    /// `"rebalance"`, `"final"`, ...).
    pub event: String,
    /// The broken invariant.
    pub kind: AuditViolationKind,
}

impl AuditViolation {
    /// Converts a ledger release refusal
    /// ([`CoreError::ExcessRelease`]) into a structured violation, so
    /// engines can surface double-release bugs in reports even when
    /// periodic auditing is disabled. Returns `None` for other errors.
    pub fn from_release_error(time: f64, event: &str, err: &CoreError) -> Option<AuditViolation> {
        match *err {
            CoreError::ExcessRelease {
                channel,
                inflight,
                requested,
            } => Some(AuditViolation {
                time,
                event: event.to_string(),
                kind: AuditViolationKind::ExcessRelease {
                    channel,
                    inflight_micros: inflight,
                    requested_micros: requested,
                },
            }),
            _ => None,
        }
    }
}

/// Caps how many violations one run records: the first violation usually
/// cascades into one per subsequent event, and a handful is enough to
/// diagnose while keeping `SimReport` bounded.
const MAX_RECORDED_VIOLATIONS: usize = 32;

/// The auditor. Snapshot the expected total at construction, notify it of
/// every on-chain deposit/withdrawal, and [`check`](Self::check) after each
/// balance-mutating event.
#[derive(Clone, Debug)]
pub struct LedgerAudit {
    /// What `Σ available + Σ inflight` must equal right now.
    expected_total: Amount,
    /// Total invariant checks performed.
    checks: u64,
    /// Violations found, capped at [`MAX_RECORDED_VIOLATIONS`].
    violations: Vec<AuditViolation>,
    /// Violations found beyond the cap (counted, not stored).
    suppressed: u64,
}

impl LedgerAudit {
    /// Starts auditing `ledger` from its current state.
    pub fn new(ledger: &Ledger) -> Self {
        LedgerAudit {
            expected_total: ledger.total_available() + ledger.total_inflight(),
            checks: 0,
            violations: Vec::new(),
            suppressed: 0,
        }
    }

    /// Records an on-chain deposit: fresh funds entered the network.
    pub fn on_deposit(&mut self, amount: Amount) {
        self.expected_total += amount;
    }

    /// Records an on-chain withdrawal: funds left the network.
    pub fn on_withdraw(&mut self, amount: Amount) {
        self.expected_total -= amount;
    }

    /// Verifies every invariant against `ledger`, recording violations
    /// tagged with `time` and `event`.
    pub fn check(&mut self, ledger: &Ledger, time: f64, event: &str) {
        self.checks += 1;
        for i in 0..ledger.num_channels() {
            let id = ChannelId(i as u32);
            let (a, b) = ledger.balances(id);
            let inflight = ledger.inflight(id);
            if a.is_negative() {
                self.record(
                    time,
                    event,
                    AuditViolationKind::NegativeBalance {
                        channel: id,
                        side: 0,
                        micros: a.micros(),
                    },
                );
            }
            if b.is_negative() {
                self.record(
                    time,
                    event,
                    AuditViolationKind::NegativeBalance {
                        channel: id,
                        side: 1,
                        micros: b.micros(),
                    },
                );
            }
            if inflight.is_negative() {
                self.record(
                    time,
                    event,
                    AuditViolationKind::NegativeInflight {
                        channel: id,
                        micros: inflight.micros(),
                    },
                );
            }
            let sum = a + b + inflight;
            let capacity = ledger.capacity(id);
            if sum != capacity {
                self.record(
                    time,
                    event,
                    AuditViolationKind::ChannelImbalance {
                        channel: id,
                        actual_micros: sum.micros(),
                        capacity_micros: capacity.micros(),
                    },
                );
            }
        }
        let total = ledger.total_available() + ledger.total_inflight();
        if total != self.expected_total {
            self.record(
                time,
                event,
                AuditViolationKind::GlobalImbalance {
                    actual_micros: total.micros(),
                    expected_micros: self.expected_total.micros(),
                },
            );
        }
    }

    fn record(&mut self, time: f64, event: &str, kind: AuditViolationKind) {
        if self.violations.len() < MAX_RECORDED_VIOLATIONS {
            self.violations.push(AuditViolation {
                time,
                event: event.to_string(),
                kind,
            });
        } else {
            self.suppressed += 1;
        }
    }

    /// Number of invariant checks performed so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// Violations found but not stored because the cap was hit.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Consumes the auditor, yielding the recorded violations.
    pub fn into_violations(self) -> Vec<AuditViolation> {
        self.violations
    }

    /// Captures the auditor's complete state for a checkpoint.
    pub fn export_state(&self) -> AuditState {
        AuditState {
            expected_total_micros: self.expected_total.micros(),
            checks: self.checks,
            violations: self.violations.clone(),
            suppressed: self.suppressed,
        }
    }

    /// Rebuilds an auditor from a captured [`AuditState`], continuing its
    /// check count and violation log exactly.
    pub fn from_state(state: AuditState) -> LedgerAudit {
        LedgerAudit {
            expected_total: Amount::from_micros(state.expected_total_micros),
            checks: state.checks,
            violations: state.violations,
            suppressed: state.suppressed,
        }
    }
}

/// Serializable capture of a [`LedgerAudit`], produced by
/// [`LedgerAudit::export_state`] and consumed by
/// [`LedgerAudit::from_state`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AuditState {
    /// What `Σ available + Σ inflight` must equal, in micro-tokens.
    pub expected_total_micros: i64,
    /// Invariant checks performed so far.
    pub checks: u64,
    /// Violations recorded so far.
    pub violations: Vec<AuditViolation>,
    /// Violations found beyond the recording cap.
    pub suppressed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_core::{Network, NodeId, Path};

    fn line3() -> Network {
        let mut g = Network::new(3);
        g.add_channel(NodeId(0), NodeId(1), Amount::from_whole(100))
            .unwrap();
        g.add_channel(NodeId(1), NodeId(2), Amount::from_whole(100))
            .unwrap();
        g
    }

    #[test]
    fn clean_ledger_passes_every_check() {
        let g = line3();
        let mut ledger = Ledger::new(&g);
        let mut audit = LedgerAudit::new(&ledger);
        let path = Path::new(&g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();

        audit.check(&ledger, 0.0, "initial");
        ledger.lock_path(&g, &path, Amount::from_whole(10)).unwrap();
        audit.check(&ledger, 0.1, "lock");
        ledger
            .settle_path(&g, &path, Amount::from_whole(10))
            .unwrap();
        audit.check(&ledger, 0.6, "settle");

        assert_eq!(audit.checks(), 3);
        assert!(audit.violations().is_empty(), "{:?}", audit.violations());
    }

    #[test]
    fn deposit_and_withdraw_shift_the_expected_total() {
        let g = line3();
        let mut ledger = Ledger::new(&g);
        let mut audit = LedgerAudit::new(&ledger);
        let ch = g.channels()[0].id;

        let taken = ledger.withdraw(&g, ch, NodeId(0), Amount::from_whole(5));
        audit.on_withdraw(taken);
        ledger
            .deposit(&g, ch, NodeId(1), Amount::from_whole(4))
            .unwrap();
        audit.on_deposit(Amount::from_whole(4));
        audit.check(&ledger, 1.0, "rebalance");
        assert!(audit.violations().is_empty(), "{:?}", audit.violations());
    }

    #[test]
    fn unreported_deposit_is_a_global_violation() {
        let g = line3();
        let mut ledger = Ledger::new(&g);
        let mut audit = LedgerAudit::new(&ledger);
        let ch = g.channels()[0].id;

        // Money appears without the auditor being told: global drift.
        ledger
            .deposit(&g, ch, NodeId(0), Amount::from_whole(7))
            .unwrap();
        audit.check(&ledger, 2.0, "settle");
        let v = audit.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].event, "settle");
        match v[0].kind {
            AuditViolationKind::GlobalImbalance {
                actual_micros,
                expected_micros,
            } => {
                assert_eq!(
                    actual_micros - expected_micros,
                    Amount::from_whole(7).micros()
                );
            }
            ref other => panic!("expected GlobalImbalance, got {other:?}"),
        }
    }

    #[test]
    fn violation_cap_counts_suppressed() {
        let g = line3();
        let mut ledger = Ledger::new(&g);
        let mut audit = LedgerAudit::new(&ledger);
        let ch = g.channels()[0].id;
        ledger
            .deposit(&g, ch, NodeId(0), Amount::from_whole(1))
            .unwrap();
        for i in 0..(MAX_RECORDED_VIOLATIONS as u64 + 10) {
            audit.check(&ledger, i as f64, "settle");
        }
        assert_eq!(audit.violations().len(), MAX_RECORDED_VIOLATIONS);
        assert_eq!(audit.suppressed(), 10);
    }

    #[test]
    fn violations_serialize_and_round_trip() {
        let v = AuditViolation {
            time: 1.5,
            event: "settle".to_string(),
            kind: AuditViolationKind::NegativeBalance {
                channel: ChannelId(3),
                side: 1,
                micros: -250,
            },
        };
        let json = serde_json::to_string(&v).unwrap();
        assert!(json.contains("\"NegativeBalance\""), "{json}");
        let back: AuditViolation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn release_refusals_become_structured_violations() {
        let g = line3();
        let mut ledger = Ledger::new(&g);
        let path = Path::new(&g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        ledger.lock_path(&g, &path, Amount::from_whole(2)).unwrap();
        let err = ledger
            .settle_path(&g, &path, Amount::from_whole(5))
            .unwrap_err();
        let v = AuditViolation::from_release_error(3.5, "settle", &err).unwrap();
        assert_eq!(v.time, 3.5);
        match v.kind {
            AuditViolationKind::ExcessRelease {
                inflight_micros,
                requested_micros,
                ..
            } => {
                assert_eq!(inflight_micros, Amount::from_whole(2).micros());
                assert_eq!(requested_micros, Amount::from_whole(5).micros());
            }
            ref other => panic!("expected ExcessRelease, got {other:?}"),
        }
        // Other errors are not release violations.
        assert!(AuditViolation::from_release_error(0.0, "x", &CoreError::NegativeAmount).is_none());
        // The refused settle changed nothing.
        assert!(ledger.conserves_all());
        assert_eq!(ledger.total_inflight(), Amount::from_whole(4));
    }
}
